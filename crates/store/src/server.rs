//! The `dynvote-stored` daemon: one site of a live voting cluster.
//!
//! A daemon owns exactly one participant — built with
//! [`ClusterBuilder::build_remote`], so the [`Cluster`] holds only the
//! local node and reaches every other site through a
//! [`TcpTransport`] — and serves one TCP listener for all three frame
//! families:
//!
//! * **peer frames** run the recipient side of Figures 1–3/5–7 via
//!   [`Cluster::serve_at`] — the *same* handler the in-memory
//!   transport's callback invokes, which is the whole point of the
//!   transport seam;
//! * **client data frames** (`put`/`get`/`recover`) run the
//!   coordinator side via [`Cluster::write`]/`read`/`recover`;
//! * **admin frames** mutate the shared [`LinkRules`] to cut or heal
//!   links at runtime, and report status.
//!
//! Concurrency model: one `Mutex<Cluster>` guards all protocol state.
//! A coordinated operation holds the lock across its network
//! exchanges; inbound peer frames wait on the same lock. Two daemons
//! coordinating at each other simultaneously therefore serve each
//! other only between operations — the socket read timeouts bound the
//! wait, the poll's bounded retry absorbs it, and the worst case is an
//! honest `Timeout` refusal, never a deadlock (see DESIGN.md §9).
//!
//! Sessions are persistent and pipelined (DESIGN.md §12): a client may
//! keep one connection open and send any number of
//! [`Frame::Tagged`]-wrapped data requests without waiting; replies
//! come back tagged with the same correlation id, in completion order.
//! Client data operations do not run on the session thread — they
//! queue for the daemon's single *batch worker*, which drains the
//! queue under the cluster lock and serves runs of consecutive writes
//! through one poll/commit quorum exchange ([`Cluster::write_batch`])
//! and runs of reads through one quorum read, then fsyncs once for the
//! whole batch strictly before any acknowledgement leaves. Untagged
//! data frames keep the old one-at-a-time semantics on the wire but
//! share the same batch worker underneath.
//!
//! Every grant and refusal is logged with the paper clause that fired,
//! so a partition experiment reads as a protocol trace.
//!
//! With `--data-dir` the daemon is *durable* (DESIGN.md §10): every
//! protocol event that changes the local ⟨o, v, P⟩, data, or
//! outstanding vote is appended to a fsync'd write-ahead log **before**
//! the matching acknowledgement (state reply, commit ack, or client
//! `Done`) leaves the site — [`sync_durable`] is the single seam every
//! dispatch arm passes through. A restart restores snapshot + WAL and
//! then retries the protocol-level RECOVER (Figures 3/7) in the
//! background to catch up from the majority partition.

use std::fs::File;
use std::io::{BufReader, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use dynvote_control::{decode_kv, encode_kv, ShardMap};
use dynvote_replica::wal::{shard_dir, SiteStore, WalRecord};
use dynvote_replica::{Cluster, ClusterBuilder, MessageKind, Reply};
use dynvote_types::{AccessError, SiteId, SiteSet};

use crate::config::Config;
use crate::probe::{coordinator_of, epoch_of, OpLedger, ProbeAnswer};
use crate::tcp::{LinkRules, TcpTransport};
use crate::wire::{read_frame, write_frame, Frame, UnavailableReason};

/// The paper clause behind a refusal — every ABORT in Figures 1–3/5–7
/// traces back to one of these.
#[must_use]
pub fn refusal_clause(err: &AccessError) -> &'static str {
    match err {
        AccessError::NoQuorum { .. } => {
            "Algorithm 1, step 3: the reachable votes are not a strict majority of the partition set P_m"
        }
        AccessError::TieLost { .. } => {
            "Algorithm 1, tie-break: exactly half of P_m reachable, without its highest-ranked site"
        }
        AccessError::NoCurrentCopy { .. } => {
            "Figures 1/5: no current full copy among the reachable sites"
        }
        AccessError::OriginUnavailable { .. } => {
            "the requesting site belongs to no reachable group"
        }
        AccessError::Timeout { .. } => {
            "bounded retry exhausted: reachable sites stayed silent, so the coordinator cannot rule on the partition"
        }
        AccessError::Indeterminate { .. } => {
            "Figure 2, commit fan-out: the COMMIT did not close at every participant (partial commit)"
        }
    }
}

/// Comma-separated site indices — status/log-friendly [`SiteSet`].
fn fmt_sites(set: SiteSet) -> String {
    let mut out = String::new();
    for site in set.iter() {
        if !out.is_empty() {
            out.push(',');
        }
        out.push_str(&site.index().to_string());
    }
    if out.is_empty() {
        out.push('-');
    }
    out
}

struct Logger {
    site: usize,
    file: Option<Mutex<File>>,
    /// Drop the stderr copy (`--quiet`): under a load driver the
    /// terminal write, not the protocol, would dominate the profile.
    quiet: bool,
}

impl Logger {
    fn log(&self, line: &str) {
        if self.quiet && self.file.is_none() {
            return;
        }
        let stamp = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis())
            .unwrap_or(0);
        let full = format!("[{stamp}] S{} {line}", self.site);
        if !self.quiet {
            eprintln!("{full}");
        }
        if let Some(file) = &self.file {
            if let Ok(mut file) = file.lock() {
                let _ = writeln!(file, "{full}");
            }
        }
    }
}

/// A client data operation, decoupled from the session that carried
/// it: the batch worker executes these in queue order.
///
/// The keyed variants exist only on sharded daemons, whose replicated
/// value is an encoded KV map ([`dynvote_control::encode_kv`]): the
/// batch worker folds a run of keyed puts into one quorum
/// read-modify-write — sound because the shard's *coordinator funnel*
/// (only `placement[0]` of the current epoch accepts keyed operations)
/// serializes every mutation of the image through this one queue.
enum DataOp {
    Put(Vec<u8>),
    Get,
    PutKey { key: String, value: Vec<u8> },
    GetKey { key: String },
}

/// One queued data operation plus the completion that routes its reply
/// back to whichever session (tagged or legacy) submitted it.
struct PendingData {
    op: DataOp,
    done: Box<dyn FnOnce(Frame) + Send>,
}

struct Daemon {
    cluster: Mutex<Cluster<Vec<u8>, TcpTransport>>,
    links: Arc<LinkRules>,
    local: SiteId,
    policy_name: &'static str,
    log: Arc<Logger>,
    /// Which shard group this daemon hosts (`None` = the legacy
    /// single-object store). Outbound peer frames are wrapped in
    /// [`Frame::Shard`] so the receiving service routes them to its
    /// matching per-shard daemon.
    shard: Option<u16>,
    /// Non-zero once a shard-map install replaced this daemon: the map
    /// epoch that retired it. Checked under the cluster lock by every
    /// path that could still commit or touch the (now shared) durable
    /// directory — queued data operations answer `StaleShardMap` with
    /// this epoch, and the background loops exit.
    retired: AtomicU64,
    /// Durable storage — `None` runs the pre-durability in-memory mode.
    store: Option<Mutex<SiteStore>>,
    /// Crash-test hook: abort after a client write's WAL fsync, before
    /// the ack (see `Config::crash_after_wal_append`).
    crash_after_wal_append: bool,
    /// Finished-operation ledger shared with the transport — answers
    /// `VOTE-PROBE` frames without touching the cluster lock.
    ledger: Arc<Mutex<OpLedger>>,
    /// The commit fence a *dead* incarnation left behind: tickets of
    /// older epochs above it provably never started a commit fanout.
    /// `None` without durable storage (epochs are meaningless there).
    boot_fence: Option<u64>,
    /// This incarnation's boot epoch (16-bit, as salted into tickets).
    boot_epoch: Option<u64>,
    /// Peer client addresses, for the wedge-probe loop.
    peers: Vec<(SiteId, String)>,
    /// Wedges resolved by probing (released / late commits applied).
    probe_released: std::sync::atomic::AtomicU64,
    probe_commits: std::sync::atomic::AtomicU64,
    /// The data-operation queue feeding the batch worker.
    batch: mpsc::Sender<PendingData>,
    /// Batch-worker counters for `status`: batches run, operations
    /// served through them, and the largest single batch.
    batch_rounds: AtomicU64,
    batch_ops: AtomicU64,
    batch_max: AtomicU64,
}

/// Folds the local participant's current protocol state into the
/// durable store: diffs ⟨o, v, P⟩ + data + outstanding vote against the
/// store's image and appends the WAL records that close the gap,
/// fsync'ing each. Call this *before* letting any acknowledgement leave
/// the site; on `Ok` the acknowledged state survives a crash.
///
/// Always called with the cluster lock held, so the image diff and the
/// append are atomic with respect to other operations.
fn sync_durable(
    daemon: &Daemon,
    cluster: &Cluster<Vec<u8>, TcpTransport>,
) -> std::io::Result<bool> {
    let Some(store) = &daemon.store else {
        return Ok(false);
    };
    if daemon.retired.load(Ordering::SeqCst) != 0 {
        // A shard-map install replaced this daemon and its successor
        // now owns the shard's data directory; writing here would
        // interleave two WAL writers. The install captured this
        // cluster's state under its lock *after* setting the flag, so
        // nothing acknowledged through the successor is lost.
        return Ok(false);
    }
    let mut store = store.lock().expect("site store poisoned");
    let state = cluster.state_at(daemon.local);
    let pending = cluster.pending_at(daemon.local);
    let value = cluster
        .copies()
        .contains(daemon.local)
        .then(|| cluster.value_at(daemon.local));
    let mut wrote = false;
    if store.image().state != state || store.image().value != value {
        let value_changed = store.image().value != value;
        store.log(WalRecord::Commit {
            state,
            value: if value_changed { value } else { None },
        })?;
        wrote = true;
    }
    if store.image().pending != pending {
        let record = match pending {
            Some(ticket) => WalRecord::Vote { ticket },
            None => WalRecord::Release {
                ticket: store.image().pending.unwrap_or(0),
            },
        };
        store.log(record)?;
        wrote = true;
    }
    Ok(wrote)
}

/// A running daemon: its bound address and a stop handle.
pub struct ServiceHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ServiceHandle {
    /// The address the daemon is accepting on.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and joins the accept loop. Connection handler
    /// threads notice the flag at their next idle poll and exit.
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Poke the accept loop awake.
        let _ = TcpStream::connect(self.addr);
        if let Some(thread) = self.accept_thread.take() {
            let _ = thread.join();
        }
    }
}

/// Starts a daemon on the address named in the config, retrying a busy
/// address for up to `config.bind_retry` — a daemon restarted right
/// after a `kill -9` can race the kernel's cleanup of the dead
/// process's sockets on the same port.
///
/// # Errors
///
/// Bad topology descriptions surface as `InvalidInput`; bind failures
/// pass through (after the retry window, for `AddrInUse`).
pub fn start(config: Config) -> std::io::Result<ServiceHandle> {
    let deadline = Instant::now() + config.bind_retry;
    let listener = loop {
        match TcpListener::bind(config.listen_addr()) {
            Ok(listener) => break listener,
            Err(error)
                if error.kind() == std::io::ErrorKind::AddrInUse && Instant::now() < deadline =>
            {
                std::thread::sleep(Duration::from_millis(100));
            }
            Err(error) => return Err(error),
        }
    };
    start_on(config, listener)
}

/// The sharded half of a service: one slot per shard in the map, each
/// holding the per-shard [`Daemon`] when the local site is in that
/// shard's placement.
struct ShardedService {
    /// `slots[k]` is shard `k`'s daemon — `None` when this site is not
    /// in its placement. A shard-map install takes the write lock to
    /// swap a slot; every per-frame route holds the read lock, so a
    /// swap waits out in-flight dispatches.
    slots: Vec<RwLock<Option<Arc<Daemon>>>>,
    /// The current shard map. Keyed operations carry the epoch they
    /// routed by; a mismatch answers `StaleShardMap{current}`.
    map: Mutex<ShardMap>,
    /// Where the map persists (`<data-dir>/shardmap.bin`), if durable.
    map_path: Option<PathBuf>,
}

/// What one `dynvote-stored` process hosts: the legacy single-object
/// daemon, or the sharded service (`--shards N`).
enum Role {
    Legacy(Arc<Daemon>),
    Sharded(ShardedService),
}

/// One `dynvote-stored` process: the shared fault fabric, the logger,
/// and the hosted role.
struct Service {
    config: Config,
    links: Arc<LinkRules>,
    log: Arc<Logger>,
    role: Role,
    /// Shared with every daemon's background threads — successor
    /// daemons booted by a map install must observe the same stop flag.
    shutdown: Arc<AtomicBool>,
}

/// Builds and starts one [`Daemon`]: transport (shard-wrapped when
/// `shard` is set), durable restore or seed under the (per-shard)
/// data directory, ticket salting, and the three background threads.
/// `override_state` installs captured in-process state on top of
/// whatever the disk held — the shard-map install path hands the old
/// incarnation's image to its successor this way.
#[allow(clippy::too_many_arguments)] // one call site per role; a builder would obscure the boot order
fn boot_daemon(
    config: &Config,
    links: &Arc<LinkRules>,
    log: &Arc<Logger>,
    shutdown: &Arc<AtomicBool>,
    shard: Option<u16>,
    copies: Vec<usize>,
    witnesses: Vec<usize>,
    override_state: Option<(dynvote_core::state::ReplicaState, Vec<u8>, Option<u64>)>,
) -> std::io::Result<Arc<Daemon>> {
    let network = config
        .network()
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
    let mut transport = TcpTransport::new(
        config.local,
        &config.peers,
        Arc::clone(links),
        config.timeouts,
    );
    if let Some(shard) = shard {
        transport = transport.with_shard(shard);
    }
    let ledger = transport.ledger();
    // Each shard group gets its own durable namespace under the base
    // data directory — independent voting groups, independent WALs.
    let data_dir: Option<PathBuf> = config.data_dir.as_ref().map(|base| match shard {
        Some(shard) => shard_dir(Path::new(base), shard),
        None => PathBuf::from(base),
    });
    // The durable operation ledger: replay what every dead incarnation
    // recorded at its commit points (the vote-probe answers and the
    // high-water mark of the dead-epoch rule), then swap it into the
    // transport's shared handle so this incarnation's commit points
    // keep appending to it.
    let mut boot_fence = None;
    if let Some(dir) = &data_dir {
        std::fs::create_dir_all(dir)?;
        let durable = OpLedger::open(dir)?;
        boot_fence = Some(durable.high_water());
        *ledger.lock().expect("op ledger poisoned") = durable;
    }
    // The legacy store replicates `--value`; a shard's replicated value
    // is its KV image, which starts out as the empty map's encoding.
    let initial = match shard {
        Some(_) => Vec::new(),
        None => config.initial.clone(),
    };
    let mut cluster = ClusterBuilder::new()
        .network(network)
        .copies(copies)
        .witnesses(witnesses)
        .protocol(config.policy)
        .build_remote(config.local.index(), transport, initial);

    // Durable boot: restore snapshot + WAL replay into the local node,
    // or seed a fresh data directory with the boot state.
    let mut restored_from_disk = false;
    let mut boot_epoch = None;
    let store = match &data_dir {
        Some(dir) => {
            let (mut store, restored) = SiteStore::open(dir, config.snapshot_every)?;
            if restored.snapshot_was_corrupt {
                log.log("durable restore: snapshot failed validation, moved aside; falling back");
            }
            if restored.used_previous_snapshot {
                log.log(
                    "durable restore: recovered from previous-generation snapshot + parked WAL",
                );
            }
            match restored.wal_tail {
                dynvote_replica::WalTail::Clean => {}
                tail => log.log(&format!("durable restore: WAL tail repaired ({tail})")),
            }
            match restored.image {
                Some(image) => {
                    log.log(&format!(
                        "durable restore: o={} v={} P={{{}}} pending={} seq={} wal_replayed={}",
                        image.state.op,
                        image.state.version,
                        fmt_sites(image.state.partition),
                        image
                            .pending
                            .map_or_else(|| "-".to_string(), |t| t.to_string()),
                        image.seq,
                        restored.replayed,
                    ));
                    cluster.install_durable_state(
                        config.local,
                        image.state,
                        image.value.clone(),
                        image.pending,
                    );
                    restored_from_disk = true;
                }
                None => {
                    let state = cluster.state_at(config.local);
                    let value = cluster
                        .copies()
                        .contains(config.local)
                        .then(|| cluster.value_at(config.local));
                    store.seed(state, cluster.pending_at(config.local), value)?;
                    log.log(&format!(
                        "durable boot: fresh data dir seeded at {}",
                        dir.display()
                    ));
                }
            }
            // Salt the vote-ticket namespace with the boot epoch: a
            // restarted coordinator must never reissue a pre-crash
            // ticket number, or a site the old incarnation left wedged
            // under it would mistake the new operation for the old one
            // and vote again. 16 bits of epoch inside the site's
            // 48-bit-shifted namespace bounds this to 65 535 restarts
            // before wraparound.
            cluster.advance_ticket_past(
                ((config.local.index() as u64) << 48) | ((store.epoch() & 0xFFFF) << 32),
            );
            boot_epoch = Some(store.epoch() & 0xFFFF);
            Some(Mutex::new(store))
        }
        None => None,
    };

    let policy_name = cluster.protocol().name();
    let (batch_tx, batch_rx) = mpsc::channel();
    let daemon = Arc::new(Daemon {
        cluster: Mutex::new(cluster),
        links: Arc::clone(links),
        local: config.local,
        policy_name,
        log: Arc::clone(log),
        shard,
        retired: AtomicU64::new(0),
        store,
        crash_after_wal_append: config.crash_after_wal_append,
        ledger,
        boot_fence,
        boot_epoch,
        peers: config.peers.clone(),
        probe_released: std::sync::atomic::AtomicU64::new(0),
        probe_commits: std::sync::atomic::AtomicU64::new(0),
        batch: batch_tx,
        batch_rounds: AtomicU64::new(0),
        batch_ops: AtomicU64::new(0),
        batch_max: AtomicU64::new(0),
    });
    // A successor daemon inherits the retired incarnation's in-process
    // state — at least as fresh as the disk image restored above, and
    // the only copy in the in-memory mode.
    if let Some((state, value, pending)) = override_state {
        let mut cluster = daemon.cluster.lock().expect("cluster poisoned");
        cluster.install_durable_state(daemon.local, state, Some(value), pending);
        if let Err(error) = sync_durable(&daemon, &cluster) {
            log.log(&format!(
                "shard handoff: captured state not persisted: {error}"
            ));
        }
    }
    // The batch worker: the single consumer of the data-operation
    // queue. Every client put/get — pipelined or legacy — funnels
    // through it, which is what lets the daemon amortize one quorum
    // exchange and one fsync over a run of concurrent operations.
    {
        let batch_daemon = Arc::clone(&daemon);
        let batch_shutdown = Arc::clone(shutdown);
        let _ = std::thread::Builder::new()
            .name(format!("dynvote-batch-{}", config.local.index()))
            .spawn(move || batch_loop(&batch_daemon, &batch_shutdown, &batch_rx));
    }
    // A site restarted from disk holds pre-crash state that may be
    // stale; catch up from the majority partition in the background
    // (serving is already safe — quorum logic refuses what it must).
    if restored_from_disk && !config.boot_recover.is_zero() {
        let recover_daemon = Arc::clone(&daemon);
        let recover_shutdown = Arc::clone(shutdown);
        let window = config.boot_recover;
        let _ = std::thread::Builder::new()
            .name(format!("dynvote-boot-recover-{}", config.local.index()))
            .spawn(move || boot_recover(&recover_daemon, &recover_shutdown, window));
    }
    // The wedge-probe loop: while this site holds an outstanding vote,
    // periodically ask the ticket's coordinator what became of it (see
    // `crate::probe`). Without it, a single lost RELEASE or COMMIT
    // frame wedges the site until an operator intervenes.
    if !config.peers.is_empty() {
        let probe_daemon = Arc::clone(&daemon);
        let probe_shutdown = Arc::clone(shutdown);
        let _ = std::thread::Builder::new()
            .name(format!("dynvote-wedge-probe-{}", config.local.index()))
            .spawn(move || wedge_probe_loop(&probe_daemon, &probe_shutdown));
    }
    Ok(daemon)
}

/// Builds the boot shard map: the persisted generation when the data
/// directory holds one, else epoch 1 from the placement policy over
/// the peer list.
fn boot_shard_map(config: &Config, shards: usize) -> std::io::Result<(ShardMap, Option<PathBuf>)> {
    let map_path = config.data_dir.as_ref().map(|base| {
        let base = Path::new(base);
        base.join("shardmap.bin")
    });
    if let Some(path) = &map_path {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        if let Some(map) = ShardMap::load(path)? {
            return Ok((map, map_path));
        }
    }
    let site_count = config
        .peers
        .iter()
        .map(|(id, _)| id.index())
        .max()
        .map_or(0, |max| max + 1);
    let specs = config
        .shard_placement
        .build(shards, site_count)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
    let map = ShardMap {
        epoch: 1,
        shards: specs,
        sites: config
            .peers
            .iter()
            .map(|(id, addr)| (id.index(), addr.clone()))
            .collect(),
    };
    if let Some(path) = &map_path {
        map.persist(path)?;
    }
    Ok((map, map_path))
}

/// Starts a daemon on an already-bound listener — tests bind port 0
/// everywhere first, learn the real addresses, then hand each daemon
/// its listener.
///
/// # Errors
///
/// Bad topology descriptions surface as `InvalidInput`.
pub fn start_on(config: Config, listener: TcpListener) -> std::io::Result<ServiceHandle> {
    // Validate the topology up front (every per-shard boot reuses it).
    config
        .network()
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
    let addr = listener.local_addr()?;
    let links = Arc::new(LinkRules::new());
    let log = Arc::new(Logger {
        site: config.local.index(),
        file: match &config.log {
            Some(path) => Some(Mutex::new(File::create(path)?)),
            None => None,
        },
        quiet: config.quiet,
    });
    let shutdown = Arc::new(AtomicBool::new(false));
    let role = match config.shards {
        None => Role::Legacy(boot_daemon(
            &config,
            &links,
            &log,
            &shutdown,
            None,
            config.copies(),
            config.witnesses.clone(),
            None,
        )?),
        Some(shards) => {
            let (map, map_path) = boot_shard_map(&config, shards)?;
            let mut slots = Vec::with_capacity(map.shards.len());
            for (shard, spec) in map.shards.iter().enumerate() {
                let slot = if spec.placement.contains(&config.local.index()) {
                    Some(boot_daemon(
                        &config,
                        &links,
                        &log,
                        &shutdown,
                        Some(shard as u16),
                        spec.placement.clone(),
                        Vec::new(),
                        None,
                    )?)
                } else {
                    None
                };
                slots.push(RwLock::new(slot));
            }
            log.log(&format!(
                "shard map: epoch {} with {} shards ({} hosted here)",
                map.epoch,
                map.shards.len(),
                slots
                    .iter()
                    .filter(|s| s.read().expect("slot poisoned").is_some())
                    .count(),
            ));
            Role::Sharded(ShardedService {
                slots,
                map: Mutex::new(map),
                map_path,
            })
        }
    };
    let service = Arc::new(Service {
        links,
        log,
        role,
        config,
        shutdown: Arc::clone(&shutdown),
    });
    service.log.log(&format!(
        "dynvote-stored up: policy={} listen={addr} peers={} durable={} shards={}",
        service.config.policy.name(),
        service.config.peers.len(),
        service.config.data_dir.is_some(),
        service
            .config
            .shards
            .map_or_else(|| "-".to_string(), |n| n.to_string()),
    ));
    let accept_shutdown = Arc::clone(&shutdown);
    let idle = service.config.timeouts.read;
    let accept_thread = std::thread::Builder::new()
        .name(format!("dynvote-accept-{}", service.config.local.index()))
        .spawn(move || accept_loop(&listener, &service, &accept_shutdown, idle))?;
    Ok(ServiceHandle {
        addr,
        shutdown,
        accept_thread: Some(accept_thread),
    })
}

/// Retries the protocol-level RECOVER (Figures 3/7) until it is granted
/// or the boot window elapses — run in the background after a
/// restore-from-disk so a restarted site rejoins the majority partition
/// without an operator in the loop.
fn boot_recover(daemon: &Arc<Daemon>, shutdown: &AtomicBool, window: Duration) {
    let deadline = Instant::now() + window;
    let mut logged_refusal = false;
    loop {
        if shutdown.load(Ordering::SeqCst) || daemon.retired.load(Ordering::SeqCst) != 0 {
            return;
        }
        {
            let mut cluster = daemon.cluster.lock().expect("cluster poisoned");
            match cluster.recover(daemon.local) {
                Ok(()) => {
                    let state = cluster.state_at(daemon.local);
                    if let Err(error) = sync_durable(daemon, &cluster) {
                        daemon
                            .log
                            .log(&format!("boot RECOVER: durability failure: {error}"));
                    }
                    daemon.log.log(&format!(
                        "boot RECOVER: caught up — o={} v={} P={{{}}}",
                        state.op,
                        state.version,
                        fmt_sites(state.partition)
                    ));
                    return;
                }
                Err(err) if !logged_refusal => {
                    logged_refusal = true;
                    daemon
                        .log
                        .log(&format!("boot RECOVER: not yet — {err}; retrying"));
                }
                Err(_) => {}
            }
        }
        if Instant::now() >= deadline {
            daemon.log.log(
                "boot RECOVER: window elapsed; serving restored state (run `dynvote-ctl recover` once peers are reachable)",
            );
            return;
        }
        std::thread::sleep(Duration::from_millis(250));
    }
}

/// How often a wedged site probes its coordinator.
const WEDGE_PROBE_INTERVAL: Duration = Duration::from_millis(400);

/// Per-probe reply deadline (resolve + connect + exchange).
const WEDGE_PROBE_DEADLINE: Duration = Duration::from_millis(1500);

/// Whether `ticket` was issued by a dead incarnation of this daemon
/// *and* sits above the ledger high-water mark it left — the two facts
/// that together prove the ticket never reached a commit point, so
/// every vote for it is non-binding.
fn dead_and_unfenced(daemon: &Daemon, ticket: u64) -> bool {
    coordinator_of(ticket) == daemon.local.index()
        && match (daemon.boot_epoch, daemon.boot_fence) {
            (Some(epoch), Some(fence)) => epoch_of(ticket) < epoch && ticket > fence,
            _ => false,
        }
}

/// Persists and logs a wedge resolution (the cluster lock is held).
fn note_probe_resolution(
    daemon: &Daemon,
    cluster: &Cluster<Vec<u8>, TcpTransport>,
    ticket: u64,
    what: &str,
) {
    if let Err(error) = sync_durable(daemon, cluster) {
        daemon.log.log(&format!(
            "wedge probe ticket={ticket}: durability failure: {error}"
        ));
    }
    daemon
        .log
        .log(&format!("wedge probe: ticket={ticket} {what}"));
}

/// One raw frame exchange with a peer daemon under a hard deadline —
/// the probe loop speaks peer frames, which the client API's typed
/// outcomes do not carry.
fn probe_exchange(addr: &str, frame: &Frame, deadline: Duration) -> std::io::Result<Frame> {
    use std::net::ToSocketAddrs;
    let ends = Instant::now() + deadline;
    let left = || {
        let left = ends.saturating_duration_since(Instant::now());
        if left.is_zero() {
            Err(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "probe deadline",
            ))
        } else {
            Ok(left)
        }
    };
    let target = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::AddrNotAvailable, "no address"))?;
    let mut stream = TcpStream::connect_timeout(&target, left()?)?;
    stream.set_nodelay(true)?;
    stream.set_write_timeout(Some(left()?))?;
    write_frame(&mut stream, frame)?;
    stream.set_read_timeout(Some(left()?))?;
    read_frame(&mut stream)
}

/// The wedge-probe loop: while this site holds an outstanding vote,
/// periodically asks the ticket's coordinator what became of it (see
/// `crate::probe` for the soundness argument). Without this pull path
/// a single lost `RELEASE` or `COMMIT` frame wedges the site forever.
fn wedge_probe_loop(daemon: &Arc<Daemon>, shutdown: &AtomicBool) {
    loop {
        std::thread::sleep(WEDGE_PROBE_INTERVAL);
        if shutdown.load(Ordering::SeqCst) || daemon.retired.load(Ordering::SeqCst) != 0 {
            return;
        }
        let pending = {
            let cluster = daemon.cluster.lock().expect("cluster poisoned");
            cluster.pending_at(daemon.local)
        };
        let Some(ticket) = pending else { continue };
        let coordinator = coordinator_of(ticket);
        if coordinator == daemon.local.index() {
            // Wedged on a ticket of a dead incarnation of *ourselves*
            // (the vote is durable; a crash between the commit point
            // and the local apply leaves it outstanding). The replayed
            // ledger or the high-water rule resolves it locally, no
            // network needed. The ledger guard is dropped before the
            // cluster lock is taken — the transport locks in the
            // opposite order.
            let answer = {
                daemon
                    .ledger
                    .lock()
                    .expect("op ledger poisoned")
                    .answer(ticket, daemon.local)
            };
            match answer {
                ProbeAnswer::Commit(record) => {
                    let mut cluster = daemon.cluster.lock().expect("cluster poisoned");
                    if cluster.pending_at(daemon.local) == Some(ticket) {
                        let kind = MessageKind::Commit {
                            op: record.state.op,
                            version: record.state.version,
                            partition: record.state.partition,
                        };
                        let _ = cluster.serve_at(
                            daemon.local,
                            &kind,
                            record.value.as_ref(),
                            ticket,
                            false,
                        );
                        note_probe_resolution(
                            daemon,
                            &cluster,
                            ticket,
                            "own ledgered COMMIT applied",
                        );
                        daemon.probe_commits.fetch_add(1, Ordering::Relaxed);
                    }
                }
                ProbeAnswer::Release(keep) if !keep.contains(daemon.local) => {
                    let mut cluster = daemon.cluster.lock().expect("cluster poisoned");
                    if cluster.pending_at(daemon.local) == Some(ticket) {
                        cluster.local_release(ticket, keep);
                        note_probe_resolution(
                            daemon,
                            &cluster,
                            ticket,
                            "self-released (own ledgered release)",
                        );
                        daemon.probe_released.fetch_add(1, Ordering::Relaxed);
                    }
                }
                _ => {
                    if dead_and_unfenced(daemon, ticket) {
                        let mut cluster = daemon.cluster.lock().expect("cluster poisoned");
                        if cluster.pending_at(daemon.local) == Some(ticket) {
                            cluster.local_release(ticket, SiteSet::EMPTY);
                            note_probe_resolution(
                                daemon,
                                &cluster,
                                ticket,
                                "self-released (dead own epoch, above high water)",
                            );
                            daemon.probe_released.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            }
            continue;
        }
        let Some((to, addr)) = daemon
            .peers
            .iter()
            .find(|(site, _)| site.index() == coordinator)
            .cloned()
        else {
            continue;
        };
        if daemon.links.is_blocked(to) {
            // The partition surface applies to probes too.
            continue;
        }
        let probe = Frame::VoteProbe {
            ticket,
            from: daemon.local,
            to,
        };
        // A sharded daemon's probe must reach the peer's *matching*
        // shard daemon (each shard has its own operation ledger).
        let probe = match daemon.shard {
            Some(shard) => Frame::Shard {
                shard,
                inner: Box::new(probe),
            },
            None => probe,
        };
        match probe_exchange(&addr, &probe, WEDGE_PROBE_DEADLINE) {
            Ok(Frame::Release {
                ticket: answered,
                keep,
                ..
            }) if answered == ticket && !keep.contains(daemon.local) => {
                let mut cluster = daemon.cluster.lock().expect("cluster poisoned");
                if cluster.pending_at(daemon.local) == Some(ticket) {
                    cluster.local_release(ticket, keep);
                    note_probe_resolution(daemon, &cluster, ticket, "released by coordinator");
                    daemon.probe_released.fetch_add(1, Ordering::Relaxed);
                }
            }
            Ok(Frame::Commit {
                ticket: answered,
                state,
                value,
                ..
            }) if answered == ticket => {
                let mut cluster = daemon.cluster.lock().expect("cluster poisoned");
                // Re-check under the lock: only the exact wedge this
                // probe was sent for may be resolved by its reply.
                if cluster.pending_at(daemon.local) == Some(ticket) {
                    let kind = MessageKind::Commit {
                        op: state.op,
                        version: state.version,
                        partition: state.partition,
                    };
                    let _ = cluster.serve_at(daemon.local, &kind, value.as_ref(), ticket, false);
                    note_probe_resolution(daemon, &cluster, ticket, "late COMMIT applied");
                    daemon.probe_commits.fetch_add(1, Ordering::Relaxed);
                }
            }
            _ => {}
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    service: &Arc<Service>,
    shutdown: &Arc<AtomicBool>,
    idle: Duration,
) {
    for stream in listener.incoming() {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let service = Arc::clone(service);
        let shutdown = Arc::clone(shutdown);
        let _ = std::thread::Builder::new()
            .name("dynvote-conn".to_string())
            .spawn(move || handle_connection(&service, stream, &shutdown, idle));
    }
}

/// Waits until the stream has a readable byte, EOF, or shutdown.
/// Peeking (instead of reading with a timeout) keeps the frame decoder
/// from ever starting a frame it cannot finish on an idle tick.
fn wait_readable(stream: &TcpStream, shutdown: &AtomicBool) -> bool {
    let mut probe = [0u8; 1];
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return false;
        }
        match stream.peek(&mut probe) {
            Ok(0) => return false, // clean close
            Ok(_) => return true,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => return false,
        }
    }
}

fn handle_connection(
    service: &Arc<Service>,
    stream: TcpStream,
    shutdown: &AtomicBool,
    idle: Duration,
) {
    let _ = stream.set_read_timeout(Some(idle));
    let _ = stream.set_write_timeout(Some(idle));
    let _ = stream.set_nodelay(true);
    // Replies completed by the batch worker race replies written inline
    // by this thread, so every write goes through one locked writer.
    let writer = match stream.try_clone() {
        Ok(clone) => Arc::new(Mutex::new(clone)),
        Err(_) => return,
    };
    let mut reader = BufReader::with_capacity(64 * 1024, stream);
    loop {
        // Park on the idle poll only when the buffer is drained: the
        // peek sees the socket, not bytes already pulled into the
        // BufReader.
        if reader.buffer().is_empty() && !wait_readable(reader.get_ref(), shutdown) {
            return;
        }
        let frame = match read_frame(&mut reader) {
            Ok(frame) => frame,
            Err(e) => {
                if e.kind() == std::io::ErrorKind::InvalidData {
                    service
                        .log
                        .log(&format!("conn: malformed frame ({e}), closing"));
                }
                return;
            }
        };
        let keep_open = match &service.role {
            Role::Legacy(daemon) => route_legacy(daemon, frame, &writer),
            Role::Sharded(sharded) => route_sharded(service, sharded, frame, &writer),
        };
        if !keep_open {
            return;
        }
    }
}

/// Routes one frame in legacy (unsharded) mode — the original wire
/// behaviour, byte for byte. Returns `false` to close the session.
fn route_legacy(daemon: &Arc<Daemon>, frame: Frame, writer: &Arc<Mutex<TcpStream>>) -> bool {
    match frame {
        // Tagged data frames pipeline: queue for the batch worker
        // and read the next frame immediately; the completion
        // writes the tagged reply whenever the worker finishes, in
        // whatever order that happens.
        Frame::Tagged { id, inner } => match *inner {
            Frame::Put { value } => {
                enqueue_data(daemon, DataOp::Put(value), tagged_completion(writer, id))
            }
            Frame::Get => enqueue_data(daemon, DataOp::Get, tagged_completion(writer, id)),
            // Every other tagged frame answers inline on this
            // thread — admin and status stay snappy even while the
            // batch worker sits in a slow quorum round (which is
            // exactly what the out-of-order pipelining test pins).
            inner => match dispatch(daemon, inner) {
                Dispatch::Reply(reply) => {
                    let tagged = Frame::Tagged {
                        id,
                        inner: Box::new(reply),
                    };
                    write_shared(writer, &tagged).is_ok()
                }
                Dispatch::Silent => true,
                Dispatch::Close => false,
            },
        },
        // Untagged data frames keep the one-at-a-time wire
        // semantics: queue, wait for the reply, answer, read on.
        Frame::Put { value } => serve_legacy_data(daemon, writer, DataOp::Put(value)),
        Frame::Get => serve_legacy_data(daemon, writer, DataOp::Get),
        frame => match dispatch(daemon, frame) {
            Dispatch::Reply(reply) => write_shared(writer, &reply).is_ok(),
            Dispatch::Silent => true,
            Dispatch::Close => false,
        },
    }
}

/// Routes one frame in sharded mode. Three frame families:
///
/// * **keyed client frames** (`PutKey`/`GetKey`, tagged or not) —
///   epoch-checked against the current map, coordinator-checked
///   against the key's shard placement, then queued on that shard
///   daemon's batch worker;
/// * **`Shard{k, inner}` envelopes** — addressed to shard `k`'s
///   daemon: peer protocol frames, per-shard RECOVER/status, and the
///   shard-scoped data ops. The slot's read lock is held across the
///   inline dispatch, so a concurrent map install (which takes the
///   write lock) waits out every in-flight exchange before capturing
///   the old daemon's state;
/// * **control-plane frames** (`GetShardMap`/`InstallShardMap`) and
///   fleet-wide admin (status, link rules) — served by the service.
fn route_sharded(
    service: &Arc<Service>,
    sharded: &ShardedService,
    frame: Frame,
    writer: &Arc<Mutex<TcpStream>>,
) -> bool {
    match frame {
        Frame::Tagged { id, inner } => match *inner {
            Frame::PutKey {
                epoch,
                shard,
                key,
                value,
            } => match keyed_route(service, sharded, epoch, shard) {
                Ok(daemon) => enqueue_data(
                    &daemon,
                    DataOp::PutKey { key, value },
                    tagged_completion(writer, id),
                ),
                Err(reply) => write_tagged(writer, id, reply),
            },
            Frame::GetKey { epoch, shard, key } => {
                match keyed_route(service, sharded, epoch, shard) {
                    Ok(daemon) => enqueue_data(
                        &daemon,
                        DataOp::GetKey { key },
                        tagged_completion(writer, id),
                    ),
                    Err(reply) => write_tagged(writer, id, reply),
                }
            }
            Frame::Shard { shard, inner } => match shard_frame(sharded, shard, *inner, writer) {
                ShardRouted::Reply(reply) => write_tagged(writer, id, reply),
                ShardRouted::Done(keep) => keep,
                ShardRouted::Silent => true,
                ShardRouted::Close => false,
            },
            inner => match service_dispatch(service, sharded, inner) {
                Dispatch::Reply(reply) => write_tagged(writer, id, reply),
                Dispatch::Silent => true,
                Dispatch::Close => false,
            },
        },
        Frame::PutKey {
            epoch,
            shard,
            key,
            value,
        } => match keyed_route(service, sharded, epoch, shard) {
            Ok(daemon) => serve_legacy_data(&daemon, writer, DataOp::PutKey { key, value }),
            Err(reply) => write_shared(writer, &reply).is_ok(),
        },
        Frame::GetKey { epoch, shard, key } => match keyed_route(service, sharded, epoch, shard) {
            Ok(daemon) => serve_legacy_data(&daemon, writer, DataOp::GetKey { key }),
            Err(reply) => write_shared(writer, &reply).is_ok(),
        },
        Frame::Shard { shard, inner } => match shard_frame(sharded, shard, *inner, writer) {
            ShardRouted::Reply(reply) => write_shared(writer, &reply).is_ok(),
            ShardRouted::Done(keep) => keep,
            ShardRouted::Silent => true,
            ShardRouted::Close => false,
        },
        frame => match service_dispatch(service, sharded, frame) {
            Dispatch::Reply(reply) => write_shared(writer, &reply).is_ok(),
            Dispatch::Silent => true,
            Dispatch::Close => false,
        },
    }
}

/// Writes a reply wrapped in the request's correlation id.
fn write_tagged(writer: &Arc<Mutex<TcpStream>>, id: u64, reply: Frame) -> bool {
    let tagged = Frame::Tagged {
        id,
        inner: Box::new(reply),
    };
    write_shared(writer, &tagged).is_ok()
}

/// How a `Shard{k, inner}` envelope resolved.
enum ShardRouted {
    /// An inline answer for the caller to write (tagged if the
    /// envelope was).
    Reply(Frame),
    /// The inner data op was served through the shard's batch worker
    /// and wrote its own reply; the bool is "keep the session open".
    Done(bool),
    Silent,
    Close,
}

/// Routes the inner frame of a `Shard{k, …}` envelope to shard `k`'s
/// daemon. The slot read lock is held across inline dispatch — see
/// [`route_sharded`] for why that ordering makes map installs sound.
fn shard_frame(
    sharded: &ShardedService,
    shard: u16,
    inner: Frame,
    writer: &Arc<Mutex<TcpStream>>,
) -> ShardRouted {
    let Some(slot) = sharded.slots.get(shard as usize) else {
        return match inner {
            // A peer frame for a shard this fleet does not have:
            // protocol confusion, drop the session.
            Frame::Recover | Frame::Status | Frame::Put { .. } | Frame::Get => {
                ShardRouted::Reply(Frame::Refused {
                    message: format!("shard {shard} out of range"),
                })
            }
            _ => ShardRouted::Close,
        };
    };
    let guard = slot.read().expect("shard slot poisoned");
    let Some(daemon) = &*guard else {
        return match inner {
            Frame::Recover | Frame::Status | Frame::Put { .. } | Frame::Get => {
                ShardRouted::Reply(Frame::Unavailable {
                    reason: UnavailableReason::OriginDown,
                    message: format!("shard {shard} is not hosted at this site"),
                })
            }
            // Peer frames for an unhosted shard: stay silent, exactly
            // as a partitioned link would (the coordinator's bounded
            // retry absorbs it).
            _ => ShardRouted::Silent,
        };
    };
    match inner {
        // Shard-scoped raw data ops (the whole KV image): block like
        // the legacy path, on this shard's batch worker. The reply is
        // written by the completion, after the guard drops.
        Frame::Put { value } => {
            let daemon = Arc::clone(daemon);
            drop(guard);
            ShardRouted::Done(serve_legacy_data(&daemon, writer, DataOp::Put(value)))
        }
        Frame::Get => {
            let daemon = Arc::clone(daemon);
            drop(guard);
            ShardRouted::Done(serve_legacy_data(&daemon, writer, DataOp::Get))
        }
        inner => match dispatch(daemon, inner) {
            Dispatch::Reply(reply) => ShardRouted::Reply(reply),
            Dispatch::Silent => ShardRouted::Silent,
            Dispatch::Close => ShardRouted::Close,
        },
    }
}

/// Checks a keyed operation's routing facts against the current map:
/// the client's epoch must match, the shard must exist, and this site
/// must be the shard's coordinator (the funnel that makes the batched
/// read-modify-write sound). Returns the shard's daemon, or the typed
/// answer to send instead.
fn keyed_route(
    service: &Arc<Service>,
    sharded: &ShardedService,
    epoch: u64,
    shard: u16,
) -> Result<Arc<Daemon>, Frame> {
    let local = service.config.local.index();
    {
        let map = sharded.map.lock().expect("shard map poisoned");
        if epoch != map.epoch {
            return Err(Frame::StaleShardMap { epoch: map.epoch });
        }
        let Some(spec) = map.shards.get(shard as usize) else {
            return Err(Frame::Refused {
                message: format!(
                    "shard {shard} out of range ({} shards at epoch {})",
                    map.shards.len(),
                    map.epoch
                ),
            });
        };
        if spec.coordinator() != local {
            return Err(Frame::Unavailable {
                reason: UnavailableReason::OriginDown,
                message: format!(
                    "site {local} is not the coordinator for shard {shard} at epoch {} (site {} is)",
                    map.epoch,
                    spec.coordinator()
                ),
            });
        }
    }
    let guard = sharded.slots[shard as usize]
        .read()
        .expect("shard slot poisoned");
    match &*guard {
        Some(daemon) => Ok(Arc::clone(daemon)),
        None => Err(Frame::Unavailable {
            reason: UnavailableReason::OriginDown,
            message: format!("shard {shard} is not hosted at this site"),
        }),
    }
}

/// Serves the frames a sharded service answers *as a service* — the
/// control plane (shard map fetch/install), fleet-wide admin, and the
/// typed refusals for unsharded data ops.
fn service_dispatch(service: &Arc<Service>, sharded: &ShardedService, frame: Frame) -> Dispatch {
    match frame {
        Frame::GetShardMap => {
            let map = sharded.map.lock().expect("shard map poisoned");
            Dispatch::Reply(Frame::ShardMapRep { map: map.encode() })
        }
        Frame::InstallShardMap { map } => {
            Dispatch::Reply(install_shard_map(service, sharded, &map))
        }
        Frame::Status => Dispatch::Reply(Frame::Report {
            text: sharded_status_text(service, sharded),
        }),
        // The link rules are the *process's* fault surface, shared by
        // every shard transport — one deny cuts the site pair for all
        // shards, exactly like pulling the cable.
        Frame::Deny { site } => {
            service.links.block(site);
            service
                .log
                .log(&format!("link cut: S{} denied", site.index()));
            Dispatch::Reply(Frame::Done {
                detail: format!("link to site {} cut", site.index()),
            })
        }
        Frame::Allow { site } => {
            service.links.unblock(site);
            service
                .log
                .log(&format!("link restored: S{} allowed", site.index()));
            Dispatch::Reply(Frame::Done {
                detail: format!("link to site {} restored", site.index()),
            })
        }
        Frame::HealLinks => {
            service.links.clear();
            service.log.log("links healed: all rules dropped");
            Dispatch::Reply(Frame::Done {
                detail: "all links restored".to_string(),
            })
        }
        // Unsharded data ops against a sharded store: a typed refusal
        // telling the client what dialect to speak.
        Frame::Put { .. } | Frame::Get | Frame::Recover => Dispatch::Reply(Frame::Refused {
            message: "this store is sharded: use putk/getk (keyed frames) or address a shard \
                      with a shard envelope"
                .to_string(),
        }),
        // Bare peer frames (no shard envelope) cannot be routed.
        _ => Dispatch::Close,
    }
}

/// Installs a new shard map (the rebalance commit point at one site).
///
/// The map must decode, checksum, and carry a *newer* epoch. For every
/// shard whose placement changed, the slot is rebuilt under its write
/// lock: set the old daemon's `retired` epoch, capture its ⟨o, v, P⟩ +
/// image under the cluster lock (so every commit that beat the capture
/// is in it, and every queued op that missed it answers
/// `StaleShardMap`), then boot the successor with the captured state —
/// or drop the slot to `None` when this site left the placement.
///
/// A site *joining* a placement boots fresh at ⟨0, 0, P₀⟩; the
/// rebalance driver then runs the protocol-level RECOVER at it, which
/// is the paper's own machinery for a copy that lost its state —
/// Algorithm 1 takes P_m from the max-`o` responder, so the fresh copy
/// neither serves nor distorts a quorum until the RECOVER completes.
fn install_shard_map(service: &Arc<Service>, sharded: &ShardedService, bytes: &[u8]) -> Frame {
    let new = match ShardMap::decode(bytes) {
        Ok(map) => map,
        Err(error) => {
            return Frame::Refused {
                message: format!("shard map rejected: {error}"),
            }
        }
    };
    let mut map = sharded.map.lock().expect("shard map poisoned");
    if new.epoch <= map.epoch {
        return if new == *map {
            Frame::Done {
                detail: format!("shard map already at epoch {}", map.epoch),
            }
        } else {
            Frame::Refused {
                message: format!(
                    "shard map epoch {} is not newer than the installed epoch {}",
                    new.epoch, map.epoch
                ),
            }
        };
    }
    if new.shards.len() != map.shards.len() {
        return Frame::Refused {
            message: format!(
                "shard count change ({} -> {}) is not a rebalance; split/merge is out of scope",
                map.shards.len(),
                new.shards.len()
            ),
        };
    }
    let local = service.config.local.index();
    for (shard, (old_spec, new_spec)) in map.shards.iter().zip(&new.shards).enumerate() {
        if old_spec == new_spec {
            continue;
        }
        let hosted_after = new_spec.placement.contains(&local);
        let mut slot = sharded.slots[shard].write().expect("shard slot poisoned");
        let captured = slot.take().map(|old| {
            // Order matters: set the flag *before* taking the cluster
            // lock. A batch worker that wins the lock race commits
            // normally and the capture below includes it; one that
            // loses sees the flag and answers StaleShardMap. Either
            // way no acknowledged write misses the successor.
            old.retired.store(new.epoch, Ordering::SeqCst);
            let cluster = old.cluster.lock().expect("cluster poisoned");
            (
                cluster.state_at(old.local),
                cluster.value_at(old.local),
                cluster.pending_at(old.local),
            )
        });
        if hosted_after {
            match boot_daemon(
                &service.config,
                &service.links,
                &service.log,
                &service.shutdown,
                Some(shard as u16),
                new_spec.placement.clone(),
                Vec::new(),
                captured,
            ) {
                Ok(daemon) => *slot = Some(daemon),
                Err(error) => {
                    service.log.log(&format!(
                        "shard map install FAILED at shard {shard}: {error}"
                    ));
                    return Frame::Refused {
                        message: format!("shard {shard}: successor daemon failed to boot: {error}"),
                    };
                }
            }
        }
        service.log.log(&format!(
            "shard {shard}: placement {:?} -> {:?} at epoch {} ({})",
            old_spec.placement,
            new_spec.placement,
            new.epoch,
            if hosted_after { "hosting" } else { "released" },
        ));
    }
    *map = new.clone();
    if let Some(path) = &sharded.map_path {
        if let Err(error) = new.persist(path) {
            service.log.log(&format!(
                "shard map epoch {}: persist failed: {error}",
                new.epoch
            ));
        }
    }
    service
        .log
        .log(&format!("shard map installed: epoch {}", new.epoch));
    Frame::Done {
        detail: format!("shard map installed: epoch {}", new.epoch),
    }
}

/// The sharded `status` body: service-level shard fields (`shard.*`)
/// plus a per-hosted-shard state sample. Uses `try_lock` throughout —
/// `status` is the fleet's liveness probe and must answer even while a
/// shard sits in a slow quorum round.
fn sharded_status_text(service: &Arc<Service>, sharded: &ShardedService) -> String {
    let mut out = String::new();
    let mut line = |k: &str, v: String| {
        out.push_str(k);
        out.push('=');
        out.push_str(&v);
        out.push('\n');
    };
    line("site", service.config.local.index().to_string());
    line("policy", service.config.policy.name().to_string());
    let (epoch, specs) = {
        let map = sharded.map.lock().expect("shard map poisoned");
        (map.epoch, map.shards.clone())
    };
    line("shard.map_epoch", epoch.to_string());
    line("shard.count", specs.len().to_string());
    let local = service.config.local.index();
    let mut hosted = Vec::new();
    for (shard, spec) in specs.iter().enumerate() {
        if spec.placement.contains(&local) {
            hosted.push(shard.to_string());
        }
    }
    line(
        "shard.hosted",
        if hosted.is_empty() {
            "-".to_string()
        } else {
            hosted.join(",")
        },
    );
    for (shard, spec) in specs.iter().enumerate() {
        if !spec.placement.contains(&local) {
            continue;
        }
        let prefix = format!("shard.{shard}");
        line(
            &format!("{prefix}.role"),
            if spec.coordinator() == local {
                "coordinator".to_string()
            } else {
                "replica".to_string()
            },
        );
        let slot = sharded.slots[shard].read().expect("shard slot poisoned");
        if let Some(daemon) = &*slot {
            if let Ok(cluster) = daemon.cluster.try_lock() {
                let state = cluster.state_at(daemon.local);
                line(&format!("{prefix}.op"), state.op.to_string());
                line(&format!("{prefix}.version"), state.version.to_string());
                line(&format!("{prefix}.partition"), fmt_sites(state.partition));
            } else {
                line(&format!("{prefix}.busy"), "1".to_string());
            }
        }
    }
    line("links_blocked", fmt_sites(service.links.blocked()));
    line(
        "durability.enabled",
        service.config.data_dir.is_some().to_string(),
    );
    out
}

/// Writes one frame through a session's shared writer.
fn write_shared(writer: &Arc<Mutex<TcpStream>>, frame: &Frame) -> std::io::Result<()> {
    let mut guard = writer.lock().expect("session writer poisoned");
    write_frame(&mut *guard, frame)
}

/// Queues a data operation for the batch worker. `false` means the
/// daemon is shutting down (the queue is gone): close the session.
fn enqueue_data(daemon: &Arc<Daemon>, op: DataOp, done: Box<dyn FnOnce(Frame) + Send>) -> bool {
    daemon.batch.send(PendingData { op, done }).is_ok()
}

/// A completion that wraps the reply in the request's correlation id
/// and writes it through the session's shared writer.
fn tagged_completion(writer: &Arc<Mutex<TcpStream>>, id: u64) -> Box<dyn FnOnce(Frame) + Send> {
    let writer = Arc::clone(writer);
    Box::new(move |reply| {
        let tagged = Frame::Tagged {
            id,
            inner: Box::new(reply),
        };
        let _ = write_shared(&writer, &tagged);
    })
}

/// The legacy (untagged) data path: queue the operation, block this
/// session until the batch worker answers, write the bare reply.
fn serve_legacy_data(daemon: &Arc<Daemon>, writer: &Arc<Mutex<TcpStream>>, op: DataOp) -> bool {
    let (tx, rx) = mpsc::sync_channel(1);
    let done: Box<dyn FnOnce(Frame) + Send> = Box::new(move |reply| {
        let _ = tx.send(reply);
    });
    if !enqueue_data(daemon, op, done) {
        return false;
    }
    // A dropped sender (worker gone at shutdown) unblocks us with Err.
    let Ok(reply) = rx.recv() else { return false };
    write_shared(writer, &reply).is_ok()
}

/// The largest number of queued operations one batch absorbs — bounds
/// the cluster-lock hold and the blast radius of a durability failure.
const BATCH_CAP: usize = 256;

/// The batch worker: single consumer of the data-operation queue.
/// Drains what queued, serves it in runs — consecutive writes become
/// one poll/commit quorum exchange ([`Cluster::write_batch`]),
/// consecutive reads coalesce into one quorum read — then fsyncs once
/// for the whole batch before releasing any reply (DESIGN.md §12).
fn batch_loop(daemon: &Arc<Daemon>, shutdown: &AtomicBool, queue: &mpsc::Receiver<PendingData>) {
    loop {
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let first = match queue.recv_timeout(Duration::from_millis(100)) {
            Ok(item) => item,
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            Err(mpsc::RecvTimeoutError::Disconnected) => return,
        };
        // Take the lock first, then drain: every operation that queued
        // while the previous batch held it joins this one.
        let cluster = daemon.cluster.lock().expect("cluster poisoned");
        // Checked *under* the cluster lock: a map install sets the flag
        // before capturing state under this same lock, so a batch that
        // reaches here after the capture must not commit — its writes
        // would be invisible to the successor daemon. The typed stale
        // answer sends the client back for the new map.
        let retired = daemon.retired.load(Ordering::SeqCst);
        if retired != 0 {
            drop(cluster);
            let mut stale = vec![first];
            while let Ok(item) = queue.try_recv() {
                stale.push(item);
            }
            for item in stale {
                (item.done)(Frame::StaleShardMap { epoch: retired });
            }
            return;
        }
        let mut cluster = cluster;
        let mut items = vec![first];
        while items.len() < BATCH_CAP {
            match queue.try_recv() {
                Ok(item) => items.push(item),
                Err(_) => break,
            }
        }
        daemon.batch_rounds.fetch_add(1, Ordering::Relaxed);
        daemon
            .batch_ops
            .fetch_add(items.len() as u64, Ordering::Relaxed);
        daemon
            .batch_max
            .fetch_max(items.len() as u64, Ordering::Relaxed);
        run_batch(daemon, &mut cluster, items);
    }
}

/// Serves one drained batch under the cluster lock, syncs durably ONCE,
/// and only then releases the replies — the batched generalisation of
/// fsync-before-ack: no acknowledgement in the batch leaves before the
/// WAL holds every state change the batch made.
fn run_batch(
    daemon: &Arc<Daemon>,
    cluster: &mut Cluster<Vec<u8>, TcpTransport>,
    items: Vec<PendingData>,
) {
    // (completion, reply, Some(op name) when the reply is a grant that
    // a failed fsync must downgrade to a durability refusal).
    type Staged = (Box<dyn FnOnce(Frame) + Send>, Frame, Option<&'static str>);
    let mut replies: Vec<Staged> = Vec::with_capacity(items.len());
    let mut wrote = false;
    let mut iter = items.into_iter().peekable();
    while let Some(item) = iter.next() {
        match item.op {
            DataOp::Put(value) => {
                wrote = true;
                let mut values = vec![value];
                let mut dones = vec![item.done];
                while matches!(iter.peek().map(|next| &next.op), Some(DataOp::Put(_))) {
                    let next = iter.next().expect("peeked");
                    if let DataOp::Put(value) = next.op {
                        values.push(value);
                        dones.push(next.done);
                    }
                }
                let results = cluster.write_batch(daemon.local, values);
                for (done, result) in dones.into_iter().zip(results) {
                    let staged = match result {
                        Ok(op) => {
                            let detail = format!(
                                "committed o={} v={} P={{{}}}",
                                op.op,
                                op.version,
                                fmt_sites(op.participants)
                            );
                            daemon.log.log(&format!(
                                "GRANT write: {detail} — Algorithm 1: the group holds a strict majority of P_m"
                            ));
                            (Frame::Done { detail }, Some("write"))
                        }
                        Err(err) => (refuse(daemon, "write", &err), None),
                    };
                    replies.push((done, staged.0, staged.1));
                }
            }
            DataOp::PutKey { key, value } => {
                wrote = true;
                let mut entries = vec![(key, value)];
                let mut dones = vec![item.done];
                while matches!(
                    iter.peek().map(|next| &next.op),
                    Some(DataOp::PutKey { .. })
                ) {
                    let next = iter.next().expect("peeked");
                    if let DataOp::PutKey { key, value } = next.op {
                        entries.push((key, value));
                        dones.push(next.done);
                    }
                }
                // The coordinator-funnel read-modify-write: one quorum
                // read of the shard's KV image, the whole run's puts
                // folded in (queue order, later put wins), one batched
                // quorum write. Sound because only this worker — at the
                // shard's coordinator of the current epoch — mutates
                // the image.
                let count = entries.len();
                let staged: (Frame, Option<&'static str>) = match cluster.read(daemon.local) {
                    Ok(bytes) => match decode_kv(&bytes) {
                        Some(mut kv) => {
                            for (key, value) in entries {
                                kv.insert(key, value);
                            }
                            let results = cluster.write_batch(daemon.local, vec![encode_kv(&kv)]);
                            match results.into_iter().next().expect("one value, one result") {
                                Ok(op) => {
                                    let detail = format!(
                                        "committed o={} v={} P={{{}}}",
                                        op.op,
                                        op.version,
                                        fmt_sites(op.participants)
                                    );
                                    daemon.log.log(&format!(
                                        "GRANT keyed write ×{count}: {detail} — one folded image commit"
                                    ));
                                    (Frame::Done { detail }, Some("write"))
                                }
                                Err(err) => (refuse(daemon, "keyed write", &err), None),
                            }
                        }
                        None => (
                            Frame::Refused {
                                message: "shard image is not a KV map (corrupt replicated value)"
                                    .to_string(),
                            },
                            None,
                        ),
                    },
                    Err(err) => (refuse(daemon, "keyed write", &err), None),
                };
                for done in dones {
                    replies.push((done, staged.0.clone(), staged.1));
                }
            }
            DataOp::GetKey { key } => {
                let mut keys = vec![key];
                let mut dones = vec![item.done];
                while matches!(
                    iter.peek().map(|next| &next.op),
                    Some(DataOp::GetKey { .. })
                ) {
                    let next = iter.next().expect("peeked");
                    if let DataOp::GetKey { key } = next.op {
                        keys.push(key);
                        dones.push(next.done);
                    }
                }
                // One quorum read of the image serves the whole run;
                // each key resolves against it. A missing key is a
                // *refusal* (the read itself was granted — the quorum
                // ruled, the key just is not there).
                match cluster.read(daemon.local) {
                    Ok(bytes) => match decode_kv(&bytes) {
                        Some(kv) => {
                            let version = cluster.history().last().map_or_else(
                                || cluster.state_at(daemon.local).version,
                                |op| op.version,
                            );
                            daemon
                                .log
                                .log(&format!("GRANT keyed read ×{}: v={version}", keys.len()));
                            for (key, done) in keys.into_iter().zip(dones) {
                                let frame = match kv.get(&key) {
                                    Some(value) => Frame::Value {
                                        version,
                                        value: value.clone(),
                                    },
                                    None => Frame::Refused {
                                        message: format!("key {key:?} not found"),
                                    },
                                };
                                replies.push((done, frame, Some("read")));
                            }
                        }
                        None => {
                            for done in dones {
                                replies.push((
                                    done,
                                    Frame::Refused {
                                        message:
                                            "shard image is not a KV map (corrupt replicated value)"
                                                .to_string(),
                                    },
                                    None,
                                ));
                            }
                        }
                    },
                    Err(err) => {
                        let frame = refuse(daemon, "keyed read", &err);
                        for done in dones {
                            replies.push((done, frame.clone(), None));
                        }
                    }
                }
            }
            DataOp::Get => {
                let mut dones = vec![item.done];
                while matches!(iter.peek().map(|next| &next.op), Some(DataOp::Get)) {
                    dones.push(iter.next().expect("peeked").done);
                }
                // One quorum read serves the run: every waiter queued
                // before the round decided, so each is entitled to
                // exactly this answer.
                let (frame, granted) = match cluster.read(daemon.local) {
                    Ok(value) => {
                        // The version of the value *served*, from the
                        // read's committed history entry — the local
                        // copy may still be stale when a repaired site
                        // reads before running RECOVER.
                        let version = cluster.history().last().map_or_else(
                            || cluster.state_at(daemon.local).version,
                            |op| op.version,
                        );
                        daemon.log.log(&format!(
                            "GRANT read ×{}: v={version} — Algorithm 1: the group holds a strict majority of P_m",
                            dones.len()
                        ));
                        (Frame::Value { version, value }, Some("read"))
                    }
                    Err(err) => (refuse(daemon, "read", &err), None),
                };
                for done in dones {
                    replies.push((done, frame.clone(), granted));
                }
            }
        }
    }
    // Persist regardless of the outcomes: even a refused operation may
    // have changed local state (a partial commit landed).
    let synced = sync_durable(daemon, cluster);
    if wrote && daemon.crash_after_wal_append && matches!(synced, Ok(true)) {
        // Crash-test hook: the WAL holds the commit, the client never
        // hears about it. The restart must serve it anyway —
        // fsync-before-ack, proven from outside.
        daemon
            .log
            .log("crash-after-wal-append: aborting before the ack");
        std::process::abort();
    }
    let fsync_failed = synced.err();
    for (done, frame, granted) in replies {
        let frame = match (&fsync_failed, granted) {
            (Some(error), Some(op)) => durability_refuse(daemon, op, error),
            _ => frame,
        };
        done(frame);
    }
}

enum Dispatch {
    Reply(Frame),
    Silent,
    Close,
}

fn dispatch(daemon: &Arc<Daemon>, frame: Frame) -> Dispatch {
    match frame {
        // ---- peer frames: the recipient side of the protocol --------
        Frame::StartReq {
            ticket,
            from,
            to,
            mark_pending,
        } => {
            if daemon.links.is_blocked(from) {
                return Dispatch::Silent; // partitioned: the frame "never arrived"
            }
            let mut cluster = daemon.cluster.lock().expect("cluster poisoned");
            match cluster.serve_at(to, &MessageKind::StartRequest, None, ticket, mark_pending) {
                Some(Reply::State {
                    op,
                    version,
                    partition,
                }) => {
                    // The vote this reply casts may wedge the site; it
                    // must survive a crash, or the site could vote
                    // again in a conflicting operation. Fsync before
                    // the state reply leaves — abstain if the disk
                    // cannot hold the vote.
                    if let Err(error) = sync_durable(daemon, &cluster) {
                        daemon.log.log(&format!(
                            "abstain: START from S{} ticket={ticket} — durability failure: {error}",
                            from.index()
                        ));
                        return Dispatch::Reply(Frame::Abstain {
                            ticket,
                            from: to,
                            to: from,
                        });
                    }
                    Dispatch::Reply(Frame::StateRep {
                        ticket,
                        from: to,
                        to: from,
                        state: dynvote_core::state::ReplicaState {
                            op,
                            version,
                            partition,
                        },
                    })
                }
                _ => {
                    daemon.log.log(&format!(
                        "abstain: START from S{} ticket={ticket} — outstanding vote wedges this site",
                        from.index()
                    ));
                    Dispatch::Reply(Frame::Abstain {
                        ticket,
                        from: to,
                        to: from,
                    })
                }
            }
        }
        Frame::Commit {
            ticket,
            from,
            to,
            state,
            value,
        } => {
            if daemon.links.is_blocked(from) {
                return Dispatch::Silent;
            }
            let mut cluster = daemon.cluster.lock().expect("cluster poisoned");
            let kind = MessageKind::Commit {
                op: state.op,
                version: state.version,
                partition: state.partition,
            };
            match cluster.serve_at(to, &kind, value.as_ref(), ticket, false) {
                Some(Reply::Ack) => {
                    // Fsync the installed commit before acknowledging
                    // it — an acked commit must survive a crash. A
                    // durability failure stays silent: the coordinator
                    // treats it as a missing ack (partial commit),
                    // which is the honest outcome.
                    if let Err(error) = sync_durable(daemon, &cluster) {
                        daemon.log.log(&format!(
                            "commit from S{} NOT acked — durability failure: {error}",
                            from.index()
                        ));
                        return Dispatch::Silent;
                    }
                    daemon.log.log(&format!(
                        "commit installed from S{}: o={} v={} P={{{}}}",
                        from.index(),
                        state.op,
                        state.version,
                        fmt_sites(state.partition)
                    ));
                    Dispatch::Reply(Frame::CommitAck {
                        ticket,
                        from: to,
                        to: from,
                    })
                }
                _ => Dispatch::Silent,
            }
        }
        Frame::CopyReq { ticket, from, to } => {
            if daemon.links.is_blocked(from) {
                return Dispatch::Silent;
            }
            let mut cluster = daemon.cluster.lock().expect("cluster poisoned");
            match cluster.serve_at(to, &MessageKind::CopyRequest, None, ticket, false) {
                Some(Reply::Copy { version, value }) => Dispatch::Reply(Frame::CopyRep {
                    ticket,
                    from: to,
                    to: from,
                    version,
                    value,
                }),
                _ => Dispatch::Reply(Frame::Abstain {
                    ticket,
                    from: to,
                    to: from,
                }),
            }
        }
        Frame::VoteProbe { ticket, from, .. } => {
            if daemon.links.is_blocked(from) {
                // The simulated partition drops the probe: no reply,
                // the prober times out as it would across a real cut.
                return Dispatch::Close;
            }
            let answer = daemon
                .ledger
                .lock()
                .expect("op ledger poisoned")
                .answer(ticket, from);
            match answer {
                ProbeAnswer::Release(keep) => {
                    daemon.log.log(&format!(
                        "vote probe from S{}: ticket={ticket} finished — re-sent RELEASE",
                        from.index()
                    ));
                    Dispatch::Reply(Frame::Release {
                        ticket,
                        from: daemon.local,
                        keep,
                    })
                }
                ProbeAnswer::Commit(record) => {
                    daemon.log.log(&format!(
                        "vote probe from S{}: ticket={ticket} committed — re-sent COMMIT",
                        from.index()
                    ));
                    Dispatch::Reply(Frame::Commit {
                        ticket,
                        from: daemon.local,
                        to: from,
                        state: record.state,
                        value: record.value,
                    })
                }
                ProbeAnswer::Unknown => {
                    if dead_and_unfenced(daemon, ticket) {
                        daemon.log.log(&format!(
                            "vote probe from S{}: ticket={ticket} is a dead epoch's, above the fence — released",
                            from.index()
                        ));
                        Dispatch::Reply(Frame::Release {
                            ticket,
                            from: daemon.local,
                            keep: SiteSet::EMPTY,
                        })
                    } else {
                        // In flight, evicted, or a dead epoch at or
                        // below the fence: cannot soundly say.
                        Dispatch::Reply(Frame::Abstain {
                            ticket,
                            from: daemon.local,
                            to: from,
                        })
                    }
                }
            }
        }
        Frame::Release { ticket, from, keep } => {
            if !daemon.links.is_blocked(from) {
                let mut cluster = daemon.cluster.lock().expect("cluster poisoned");
                cluster.local_release(ticket, keep);
                // Best-effort: a release that fails to persist only
                // leaves the site wedged after a crash — the safe
                // direction (it abstains until a commit clears it).
                if let Err(error) = sync_durable(daemon, &cluster) {
                    daemon.log.log(&format!(
                        "release ticket={ticket}: durability failure: {error}"
                    ));
                }
            }
            Dispatch::Silent
        }

        // ---- client data frames: the coordinator side ---------------
        // Put/Get never reach dispatch: `handle_connection` intercepts
        // them (tagged or not) and queues them for the batch worker.
        // Likewise the keyed/shard-map frames and envelopes are routed
        // at the service layer before a per-shard daemon sees them.
        // Arriving here means a peer-loop path sent one — confusion.
        Frame::Put { .. }
        | Frame::Get
        | Frame::Tagged { .. }
        | Frame::Shard { .. }
        | Frame::PutKey { .. }
        | Frame::GetKey { .. }
        | Frame::GetShardMap
        | Frame::InstallShardMap { .. } => Dispatch::Close,
        Frame::Recover => {
            let mut cluster = daemon.cluster.lock().expect("cluster poisoned");
            match cluster.recover(daemon.local) {
                Ok(()) => {
                    if let Err(error) = sync_durable(daemon, &cluster) {
                        return Dispatch::Reply(durability_refuse(daemon, "recover", &error));
                    }
                    let state = cluster.state_at(daemon.local);
                    let detail = format!(
                        "recovered: o={} v={} P={{{}}}",
                        state.op,
                        state.version,
                        fmt_sites(state.partition)
                    );
                    daemon.log.log(&format!(
                        "GRANT recover: {detail} — Figure 3/7: majority of P_m reachable, copy refreshed"
                    ));
                    Dispatch::Reply(Frame::Done { detail })
                }
                Err(err) => {
                    if let Err(error) = sync_durable(daemon, &cluster) {
                        daemon
                            .log
                            .log(&format!("recover refusal: durability failure: {error}"));
                    }
                    Dispatch::Reply(refuse(daemon, "recover", &err))
                }
            }
        }

        // ---- admin frames -------------------------------------------
        Frame::Deny { site } => {
            daemon.links.block(site);
            daemon
                .log
                .log(&format!("link cut: S{} denied", site.index()));
            Dispatch::Reply(Frame::Done {
                detail: format!("link to site {} cut", site.index()),
            })
        }
        Frame::Allow { site } => {
            daemon.links.unblock(site);
            daemon
                .log
                .log(&format!("link restored: S{} allowed", site.index()));
            Dispatch::Reply(Frame::Done {
                detail: format!("link to site {} restored", site.index()),
            })
        }
        Frame::HealLinks => {
            daemon.links.clear();
            daemon.log.log("links healed: all rules dropped");
            Dispatch::Reply(Frame::Done {
                detail: "all links restored".to_string(),
            })
        }
        Frame::Status => {
            // `status` doubles as the liveness probe for every harness
            // (fleet boot, nemesis cooldown, smoke scripts). Under
            // faults a quorum round can hold the cluster lock for many
            // seconds of bounded peer timeouts, so blocking here would
            // starve the probe behind queued data operations and make
            // an alive daemon look dead. Spin briefly for the lock;
            // past that, answer `busy=1` — the prober learns the
            // process is up even when no state can be sampled.
            let give_up = Instant::now() + Duration::from_millis(1500);
            loop {
                match daemon.cluster.try_lock() {
                    Ok(cluster) => {
                        break Dispatch::Reply(Frame::Report {
                            text: status_text(daemon, &cluster),
                        });
                    }
                    Err(std::sync::TryLockError::Poisoned(error)) => {
                        panic!("cluster poisoned: {error}")
                    }
                    Err(std::sync::TryLockError::WouldBlock) => {
                        if Instant::now() >= give_up {
                            break Dispatch::Reply(Frame::Report {
                                text: format!("site={}\nbusy=1\n", daemon.local.index()),
                            });
                        }
                        std::thread::sleep(Duration::from_millis(10));
                    }
                }
            }
        }

        // A response frame arriving as a request is protocol confusion.
        Frame::StateRep { .. }
        | Frame::CommitAck { .. }
        | Frame::CopyRep { .. }
        | Frame::Abstain { .. }
        | Frame::Done { .. }
        | Frame::Value { .. }
        | Frame::Refused { .. }
        | Frame::Unavailable { .. }
        | Frame::Report { .. }
        | Frame::ShardMapRep { .. }
        | Frame::StaleShardMap { .. } => Dispatch::Close,
    }
}

/// The typed cause behind a data-operation refusal — what a client (or
/// the fault-campaign workload) branches on without parsing prose.
#[must_use]
pub fn unavailable_reason(err: &AccessError) -> UnavailableReason {
    match err {
        AccessError::NoQuorum { .. } => UnavailableReason::NoQuorum,
        AccessError::TieLost { .. } => UnavailableReason::TieLost,
        AccessError::NoCurrentCopy { .. } => UnavailableReason::NoCurrentCopy,
        AccessError::OriginUnavailable { .. } => UnavailableReason::OriginDown,
        AccessError::Timeout { .. } => UnavailableReason::PeerSilence,
        AccessError::Indeterminate { .. } => UnavailableReason::Indeterminate,
    }
}

/// A data operation the quorum logic cannot serve answers promptly with
/// a typed [`Frame::Unavailable`] — graceful degradation, never a
/// stall: the client learns *why* (no quorum, tie lost, peers silent…)
/// and decides whether to retry elsewhere.
fn refuse(daemon: &Arc<Daemon>, op: &str, err: &AccessError) -> Frame {
    let clause = refusal_clause(err);
    daemon.log.log(&format!("REFUSE {op}: {err} — {clause}"));
    Frame::Unavailable {
        reason: unavailable_reason(err),
        message: format!("{err} [{clause}]"),
    }
}

/// A granted operation whose durable record could not be fsync'd is
/// refused to the client — the site never acknowledges state its disk
/// does not hold. (The cluster-wide commit may still have landed at the
/// other participants; the refusal message says so.)
fn durability_refuse(daemon: &Arc<Daemon>, op: &str, error: &std::io::Error) -> Frame {
    daemon
        .log
        .log(&format!("REFUSE {op}: local WAL fsync failed: {error}"));
    Frame::Refused {
        message: format!("{op} not acknowledged: local WAL fsync failed ({error}); the operation may have committed at other sites"),
    }
}

/// The `dynvote-ctl status` body: the paper's per-copy state
/// `⟨o_i, v_i, P_i⟩`, the operation counters, and per-link transport
/// health, one `key=value` per line.
fn status_text(daemon: &Arc<Daemon>, cluster: &Cluster<Vec<u8>, TcpTransport>) -> String {
    let state = cluster.state_at(daemon.local);
    let stats = cluster.stats();
    let pending = cluster.pending_sites().contains(daemon.local);
    let mut out = String::new();
    let mut line = |k: &str, v: String| {
        out.push_str(k);
        out.push('=');
        out.push_str(&v);
        out.push('\n');
    };
    line("site", daemon.local.index().to_string());
    if let Some(shard) = daemon.shard {
        line("shard", shard.to_string());
    }
    line("policy", daemon.policy_name.to_string());
    line("op", state.op.to_string());
    line("version", state.version.to_string());
    line("partition", fmt_sites(state.partition));
    line("pending", pending.to_string());
    if cluster.copies().contains(daemon.local) {
        line(
            "value_len",
            cluster.value_at(daemon.local).len().to_string(),
        );
    } else {
        line("role", "witness".to_string());
    }
    line("reads_ok", stats.reads_ok.to_string());
    line("reads_refused", stats.reads_refused.to_string());
    line("writes_ok", stats.writes_ok.to_string());
    line("writes_refused", stats.writes_refused.to_string());
    line("recovers_ok", stats.recovers_ok.to_string());
    line("recovers_refused", stats.recovers_refused.to_string());
    line("links_blocked", fmt_sites(daemon.links.blocked()));
    line(
        "probe.released",
        daemon.probe_released.load(Ordering::Relaxed).to_string(),
    );
    line(
        "probe.commits",
        daemon.probe_commits.load(Ordering::Relaxed).to_string(),
    );
    line(
        "batch.rounds",
        daemon.batch_rounds.load(Ordering::Relaxed).to_string(),
    );
    line(
        "batch.ops",
        daemon.batch_ops.load(Ordering::Relaxed).to_string(),
    );
    line(
        "batch.max",
        daemon.batch_max.load(Ordering::Relaxed).to_string(),
    );
    match &daemon.store {
        Some(store) => {
            let store = store.lock().expect("site store poisoned");
            line("durability.enabled", "true".to_string());
            line("durability.snapshot_seq", store.snapshot_seq().to_string());
            line("durability.wal_records", store.wal_records().to_string());
            line("durability.wal_bytes", store.wal_bytes().to_string());
            line("durability.last_fsync", store.last_fsync().to_string());
        }
        None => line("durability.enabled", "false".to_string()),
    }
    for (site, peer) in cluster.transport().peer_stats() {
        let prefix = format!("peer.{}", site.index());
        line(&format!("{prefix}.connected"), peer.connected.to_string());
        line(
            &format!("{prefix}.blocked"),
            daemon.links.is_blocked(site).to_string(),
        );
        line(&format!("{prefix}.sends"), peer.sends.to_string());
        line(&format!("{prefix}.failures"), peer.failures.to_string());
        line(&format!("{prefix}.reconnects"), peer.reconnects.to_string());
        line(&format!("{prefix}.backoff_ms"), peer.backoff_ms.to_string());
    }
    out
}
