//! Daemon configuration: the cluster layout one `dynvote-stored`
//! instance needs to join a live cluster.
//!
//! Everything arrives as plain CLI flags (the container ships no
//! config-file parser and needs none):
//!
//! ```text
//! dynvote-stored --site 0 --policy odv \
//!     --peers 0=127.0.0.1:7100,1=127.0.0.1:7101,2=127.0.0.1:7102 \
//!     [--witnesses 2] \
//!     [--segments main=0,1,2,3,4;second=5;third=6,7] \
//!     [--bridges 3=second;4=third] \
//!     [--value hello] [--log /path/to/node.log] \
//!     [--data-dir /var/lib/dynvote/node0] [--snapshot-every 64] \
//!     [--boot-recover-ms 5000] [--bind-retry-ms 0] \
//!     [--connect-timeout-ms 500] [--read-timeout-ms 2000] \
//!     [--backoff-ms 100] [--backoff-cap-ms 2000]
//! ```
//!
//! With `--data-dir` the daemon is durable: every commit and
//! outstanding vote is fsync'd to a write-ahead log before it is
//! acknowledged, snapshots land every `--snapshot-every` records, and
//! a restart restores snapshot + WAL, then retries the protocol-level
//! RECOVER for up to `--boot-recover-ms` to catch up from the majority
//! partition. `--bind-retry-ms` keeps retrying a busy listen address —
//! the lingering-socket window a `kill -9` leaves behind.
//!
//! Without `--segments` the sites form one broadcast segment. With
//! them, the topology mirrors [`dynvote_topology::NetworkBuilder`]:
//! named segments plus `gateway=segment` bridges — the Figure 8
//! eight-site, three-segment network is exactly the example above.

use std::time::Duration;

use dynvote_check::parse_policy;
use dynvote_control::Placement;
use dynvote_replica::Protocol;
use dynvote_topology::{Network, NetworkBuilder};
use dynvote_types::SiteId;

use crate::tcp::TcpTimeouts;

/// A parsed daemon configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// The site this daemon hosts.
    pub local: SiteId,
    /// The consistency protocol.
    pub policy: Protocol,
    /// Every site's daemon address, local site included (its entry is
    /// the listen address).
    pub peers: Vec<(SiteId, String)>,
    /// Sites hosting witnesses instead of full copies.
    pub witnesses: Vec<usize>,
    /// Named segments (empty = one broadcast segment).
    pub segments: Vec<(String, Vec<usize>)>,
    /// Gateway bridges: `(gateway site, segment name)`.
    pub bridges: Vec<(usize, String)>,
    /// The initial file contents.
    pub initial: Vec<u8>,
    /// Optional log file (always also logs to stderr unless `quiet`).
    pub log: Option<String>,
    /// Suppress the stderr copy of the protocol log. The load driver
    /// sets this: formatting 50k grant lines a second to a terminal
    /// would measure the console, not the transport. File logging
    /// (`--log`) still applies.
    pub quiet: bool,
    /// Socket and backoff timing.
    pub timeouts: TcpTimeouts,
    /// Durable storage directory (`None` = in-memory only).
    pub data_dir: Option<String>,
    /// Automatic snapshot threshold in WAL records (0 = never).
    pub snapshot_every: u64,
    /// How long a restarted-from-disk daemon retries the protocol-level
    /// RECOVER at boot before serving anyway (zero disables it).
    pub boot_recover: Duration,
    /// How long to retry binding a busy listen address before giving
    /// up (zero = a single attempt).
    pub bind_retry: Duration,
    /// Crash-test hook: abort the process after a client write's WAL
    /// append + fsync but *before* the acknowledgement leaves — proves
    /// the fsync-before-ack ordering from the outside.
    pub crash_after_wal_append: bool,
    /// How many independent shard groups the fleet runs (`--shards N`).
    /// `None` keeps the legacy single-object store, byte-identical on
    /// the wire; `Some(n)` boots the sharded service with `n` voting
    /// groups placed by `shard_placement`.
    pub shards: Option<usize>,
    /// How shards map onto sites (`--shard-placement ring:R|paper`).
    pub shard_placement: Placement,
}

fn parse_usize(flag: &str, value: &str) -> Result<usize, String> {
    value
        .parse::<usize>()
        .map_err(|_| format!("{flag}: expected a number, got {value:?}"))
}

fn parse_ms(flag: &str, value: &str) -> Result<Duration, String> {
    Ok(Duration::from_millis(value.parse::<u64>().map_err(
        |_| format!("{flag}: expected milliseconds, got {value:?}"),
    )?))
}

fn parse_index_list(flag: &str, value: &str) -> Result<Vec<usize>, String> {
    value
        .split(',')
        .filter(|s| !s.trim().is_empty())
        .map(|s| parse_usize(flag, s.trim()))
        .collect()
}

impl Config {
    /// Parses the flag list (everything after the program name).
    ///
    /// # Errors
    ///
    /// Returns a usage message naming the first offending flag.
    pub fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<Config, String> {
        let mut site = None;
        let mut policy = None;
        let mut peers: Vec<(SiteId, String)> = Vec::new();
        let mut witnesses = Vec::new();
        let mut segments = Vec::new();
        let mut bridges = Vec::new();
        let mut initial = Vec::new();
        let mut log = None;
        let mut quiet = false;
        let mut timeouts = TcpTimeouts::default();
        let mut data_dir = None;
        let mut snapshot_every = 64u64;
        let mut boot_recover = Duration::from_millis(5000);
        let mut bind_retry = Duration::ZERO;
        let mut crash_after_wal_append = false;
        let mut shards = None;
        let mut shard_placement = Placement::Ring { replicas: 3 };
        let mut iter = args.into_iter();
        while let Some(flag) = iter.next() {
            let mut value = |flag: &str| {
                iter.next()
                    .ok_or_else(|| format!("{flag} requires a value"))
            };
            match flag.as_str() {
                "--site" => site = Some(parse_usize("--site", &value("--site")?)?),
                "--policy" => {
                    let name = value("--policy")?;
                    policy = Some(parse_policy(&name).ok_or_else(|| {
                        format!("--policy: unknown policy {name:?} (mcv|dv|ldv|odv|tdv|otdv)")
                    })?);
                }
                "--peers" => {
                    for entry in value("--peers")?.split(',') {
                        let (index, addr) = entry
                            .split_once('=')
                            .ok_or_else(|| format!("--peers: expected site=addr, got {entry:?}"))?;
                        let index = parse_usize("--peers", index.trim())?;
                        let id = SiteId::try_new(index)
                            .ok_or_else(|| format!("--peers: site {index} out of range"))?;
                        peers.push((id, addr.trim().to_string()));
                    }
                }
                "--witnesses" => {
                    witnesses = parse_index_list("--witnesses", &value("--witnesses")?)?
                }
                "--segments" => {
                    for entry in value("--segments")?.split(';') {
                        let (name, sites) = entry.split_once('=').ok_or_else(|| {
                            format!("--segments: expected name=i,j,…, got {entry:?}")
                        })?;
                        segments.push((
                            name.trim().to_string(),
                            parse_index_list("--segments", sites)?,
                        ));
                    }
                }
                "--bridges" => {
                    for entry in value("--bridges")?.split(';') {
                        let (gateway, segment) = entry.split_once('=').ok_or_else(|| {
                            format!("--bridges: expected gateway=segment, got {entry:?}")
                        })?;
                        bridges.push((
                            parse_usize("--bridges", gateway.trim())?,
                            segment.trim().to_string(),
                        ));
                    }
                }
                "--value" => initial = value("--value")?.into_bytes(),
                "--log" => log = Some(value("--log")?),
                "--quiet" => quiet = true,
                "--data-dir" => data_dir = Some(value("--data-dir")?),
                "--snapshot-every" => {
                    snapshot_every = value("--snapshot-every")?
                        .parse::<u64>()
                        .map_err(|_| "--snapshot-every: expected a record count".to_string())?;
                }
                "--boot-recover-ms" => {
                    boot_recover = parse_ms("--boot-recover-ms", &value("--boot-recover-ms")?)?;
                }
                "--bind-retry-ms" => {
                    bind_retry = parse_ms("--bind-retry-ms", &value("--bind-retry-ms")?)?;
                }
                "--crash-after-wal-append" => crash_after_wal_append = true,
                "--shards" => {
                    let count = parse_usize("--shards", &value("--shards")?)?;
                    if count == 0 || count > u16::MAX as usize {
                        return Err(format!("--shards: {count} out of range (1..=65535)"));
                    }
                    shards = Some(count);
                }
                "--shard-placement" => {
                    let spec = value("--shard-placement")?;
                    shard_placement = Placement::parse(&spec).ok_or_else(|| {
                        format!("--shard-placement: expected ring:R or paper, got {spec:?}")
                    })?;
                }
                "--connect-timeout-ms" => {
                    timeouts.connect =
                        parse_ms("--connect-timeout-ms", &value("--connect-timeout-ms")?)?;
                }
                "--read-timeout-ms" => {
                    timeouts.read = parse_ms("--read-timeout-ms", &value("--read-timeout-ms")?)?;
                }
                "--backoff-ms" => {
                    timeouts.backoff_floor = parse_ms("--backoff-ms", &value("--backoff-ms")?)?;
                }
                "--backoff-cap-ms" => {
                    timeouts.backoff_cap =
                        parse_ms("--backoff-cap-ms", &value("--backoff-cap-ms")?)?;
                }
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        let site = site.ok_or("--site is required")?;
        let local = SiteId::try_new(site).ok_or_else(|| format!("--site: {site} out of range"))?;
        let policy = policy.ok_or("--policy is required (mcv|dv|ldv|odv|tdv|otdv)")?;
        if peers.is_empty() {
            return Err("--peers is required".to_string());
        }
        if !peers.iter().any(|(id, _)| *id == local) {
            return Err(format!(
                "--peers must include the local site {site} (its listen address)"
            ));
        }
        Ok(Config {
            local,
            policy,
            peers,
            witnesses,
            segments,
            bridges,
            initial,
            log,
            quiet,
            timeouts,
            data_dir,
            snapshot_every,
            boot_recover,
            bind_retry,
            crash_after_wal_append,
            shards,
            shard_placement,
        })
    }

    /// The address this daemon listens on (its own `--peers` entry).
    #[must_use]
    pub fn listen_addr(&self) -> &str {
        self.peers
            .iter()
            .find(|(id, _)| *id == self.local)
            .map(|(_, addr)| addr.as_str())
            .expect("validated at parse time")
    }

    /// Sites hosting full copies: every peer not declared a witness.
    #[must_use]
    pub fn copies(&self) -> Vec<usize> {
        self.peers
            .iter()
            .map(|(id, _)| id.index())
            .filter(|index| !self.witnesses.contains(index))
            .collect()
    }

    /// Builds the communication topology.
    ///
    /// # Errors
    ///
    /// Reports an invalid segment/bridge description.
    pub fn network(&self) -> Result<Network, String> {
        if self.segments.is_empty() {
            let max = self
                .peers
                .iter()
                .map(|(id, _)| id.index())
                .max()
                .unwrap_or(0);
            return Ok(Network::single_segment(max + 1));
        }
        let mut builder = NetworkBuilder::new();
        for (name, sites) in &self.segments {
            builder = builder.segment(name, sites.iter().copied());
        }
        for (gateway, segment) in &self.bridges {
            builder = builder.bridge(*gateway, segment);
        }
        builder.build().map_err(|e| format!("bad topology: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(line: &str) -> impl Iterator<Item = String> + '_ {
        line.split_whitespace().map(str::to_string)
    }

    #[test]
    fn figure_8_line_parses() {
        let config = Config::parse_args(args(
            "--site 3 --policy otdv \
             --peers 0=a:1,1=a:2,2=a:3,3=a:4,4=a:5,5=a:6,6=a:7,7=a:8 \
             --segments main=0,1,2,3,4;second=5;third=6,7 \
             --bridges 3=second;4=third",
        ))
        .unwrap();
        assert_eq!(config.local, SiteId::new(3));
        assert_eq!(config.policy, Protocol::Otdv);
        assert_eq!(config.listen_addr(), "a:4");
        assert_eq!(config.copies().len(), 8);
        let network = config.network().unwrap();
        assert_eq!(network.segment_count(), 3);
    }

    #[test]
    fn missing_required_flags_are_reported() {
        assert!(Config::parse_args(args("--policy odv --peers 0=a:1"))
            .unwrap_err()
            .contains("--site"));
        assert!(Config::parse_args(args("--site 0 --peers 0=a:1"))
            .unwrap_err()
            .contains("--policy"));
        assert!(
            Config::parse_args(args("--site 1 --policy odv --peers 0=a:1"))
                .unwrap_err()
                .contains("local site")
        );
        assert!(
            Config::parse_args(args("--site 0 --policy zzz --peers 0=a:1"))
                .unwrap_err()
                .contains("unknown policy")
        );
    }

    #[test]
    fn durability_flags_parse_with_sane_defaults() {
        let config = Config::parse_args(args("--site 0 --policy odv --peers 0=a:1")).unwrap();
        assert_eq!(config.data_dir, None);
        assert_eq!(config.snapshot_every, 64);
        assert_eq!(config.boot_recover, Duration::from_millis(5000));
        assert_eq!(config.bind_retry, Duration::ZERO);
        assert!(!config.crash_after_wal_append);

        let config = Config::parse_args(args(
            "--site 0 --policy odv --peers 0=a:1 \
             --data-dir /tmp/d0 --snapshot-every 8 --boot-recover-ms 0 \
             --bind-retry-ms 1500 --crash-after-wal-append",
        ))
        .unwrap();
        assert_eq!(config.data_dir.as_deref(), Some("/tmp/d0"));
        assert_eq!(config.snapshot_every, 8);
        assert_eq!(config.boot_recover, Duration::ZERO);
        assert_eq!(config.bind_retry, Duration::from_millis(1500));
        assert!(config.crash_after_wal_append);
    }

    #[test]
    fn shard_flags_parse_and_validate() {
        let config = Config::parse_args(args("--site 0 --policy odv --peers 0=a:1")).unwrap();
        assert_eq!(config.shards, None);
        assert_eq!(config.shard_placement, Placement::Ring { replicas: 3 });

        let config = Config::parse_args(args(
            "--site 0 --policy odv --peers 0=a:1 --shards 4 --shard-placement ring:2",
        ))
        .unwrap();
        assert_eq!(config.shards, Some(4));
        assert_eq!(config.shard_placement, Placement::Ring { replicas: 2 });

        assert!(
            Config::parse_args(args("--site 0 --policy odv --peers 0=a:1 --shards 0"))
                .unwrap_err()
                .contains("--shards")
        );
        assert!(Config::parse_args(args(
            "--site 0 --policy odv --peers 0=a:1 --shard-placement hash"
        ))
        .unwrap_err()
        .contains("--shard-placement"));
    }

    #[test]
    fn timeouts_parse_as_milliseconds() {
        let config = Config::parse_args(args(
            "--site 0 --policy odv --peers 0=a:1 \
             --connect-timeout-ms 100 --read-timeout-ms 300 \
             --backoff-ms 10 --backoff-cap-ms 50",
        ))
        .unwrap();
        assert_eq!(config.timeouts.connect, Duration::from_millis(100));
        assert_eq!(config.timeouts.read, Duration::from_millis(300));
        assert_eq!(config.timeouts.backoff_floor, Duration::from_millis(10));
        assert_eq!(config.timeouts.backoff_cap, Duration::from_millis(50));
    }
}
