//! `TcpTransport`: the [`Transport`] implementation that carries the
//! protocol over real sockets.
//!
//! One I/O thread per peer owns that peer's connection. The
//! coordinator hands it an encoded frame over an in-process channel
//! and blocks (bounded) for the outcome; the thread connects on
//! demand, writes the frame, and reads the single reply frame the
//! remote daemon sends back on the same connection. Every failure —
//! refused connection, reset, read timeout, malformed reply — is
//! *silence* to the protocol: [`Carried::silent`] with a
//! [`Verdict::Drop`], exactly how the in-memory bus reports a lost
//! message, so the cluster's bounded-retry and quorum logic need no
//! network-specific cases.
//!
//! Reconnection uses capped exponential backoff: after a failure the
//! thread refuses further attempts until the backoff window elapses
//! (failing sends fast instead of hammering a dead peer), doubling the
//! window on each consecutive failure up to a cap and resetting it on
//! success. Each wait is *jittered* — drawn from `[window/2, window]`
//! per link — so sites restarted at the same instant do not reconnect
//! in lockstep.
//!
//! [`LinkRules`] is the partition surface: a shared set of peers this
//! host refuses to talk to. Outbound frames to a denied peer are
//! dropped before they reach a socket; the daemon consults the same
//! rules to ignore inbound frames, so denying a site severs the link
//! in both directions — a *real* partition for a live cluster, driven
//! at runtime by `dynvote-ctl deny/allow/heal-links`.

use std::collections::BTreeMap;
use std::io::Write;
use std::net::TcpStream;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use dynvote_core::state::ReplicaState;
use dynvote_replica::Message;
use dynvote_replica::{
    Carried, LocalServe, MessageKind, Reply, Response, Transport, Verdict, WireRequest,
};
use dynvote_types::{SiteId, SiteSet};

use crate::jitter::Jitter;
use crate::probe::OpLedger;
use crate::wire::{read_frame, Frame};

/// The runtime-mutable partition surface shared by the transport (which
/// drops outbound frames) and the daemon (which ignores inbound ones).
#[derive(Debug, Default)]
pub struct LinkRules {
    blocked: Mutex<SiteSet>,
}

impl LinkRules {
    /// No links cut.
    #[must_use]
    pub fn new() -> Self {
        LinkRules::default()
    }

    /// Cuts the link to `site` (both directions, once the daemon
    /// consults the same rules). Returns `false` if it was already cut.
    pub fn block(&self, site: SiteId) -> bool {
        self.blocked
            .lock()
            .expect("link rules poisoned")
            .insert(site)
    }

    /// Restores the link to `site`.
    pub fn unblock(&self, site: SiteId) -> bool {
        self.blocked
            .lock()
            .expect("link rules poisoned")
            .remove(site)
    }

    /// Restores every link.
    pub fn clear(&self) {
        *self.blocked.lock().expect("link rules poisoned") = SiteSet::EMPTY;
    }

    /// Whether traffic to/from `site` is currently denied.
    #[must_use]
    pub fn is_blocked(&self, site: SiteId) -> bool {
        self.blocked
            .lock()
            .expect("link rules poisoned")
            .contains(site)
    }

    /// The full denied set.
    #[must_use]
    pub fn blocked(&self) -> SiteSet {
        *self.blocked.lock().expect("link rules poisoned")
    }
}

/// Socket and retry timing for [`TcpTransport`].
#[derive(Clone, Copy, Debug)]
pub struct TcpTimeouts {
    /// Budget for one `connect` attempt.
    pub connect: Duration,
    /// Budget for reading one reply frame.
    pub read: Duration,
    /// First backoff window after a failure.
    pub backoff_floor: Duration,
    /// Backoff window cap (the exponential doubling stops here).
    pub backoff_cap: Duration,
}

impl Default for TcpTimeouts {
    fn default() -> Self {
        TcpTimeouts {
            connect: Duration::from_millis(500),
            read: Duration::from_millis(2000),
            backoff_floor: Duration::from_millis(100),
            backoff_cap: Duration::from_millis(2000),
        }
    }
}

impl TcpTimeouts {
    /// Fast timings for loopback tests: failures settle in
    /// milliseconds instead of seconds.
    #[must_use]
    pub fn fast() -> Self {
        TcpTimeouts {
            connect: Duration::from_millis(250),
            read: Duration::from_millis(1000),
            backoff_floor: Duration::from_millis(20),
            backoff_cap: Duration::from_millis(200),
        }
    }
}

/// Health counters for one peer link, for `dynvote-ctl status`.
#[derive(Clone, Copy, Debug, Default)]
pub struct PeerStats {
    /// Whether the link currently holds an open connection.
    pub connected: bool,
    /// Frames handed to the link for sending.
    pub sends: u64,
    /// Exchanges that failed (connect refused, write/read error,
    /// backoff fast-fail, malformed reply).
    pub failures: u64,
    /// Successful (re)connections.
    pub reconnects: u64,
    /// The backoff window currently in force, zero when healthy.
    pub backoff_ms: u64,
}

/// One request for a peer's I/O thread.
struct PeerJob {
    bytes: Vec<u8>,
    /// `Some` when the caller waits for the single reply frame;
    /// `None` for fire-and-forget frames (release broadcasts).
    reply: Option<mpsc::SyncSender<Option<Frame>>>,
}

struct Peer {
    jobs: mpsc::Sender<PeerJob>,
    stats: Arc<Mutex<PeerStats>>,
}

/// Per-thread connection state machine (see the module docs).
struct PeerLink {
    addr: String,
    timeouts: TcpTimeouts,
    conn: Option<TcpStream>,
    backoff: Duration,
    retry_at: Instant,
    stats: Arc<Mutex<PeerStats>>,
    /// Decorrelates reconnect waves: each wait is drawn from
    /// `[window/2, window]` rather than sitting exactly on the window's
    /// edge, so a fleet of simultaneously-restarted sites does not
    /// retry in lockstep forever.
    jitter: Jitter,
}

impl PeerLink {
    fn stat<F: FnOnce(&mut PeerStats)>(&self, apply: F) {
        apply(&mut self.stats.lock().expect("peer stats poisoned"));
    }

    fn note_failure(&mut self) {
        self.conn = None;
        let wait = self.jitter.equal_jitter(self.backoff);
        self.retry_at = Instant::now() + wait;
        let backoff_ms = wait.as_millis() as u64;
        self.backoff = (self.backoff * 2).min(self.timeouts.backoff_cap);
        self.stat(|s| {
            s.connected = false;
            s.failures += 1;
            s.backoff_ms = backoff_ms;
        });
    }

    fn ensure_connected(&mut self) -> bool {
        if self.conn.is_some() {
            return true;
        }
        if Instant::now() < self.retry_at {
            // Inside the backoff window: fail fast, no socket work.
            self.stat(|s| s.failures += 1);
            return false;
        }
        let addrs: Vec<std::net::SocketAddr> =
            match std::net::ToSocketAddrs::to_socket_addrs(&self.addr.as_str()) {
                Ok(addrs) => addrs.collect(),
                Err(_) => Vec::new(),
            };
        let stream = addrs
            .first()
            .and_then(|addr| TcpStream::connect_timeout(addr, self.timeouts.connect).ok());
        match stream {
            Some(stream) => {
                let _ = stream.set_read_timeout(Some(self.timeouts.read));
                let _ = stream.set_write_timeout(Some(self.timeouts.read));
                let _ = stream.set_nodelay(true);
                self.conn = Some(stream);
                self.backoff = self.timeouts.backoff_floor;
                self.stat(|s| {
                    s.connected = true;
                    s.reconnects += 1;
                    s.backoff_ms = 0;
                });
                true
            }
            None => {
                self.note_failure();
                false
            }
        }
    }

    /// One exchange: write the frame, read the reply (unless
    /// fire-and-forget). `None` is silence — the protocol's lost
    /// message.
    fn exchange(&mut self, job: &PeerJob) -> Option<Frame> {
        self.stat(|s| s.sends += 1);
        if !self.ensure_connected() {
            return None;
        }
        let stream = self.conn.as_mut().expect("just connected");
        if stream
            .write_all(&job.bytes)
            .and_then(|()| stream.flush())
            .is_err()
        {
            self.note_failure();
            return None;
        }
        job.reply.as_ref()?;
        match read_frame(stream) {
            Ok(frame) => Some(frame),
            Err(_) => {
                // Timeout, reset, or garbage: the connection's framing
                // can no longer be trusted — drop it and back off.
                self.note_failure();
                None
            }
        }
    }
}

fn peer_loop(mut link: PeerLink, jobs: mpsc::Receiver<PeerJob>) {
    while let Ok(job) = jobs.recv() {
        let outcome = link.exchange(&job);
        if let Some(reply) = job.reply {
            // The coordinator may have given up waiting; that is fine.
            let _ = reply.send(outcome);
        }
    }
}

/// The socket-backed [`Transport`]: peers are remote daemons, the
/// local participant is served directly by the cluster (never through
/// `carry` — the coordinator reads its own node without a message).
pub struct TcpTransport {
    local: SiteId,
    peers: BTreeMap<SiteId, Peer>,
    links: Arc<LinkRules>,
    /// How long `carry` waits on the I/O thread before declaring the
    /// exchange lost. The thread's socket timeouts bound its work, so
    /// this only needs to cover connect + write + read once.
    reply_wait: Duration,
    /// The operation ledger for answering vote probes — shared with
    /// the daemon's `VOTE-PROBE` handler, written at every commit
    /// point. Durable (replayed across restarts) when the daemon has a
    /// data directory.
    ledger: Arc<Mutex<OpLedger>>,
    /// When set, every outbound peer frame travels inside a
    /// [`Frame::Shard`] envelope naming this shard group, so one
    /// remote listener can demultiplex traffic for the many voting
    /// groups it hosts. Replies come back unwrapped (they are
    /// correlated by connection), so only the outbound side changes.
    shard: Option<u16>,
}

impl TcpTransport {
    /// A transport for `local`, with one I/O thread per remote peer.
    ///
    /// `peers` maps every *other* site to its daemon address (a
    /// `host:port` string); an entry for `local` itself is ignored.
    #[must_use]
    pub fn new(
        local: SiteId,
        peers: &[(SiteId, String)],
        links: Arc<LinkRules>,
        timeouts: TcpTimeouts,
    ) -> Self {
        let mut map = BTreeMap::new();
        for (site, addr) in peers {
            if *site == local {
                continue;
            }
            let stats = Arc::new(Mutex::new(PeerStats::default()));
            let (tx, rx) = mpsc::channel();
            let link = PeerLink {
                addr: addr.clone(),
                timeouts,
                conn: None,
                backoff: timeouts.backoff_floor,
                retry_at: Instant::now(),
                stats: Arc::clone(&stats),
                jitter: Jitter::from_entropy(&(local.index(), site.index(), addr)),
            };
            std::thread::Builder::new()
                .name(format!("dynvote-peer-{}", site.index()))
                .spawn(move || peer_loop(link, rx))
                .expect("spawn peer I/O thread");
            map.insert(*site, Peer { jobs: tx, stats });
        }
        TcpTransport {
            local,
            peers: map,
            links,
            reply_wait: timeouts.connect + timeouts.read + Duration::from_millis(500),
            ledger: Arc::new(Mutex::new(OpLedger::default())),
            shard: None,
        }
    }

    /// Addresses every outbound peer frame to `shard`: the sharded
    /// store gives each voting group its own transport, all wrapped
    /// onto the same per-site listeners.
    #[must_use]
    pub fn with_shard(mut self, shard: u16) -> Self {
        self.shard = Some(shard);
        self
    }

    /// Wraps an outbound frame in this transport's shard envelope,
    /// when it has one.
    fn address(&self, frame: Frame) -> Frame {
        match self.shard {
            Some(shard) => Frame::Shard {
                shard,
                inner: Box::new(frame),
            },
            None => frame,
        }
    }

    /// The operation ledger (shared handle) — the daemon's vote-probe
    /// handler answers from it, and daemons with a data directory
    /// swap in a durable replayed instance at boot.
    #[must_use]
    pub fn ledger(&self) -> Arc<Mutex<OpLedger>> {
        Arc::clone(&self.ledger)
    }

    /// The link rules this transport consults (shared with the daemon).
    #[must_use]
    pub fn links(&self) -> &Arc<LinkRules> {
        &self.links
    }

    /// Health counters per peer, for status reports.
    #[must_use]
    pub fn peer_stats(&self) -> Vec<(SiteId, PeerStats)> {
        self.peers
            .iter()
            .map(|(site, peer)| (*site, *peer.stats.lock().expect("peer stats poisoned")))
            .collect()
    }

    /// Sends a frame and waits (bounded) for the single reply frame.
    fn roundtrip(&self, to: SiteId, frame: &Frame) -> Option<Frame> {
        let peer = self.peers.get(&to)?;
        let (tx, rx) = mpsc::sync_channel(1);
        peer.jobs
            .send(PeerJob {
                bytes: frame.encode(),
                reply: Some(tx),
            })
            .ok()?;
        rx.recv_timeout(self.reply_wait).ok().flatten()
    }

    /// Sends a frame without waiting for any reply.
    fn fire_and_forget(&self, to: SiteId, frame: &Frame) {
        if let Some(peer) = self.peers.get(&to) {
            let _ = peer.jobs.send(PeerJob {
                bytes: frame.encode(),
                reply: None,
            });
        }
    }
}

impl Transport<Vec<u8>> for TcpTransport {
    fn carry(
        &mut self,
        request: WireRequest<'_, Vec<u8>>,
        serve: LocalServe<'_, Vec<u8>>,
    ) -> Carried<Vec<u8>> {
        let message = request.message;
        if message.to == self.local {
            // Defensive: the cluster never routes a coordinator's
            // message to itself through the transport, but if it did,
            // the local handler is the truth.
            return match serve(message, request.payload) {
                Some(body) => local_response(message, body),
                None => Carried::silent(Verdict::Deliver),
            };
        }
        if self.links.is_blocked(message.to) {
            // The partition surface: the frame never leaves this host.
            return Carried::silent(Verdict::Drop);
        }
        let frame = match &message.kind {
            MessageKind::StartRequest => Frame::StartReq {
                ticket: request.ticket,
                from: message.from,
                to: message.to,
                mark_pending: request.mark_pending,
            },
            MessageKind::Commit {
                op,
                version,
                partition,
            } => Frame::Commit {
                ticket: request.ticket,
                from: message.from,
                to: message.to,
                state: ReplicaState {
                    op: *op,
                    version: *version,
                    partition: *partition,
                },
                value: request.payload.cloned(),
            },
            MessageKind::CopyRequest => Frame::CopyReq {
                ticket: request.ticket,
                from: message.from,
                to: message.to,
            },
            // Replies travel as answers on the requester's connection,
            // never as outbound requests.
            MessageKind::StateReply { .. } | MessageKind::CopyReply => {
                return Carried::silent(Verdict::Drop);
            }
        };
        let frame = self.address(frame);
        let Some(reply) = self.roundtrip(message.to, &frame) else {
            return Carried::silent(Verdict::Drop);
        };
        if self.links.is_blocked(message.to) {
            // The link was cut while the exchange was in flight: the
            // reply is discarded at the (new) partition boundary.
            return Carried::silent(Verdict::Drop);
        }
        match reply {
            Frame::Abstain { .. } => Carried {
                request: Verdict::Deliver,
                response: None,
            },
            Frame::StateRep { state, .. } => Carried {
                request: Verdict::Deliver,
                response: Some(Response {
                    wire: Some(Message {
                        from: message.to,
                        to: message.from,
                        kind: MessageKind::StateReply {
                            op: state.op,
                            version: state.version,
                            partition: state.partition,
                        },
                    }),
                    verdict: Verdict::Deliver,
                    body: Reply::State {
                        op: state.op,
                        version: state.version,
                        partition: state.partition,
                    },
                }),
            },
            Frame::CommitAck { .. } => Carried {
                request: Verdict::Deliver,
                response: Some(Response {
                    wire: None,
                    verdict: Verdict::Deliver,
                    body: Reply::Ack,
                }),
            },
            Frame::CopyRep { version, value, .. } => Carried {
                request: Verdict::Deliver,
                response: Some(Response {
                    wire: Some(Message {
                        from: message.to,
                        to: message.from,
                        kind: MessageKind::CopyReply,
                    }),
                    verdict: Verdict::Deliver,
                    body: Reply::Copy { version, value },
                }),
            },
            // A reply that answers no question we asked: protocol
            // confusion, treated as a lost exchange.
            _ => Carried::silent(Verdict::Drop),
        }
    }

    fn commit_point(&mut self, ticket: u64, state: ReplicaState, value: Option<&Vec<u8>>) {
        // The wedge-resolution record, fsync'd before the commit has
        // any effect (see `crate::probe`). A failed append is only
        // unsound if this process also dies and a wedged site probes
        // across the gap; surface it loudly rather than fail the
        // commit.
        if let Err(error) = self
            .ledger
            .lock()
            .expect("op ledger poisoned")
            .note_commit(ticket, state, value)
        {
            eprintln!(
                "S{} commit ledger write failed at ticket {ticket}: {error}",
                self.local.index()
            );
        }
    }

    fn release(&mut self, ticket: u64, keep: SiteSet) {
        // The abort is decided the moment the release broadcast goes
        // out; ledger it even for peers behind a cut link — the probe
        // path is exactly for deliveries that fail here.
        self.ledger
            .lock()
            .expect("op ledger poisoned")
            .note_release(ticket, keep);
        let frame = self.address(Frame::Release {
            ticket,
            from: self.local,
            keep,
        });
        let targets: Vec<SiteId> = self.peers.keys().copied().collect();
        for site in targets {
            if self.links.is_blocked(site) {
                continue;
            }
            self.fire_and_forget(site, &frame);
        }
    }
}

/// Builds the [`Carried`] for a locally-served request (the defensive
/// self-delivery path), mirroring the in-memory transport's wiring.
fn local_response(message: &Message, body: Reply<Vec<u8>>) -> Carried<Vec<u8>> {
    let wire = match &body {
        Reply::State {
            op,
            version,
            partition,
        } => Some(Message {
            from: message.to,
            to: message.from,
            kind: MessageKind::StateReply {
                op: *op,
                version: *version,
                partition: *partition,
            },
        }),
        Reply::Copy { .. } => Some(Message {
            from: message.to,
            to: message.from,
            kind: MessageKind::CopyReply,
        }),
        Reply::Ack => None,
    };
    Carried {
        request: Verdict::Deliver,
        response: Some(Response {
            wire,
            verdict: Verdict::Deliver,
            body,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn start_message(from: usize, to: usize) -> Message {
        Message {
            from: SiteId::new(from),
            to: SiteId::new(to),
            kind: MessageKind::StartRequest,
        }
    }

    fn carry(transport: &mut TcpTransport, message: &Message) -> Carried<Vec<u8>> {
        let mut serve = |_: &Message, _: Option<&Vec<u8>>| -> Option<Reply<Vec<u8>>> { None };
        transport.carry(
            WireRequest {
                message,
                payload: None,
                ticket: 1,
                mark_pending: true,
            },
            &mut serve,
        )
    }

    #[test]
    fn unreachable_peer_is_silence() {
        // Grab a port with no listener behind it.
        let port = {
            let probe = TcpListener::bind("127.0.0.1:0").unwrap();
            probe.local_addr().unwrap().port()
        };
        let mut transport = TcpTransport::new(
            SiteId::new(0),
            &[(SiteId::new(1), format!("127.0.0.1:{port}"))],
            Arc::new(LinkRules::new()),
            TcpTimeouts::fast(),
        );
        let carried = carry(&mut transport, &start_message(0, 1));
        assert_eq!(carried.request, Verdict::Drop);
        assert!(carried.response.is_none());
        let stats = transport.peer_stats();
        assert_eq!(stats.len(), 1);
        assert!(stats[0].1.failures >= 1);
        assert!(!stats[0].1.connected);
    }

    #[test]
    fn blocked_link_drops_without_touching_the_socket() {
        let links = Arc::new(LinkRules::new());
        links.block(SiteId::new(1));
        let mut transport = TcpTransport::new(
            SiteId::new(0),
            &[(SiteId::new(1), "127.0.0.1:1".to_string())],
            Arc::clone(&links),
            TcpTimeouts::fast(),
        );
        let carried = carry(&mut transport, &start_message(0, 1));
        assert_eq!(carried.request, Verdict::Drop);
        assert_eq!(transport.peer_stats()[0].1.sends, 0, "no socket work");
        links.clear();
        assert!(!links.is_blocked(SiteId::new(1)));
    }

    #[test]
    fn reconnect_backoff_is_jittered_within_the_window() {
        // Drive the link state machine directly through consecutive
        // failures: every recorded wait must stay inside the jitter
        // envelope [window/2, window] of the exponential policy, and
        // two links (different seeds) must not draw identical waves.
        let waves: Vec<Vec<u64>> = (0u64..2)
            .map(|seed| {
                let timeouts = TcpTimeouts::fast();
                let mut link = PeerLink {
                    addr: "127.0.0.1:1".to_string(),
                    timeouts,
                    conn: None,
                    backoff: timeouts.backoff_floor,
                    retry_at: Instant::now(),
                    stats: Arc::new(Mutex::new(PeerStats::default())),
                    jitter: Jitter::new(7 + seed),
                };
                let mut window = timeouts.backoff_floor;
                let mut waits = Vec::new();
                for _ in 0..8 {
                    link.note_failure();
                    let wait = link.stats.lock().unwrap().backoff_ms;
                    let lo = (window / 2).as_millis() as u64;
                    let hi = window.as_millis() as u64;
                    assert!(
                        (lo..=hi).contains(&wait),
                        "wait {wait}ms outside [{lo}, {hi}]ms"
                    );
                    waits.push(wait);
                    window = (window * 2).min(timeouts.backoff_cap);
                }
                waits
            })
            .collect();
        assert_ne!(waves[0], waves[1], "two links retry in lockstep");
    }

    #[test]
    fn state_reply_frame_becomes_a_poll_response() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let served = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let frame = read_frame(&mut stream).unwrap();
            let Frame::StartReq {
                ticket, from, to, ..
            } = frame
            else {
                panic!("expected StartReq, got {frame:?}");
            };
            let reply = Frame::StateRep {
                ticket,
                from: to,
                to: from,
                state: ReplicaState {
                    op: 6,
                    version: 5,
                    partition: SiteSet::from_indices([0, 1]),
                },
            };
            stream.write_all(&reply.encode()).unwrap();
        });
        let mut transport = TcpTransport::new(
            SiteId::new(0),
            &[(SiteId::new(1), addr.to_string())],
            Arc::new(LinkRules::new()),
            TcpTimeouts::fast(),
        );
        let carried = carry(&mut transport, &start_message(0, 1));
        served.join().unwrap();
        assert_eq!(carried.request, Verdict::Deliver);
        let response = carried.response.expect("reply arrived");
        assert!(response.arrived());
        assert_eq!(
            response.body,
            Reply::State {
                op: 6,
                version: 5,
                partition: SiteSet::from_indices([0, 1]),
            }
        );
        let wire = response.wire.expect("state replies are wire messages");
        assert!(matches!(wire.kind, MessageKind::StateReply { .. }));
        let stats = transport.peer_stats();
        assert!(stats[0].1.connected);
        assert_eq!(stats[0].1.reconnects, 1);
    }
}
