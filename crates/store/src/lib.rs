#![warn(missing_docs)]

//! A real networked replicated-file service speaking the voting
//! protocols of *"Efficient Dynamic Voting Algorithms"* over TCP.
//!
//! Where `dynvote-replica` runs whole clusters in one process behind
//! the in-memory nemesis bus, this crate deploys the *same* protocol
//! implementation — the identical [`Cluster`](dynvote_replica::Cluster)
//! poll/plan/copy/commit code path, reached through the
//! [`Transport`](dynvote_replica::Transport) seam — across real
//! processes and real sockets:
//!
//! * [`wire`] — the length-prefixed binary frame protocol (total
//!   decoding over untrusted bytes);
//! * [`tcp`] — [`tcp::TcpTransport`]: per-peer I/O threads, capped
//!   exponential reconnect backoff, and the runtime [`tcp::LinkRules`]
//!   that cut *real* partitions into a live cluster;
//! * [`config`] / [`server`] — the `dynvote-stored` daemon: one site
//!   per process, one listener for peer, client, and admin frames;
//! * [`client`] — one-shot framed requests, as `dynvote-ctl` sends;
//! * [`conn`] — the persistent, pipelined library client: one
//!   connection, N outstanding correlation-id-tagged requests;
//! * [`router`] — the shard-map router: cached, epoch-tagged map;
//!   key-to-shard hashing; per-shard coordinator routing with typed
//!   stale-map retry; and the scripted rebalance driver;
//! * [`replay`] — drive a live cluster through minimized model-checker
//!   counterexample traces;
//! * [`campaign`] — the live nemesis: seeded, time-bounded randomized
//!   fault campaigns (SIGKILL/restart, partitions, disk injection,
//!   stalls) against a fleet of real daemons, with a concurrent client
//!   workload and an online invariant monitor (`dynvote-nemesis`).
//!
//! # Quick example (in-process loopback cluster)
//!
//! ```no_run
//! use std::time::Duration;
//! use dynvote_store::config::Config;
//! use dynvote_store::client::request;
//! use dynvote_store::wire::Frame;
//!
//! let args = "--site 0 --policy odv --peers 0=127.0.0.1:7100,1=127.0.0.1:7101,2=127.0.0.1:7102";
//! let config = Config::parse_args(args.split_whitespace().map(str::to_string)).unwrap();
//! let daemon = dynvote_store::server::start(config).unwrap();
//! let outcome = request(
//!     &daemon.addr().to_string(),
//!     &Frame::Put { value: b"hello".to_vec() },
//!     Duration::from_secs(2),
//! ).unwrap();
//! assert!(outcome.granted());
//! ```

pub mod campaign;
pub mod client;
pub mod config;
pub mod conn;
pub mod jitter;
pub mod probe;
pub mod replay;
pub mod router;
pub mod server;
pub mod tcp;
pub mod wire;

pub use client::{
    request, request_deadline, request_retry, ClientError, Deadline, Outcome, RetryPolicy,
};
pub use config::Config;
pub use conn::{ConnOptions, Connection, ConnectionPool};
pub use replay::{run as run_replay, ReplayStep};
pub use router::ShardRouter;
pub use server::{refusal_clause, start, start_on, unavailable_reason, ServiceHandle};
pub use tcp::{LinkRules, PeerStats, TcpTimeouts, TcpTransport};
pub use wire::{read_frame, write_frame, Frame, FrameError, UnavailableReason, MAX_FRAME};
