//! The store's framed wire protocol.
//!
//! Every unit on a connection is one *frame*: a 4-byte big-endian body
//! length, then the body — one type byte followed by that frame's
//! fields, encoded with the [`dynvote_core::wire`] primitives. Three
//! frame families share the format (and the listener):
//!
//! * **peer frames** (`0x01..=0x08`) — the protocol exchanges of
//!   Figures 1–3/5–7: `START` → state reply or abstention, `COMMIT` →
//!   acknowledgement, copy request → copy reply, plus the abort
//!   oracle's release broadcast;
//! * **client requests** (`0x10..=0x16`) — `dynvote-ctl` commands:
//!   the data operations and the link-rule administration used to cut
//!   real partitions into a live cluster;
//! * **client responses** (`0x20..=0x24`) — outcome, value, refusal,
//!   unavailability, or a status report.
//!
//! A fourth kind wraps the other three: a [`Frame::Tagged`] envelope
//! (`0x30`) prefixes any frame with a 64-bit correlation id. Pipelined
//! sessions send many tagged requests down one connection without
//! waiting; the daemon answers each with a tagged response carrying the
//! *same* id, possibly out of order, and the client matches replies to
//! callers by id.
//!
//! The sharded store adds a second envelope and a handful of plain
//! frames. [`Frame::Shard`] (`0x31`) prefixes a frame with the shard
//! group it addresses, so one listener can host many independent
//! voting groups: peer traffic and admin commands for shard `k` arrive
//! as `Shard{k, …}`. Keyed client operations ([`Frame::PutKey`],
//! [`Frame::GetKey`]) instead carry their shard *and* the client's map
//! epoch inline — the daemon answers a wrong epoch with the typed
//! [`Frame::StaleShardMap`] so the client can refetch and retry
//! instead of writing through a stale route. The map itself travels as
//! opaque checksummed bytes ([`Frame::GetShardMap`] /
//! [`Frame::ShardMapRep`] / [`Frame::InstallShardMap`]) whose format
//! belongs to `dynvote-control`.
//!
//! Envelope nesting is canonical and bounded: a `Tagged` may wrap a
//! `Shard`, a `Shard` wraps only plain frames, and any other nesting
//! is a decode error — decoding never recurses more than two levels.
//!
//! Decoding is *total* over untrusted bytes: every malformed input
//! returns a [`FrameError`] — never a panic — and no allocation is
//! sized from a length field before [`MAX_FRAME`] bounds it and the
//! bytes are actually present in the body.

use std::io::{self, Read, Write};

use dynvote_core::state::ReplicaState;
use dynvote_core::wire::{put_state, put_u16, put_u32, put_u64, put_u8, Reader};
use dynvote_types::{SiteId, SiteSet};

/// Hard ceiling on a frame body, enforced *before* the body is read:
/// a hostile length prefix can never make the decoder allocate more.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Why a frame body failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The body ended before a field did.
    Truncated,
    /// The body continued past the last field of its frame type.
    TrailingBytes {
        /// How many bytes were left over.
        extra: usize,
    },
    /// The type byte names no known frame.
    UnknownType(u8),
    /// The length prefix exceeds [`MAX_FRAME`].
    Oversized {
        /// The claimed body length.
        len: u32,
    },
    /// A site index outside `0..64` (the [`SiteSet`] word).
    BadSite(u16),
    /// A boolean field held a byte other than 0 or 1.
    BadBool(u8),
    /// An unavailability-reason field held an unknown code.
    BadReason(u8),
    /// A text field was not valid UTF-8.
    BadUtf8,
    /// A correlation-id envelope wrapped another correlation-id
    /// envelope.
    NestedTag,
    /// A shard envelope appeared somewhere it may not: inside another
    /// shard envelope, or wrapping a non-plain frame.
    NestedShard,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "truncated frame body"),
            FrameError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing byte(s) after the last field")
            }
            FrameError::UnknownType(t) => write!(f, "unknown frame type 0x{t:02x}"),
            FrameError::Oversized { len } => {
                write!(f, "frame length {len} exceeds the {MAX_FRAME}-byte cap")
            }
            FrameError::BadSite(index) => write!(f, "site index {index} out of range"),
            FrameError::BadBool(b) => write!(f, "boolean field holds 0x{b:02x}"),
            FrameError::BadReason(b) => write!(f, "unknown unavailability reason 0x{b:02x}"),
            FrameError::BadUtf8 => write!(f, "text field is not valid UTF-8"),
            FrameError::NestedTag => write!(f, "correlation-id envelopes do not nest"),
            FrameError::NestedShard => write!(f, "shard envelopes wrap only plain frames"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Why a data operation could not be served right now — the typed,
/// machine-readable core of a [`Frame::Unavailable`] response. Clients
/// (and the fault-campaign workload) branch on this without parsing
/// refusal prose; the codes mirror [`dynvote_types::AccessError`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnavailableReason {
    /// The reachable sites do not form a majority of the current
    /// partition set (the paper's quorum condition failed).
    NoQuorum,
    /// Exactly half the votes were assembled and the tie-breaker was
    /// on the other side.
    TieLost,
    /// A quorum of control state answered, but no reachable site holds
    /// a current copy of the data.
    NoCurrentCopy,
    /// The serving site itself is down or still recovering.
    OriginDown,
    /// Peers went silent mid-operation (crash or partition during the
    /// exchange); the operation aborted rather than hang.
    PeerSilence,
    /// The operation aborted at an indeterminate point — some
    /// participants may have committed; retry after RECOVER.
    Indeterminate,
}

impl UnavailableReason {
    const ALL: [UnavailableReason; 6] = [
        UnavailableReason::NoQuorum,
        UnavailableReason::TieLost,
        UnavailableReason::NoCurrentCopy,
        UnavailableReason::OriginDown,
        UnavailableReason::PeerSilence,
        UnavailableReason::Indeterminate,
    ];

    fn code(self) -> u8 {
        match self {
            UnavailableReason::NoQuorum => 1,
            UnavailableReason::TieLost => 2,
            UnavailableReason::NoCurrentCopy => 3,
            UnavailableReason::OriginDown => 4,
            UnavailableReason::PeerSilence => 5,
            UnavailableReason::Indeterminate => 6,
        }
    }

    fn from_code(code: u8) -> Option<Self> {
        Self::ALL.into_iter().find(|reason| reason.code() == code)
    }

    /// The stable lower-case token used in status output and reports.
    #[must_use]
    pub fn token(self) -> &'static str {
        match self {
            UnavailableReason::NoQuorum => "no-quorum",
            UnavailableReason::TieLost => "tie-lost",
            UnavailableReason::NoCurrentCopy => "no-current-copy",
            UnavailableReason::OriginDown => "origin-down",
            UnavailableReason::PeerSilence => "peer-silence",
            UnavailableReason::Indeterminate => "indeterminate",
        }
    }
}

impl std::fmt::Display for UnavailableReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.token())
    }
}

/// One wire frame — see the module docs for the three families.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// `START` (Figures 1–3/5–7): poll the recipient's state.
    StartReq {
        /// The coordinator's operation ticket.
        ticket: u64,
        /// The coordinating site.
        from: SiteId,
        /// The polled site.
        to: SiteId,
        /// Whether answering records an outstanding vote.
        mark_pending: bool,
    },
    /// The state reply: the recipient's `⟨o_i, v_i, P_i⟩`.
    StateRep {
        /// The ticket of the `START` being answered.
        ticket: u64,
        /// The replying site.
        from: SiteId,
        /// The coordinating site.
        to: SiteId,
        /// The replier's consistency-control state.
        state: ReplicaState,
    },
    /// `COMMIT`: install the new state (and value, on a write).
    Commit {
        /// The coordinator's operation ticket.
        ticket: u64,
        /// The coordinating site.
        from: SiteId,
        /// The participant being committed.
        to: SiteId,
        /// The new `⟨o, v, P⟩` to install.
        state: ReplicaState,
        /// The write value riding the commit, when there is one.
        value: Option<Vec<u8>>,
    },
    /// The commit acknowledgement.
    CommitAck {
        /// The ticket of the `COMMIT` being acknowledged.
        ticket: u64,
        /// The acknowledging site.
        from: SiteId,
        /// The coordinating site.
        to: SiteId,
    },
    /// Ask the recipient for its full copy of the file.
    CopyReq {
        /// The coordinator's operation ticket.
        ticket: u64,
        /// The requesting site.
        from: SiteId,
        /// The site holding the wanted copy.
        to: SiteId,
    },
    /// The copy reply: the file, with the version it carries.
    CopyRep {
        /// The ticket of the request being answered.
        ticket: u64,
        /// The serving site.
        from: SiteId,
        /// The requesting site.
        to: SiteId,
        /// The version number of the served copy.
        version: u64,
        /// The file contents.
        value: Vec<u8>,
    },
    /// The abort oracle: outstanding votes for `ticket` may be
    /// released, except at the sites in `keep`.
    Release {
        /// The aborted (or resolved) operation's ticket.
        ticket: u64,
        /// The coordinating site broadcasting the release.
        from: SiteId,
        /// Sites whose `COMMIT` may still be outstanding — they stay
        /// wedged.
        keep: SiteSet,
    },
    /// A wedged participant asking the coordinator that issued
    /// `ticket` what became of it — the pull path that complements the
    /// best-effort `COMMIT`/`RELEASE` push. Answered with the
    /// [`Frame::Release`] or [`Frame::Commit`] the prober lost, or a
    /// [`Frame::Abstain`] when the coordinator cannot soundly say.
    VoteProbe {
        /// The outstanding vote's ticket.
        ticket: u64,
        /// The wedged (probing) site.
        from: SiteId,
        /// The coordinator the ticket names.
        to: SiteId,
    },
    /// Explicit abstention: the recipient processed the `START` but is
    /// wedged on an outstanding vote for another operation.
    Abstain {
        /// The ticket of the `START` being declined.
        ticket: u64,
        /// The abstaining site.
        from: SiteId,
        /// The coordinating site.
        to: SiteId,
    },

    /// Client: WRITE this value at the daemon's site.
    Put {
        /// The new file contents.
        value: Vec<u8>,
    },
    /// Client: READ the file at the daemon's site.
    Get,
    /// Client: run RECOVER (Figure 3/7) at the daemon's site.
    Recover,
    /// Client: report the daemon's policy state and transport health.
    Status,
    /// Admin: stop exchanging traffic with `site` (cut the link).
    Deny {
        /// The peer to partition away.
        site: SiteId,
    },
    /// Admin: resume exchanging traffic with `site`.
    Allow {
        /// The peer to reconnect.
        site: SiteId,
    },
    /// Admin: drop every link rule (heal all partitions).
    HealLinks,

    /// Client: WRITE one key of a shard's replicated KV map. Carries
    /// the client's map epoch so a stale route is refused typed
    /// ([`Frame::StaleShardMap`]) instead of landing on the wrong
    /// shard group.
    PutKey {
        /// The map epoch the client routed by.
        epoch: u64,
        /// The shard the key hashed to under that epoch's map.
        shard: u16,
        /// The key.
        key: String,
        /// The new value for the key.
        value: Vec<u8>,
    },
    /// Client: READ one key of a shard's replicated KV map.
    GetKey {
        /// The map epoch the client routed by.
        epoch: u64,
        /// The shard the key hashed to under that epoch's map.
        shard: u16,
        /// The key.
        key: String,
    },
    /// Client: fetch the daemon's current shard map.
    GetShardMap,
    /// Admin: install a new shard map (an epoch bump). The bytes are
    /// a `dynvote-control` encoded map — checksummed, so the daemon
    /// validates before adopting.
    InstallShardMap {
        /// The encoded [`dynvote_control::ShardMap`].
        map: Vec<u8>,
    },

    /// Response: the command succeeded.
    Done {
        /// Human-readable outcome detail.
        detail: String,
    },
    /// Response: the read value.
    Value {
        /// The version number the serving site holds.
        version: u64,
        /// The file contents.
        value: Vec<u8>,
    },
    /// Response: the access was refused (the paper's ABORT).
    Refused {
        /// The refusal, with the clause that fired.
        message: String,
    },
    /// Response: a status report (key=value lines).
    Report {
        /// The report text.
        text: String,
    },
    /// Response: the site cannot serve this data operation *right now*
    /// — graceful degradation with a typed cause, answered promptly
    /// instead of stalling. Carries the same human-readable clause a
    /// [`Frame::Refused`] would, plus the machine-readable reason.
    Unavailable {
        /// Why the operation cannot be served.
        reason: UnavailableReason,
        /// The refusal prose, with the clause that fired.
        message: String,
    },

    /// Response: the daemon's current shard map, as checksummed
    /// `dynvote-control` bytes.
    ShardMapRep {
        /// The encoded [`dynvote_control::ShardMap`].
        map: Vec<u8>,
    },
    /// Response: the keyed operation carried a map epoch other than
    /// the daemon's current one. The client refetches the map and
    /// retries — a typed, retryable condition, not a failure.
    StaleShardMap {
        /// The daemon's current map epoch.
        epoch: u64,
    },

    /// A correlation-id envelope around any other frame. A pipelined
    /// session tags each request with a caller-chosen id; the daemon
    /// echoes the id on the matching response, so many requests can be
    /// in flight on one connection and answered out of order.
    Tagged {
        /// The correlation id, echoed verbatim on the response.
        id: u64,
        /// The wrapped frame (never itself a `Tagged`; may be a
        /// [`Frame::Shard`]).
        inner: Box<Frame>,
    },
    /// A shard-address envelope: the wrapped frame is for shard
    /// group `shard` at the receiving site. Peer protocol traffic and
    /// per-shard admin commands travel wrapped; the daemon replies
    /// unwrapped, because replies are correlated by connection (peer
    /// exchanges) or by tag (pipelined clients), not by shard.
    Shard {
        /// The shard group the inner frame addresses.
        shard: u16,
        /// The wrapped frame (always plain: never a `Tagged` or
        /// another `Shard`).
        inner: Box<Frame>,
    },
}

const T_START_REQ: u8 = 0x01;
const T_STATE_REP: u8 = 0x02;
const T_COMMIT: u8 = 0x03;
const T_COMMIT_ACK: u8 = 0x04;
const T_COPY_REQ: u8 = 0x05;
const T_COPY_REP: u8 = 0x06;
const T_RELEASE: u8 = 0x07;
const T_ABSTAIN: u8 = 0x08;
const T_VOTE_PROBE: u8 = 0x09;
const T_PUT: u8 = 0x10;
const T_GET: u8 = 0x11;
const T_RECOVER: u8 = 0x12;
const T_STATUS: u8 = 0x13;
const T_DENY: u8 = 0x14;
const T_ALLOW: u8 = 0x15;
const T_HEAL_LINKS: u8 = 0x16;
const T_PUT_KEY: u8 = 0x17;
const T_GET_KEY: u8 = 0x18;
const T_GET_SHARD_MAP: u8 = 0x19;
const T_INSTALL_SHARD_MAP: u8 = 0x1A;
const T_DONE: u8 = 0x20;
const T_VALUE: u8 = 0x21;
const T_REFUSED: u8 = 0x22;
const T_REPORT: u8 = 0x23;
const T_UNAVAILABLE: u8 = 0x24;
const T_SHARD_MAP_REP: u8 = 0x25;
const T_STALE_SHARD_MAP: u8 = 0x26;
const T_TAGGED: u8 = 0x30;
const T_SHARD: u8 = 0x31;

fn put_site(out: &mut Vec<u8>, site: SiteId) {
    // SiteId indices are bounded by MAX_SITES (64), far under u16.
    put_u16(out, site.index() as u16);
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u32(out, bytes.len() as u32);
    out.extend_from_slice(bytes);
}

fn put_text(out: &mut Vec<u8>, text: &str) {
    put_bytes(out, text.as_bytes());
}

fn put_bool(out: &mut Vec<u8>, flag: bool) {
    put_u8(out, u8::from(flag));
}

fn read_site(r: &mut Reader<'_>) -> Result<SiteId, FrameError> {
    let raw = r.u16()?;
    SiteId::try_new(raw as usize).ok_or(FrameError::BadSite(raw))
}

fn read_bool(r: &mut Reader<'_>) -> Result<bool, FrameError> {
    match r.u8()? {
        0 => Ok(false),
        1 => Ok(true),
        other => Err(FrameError::BadBool(other)),
    }
}

/// Reads a length-prefixed byte field. [`Reader::bytes`] verifies the
/// claimed length against what the body actually holds *before* any
/// copy, so a hostile inner length cannot trigger an allocation.
fn read_blob(r: &mut Reader<'_>) -> Result<Vec<u8>, FrameError> {
    let len = r.u32()? as usize;
    Ok(r.bytes(len)?.to_vec())
}

fn read_text(r: &mut Reader<'_>) -> Result<String, FrameError> {
    String::from_utf8(read_blob(r)?).map_err(|_| FrameError::BadUtf8)
}

impl From<dynvote_core::wire::WireError> for FrameError {
    fn from(_: dynvote_core::wire::WireError) -> Self {
        FrameError::Truncated
    }
}

impl Frame {
    /// Encodes the frame, length prefix included.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        self.encode_body(&mut body);
        debug_assert!(body.len() <= MAX_FRAME as usize);
        let mut out = Vec::with_capacity(4 + body.len());
        put_u32(&mut out, body.len() as u32);
        out.extend_from_slice(&body);
        out
    }

    /// Encodes the frame wrapped in a correlation-id envelope, length
    /// prefix included — the hot-path encoder pipelined clients use,
    /// sparing them a clone of the inner frame into [`Frame::Tagged`].
    #[must_use]
    pub fn encode_tagged(&self, id: u64) -> Vec<u8> {
        debug_assert!(
            !matches!(self, Frame::Tagged { .. }),
            "correlation-id envelopes do not nest"
        );
        let mut body = Vec::new();
        put_u8(&mut body, T_TAGGED);
        put_u64(&mut body, id);
        self.encode_body(&mut body);
        debug_assert!(body.len() <= MAX_FRAME as usize);
        let mut out = Vec::with_capacity(4 + body.len());
        put_u32(&mut out, body.len() as u32);
        out.extend_from_slice(&body);
        out
    }

    fn encode_body(&self, out: &mut Vec<u8>) {
        match self {
            Frame::StartReq {
                ticket,
                from,
                to,
                mark_pending,
            } => {
                put_u8(out, T_START_REQ);
                put_u64(out, *ticket);
                put_site(out, *from);
                put_site(out, *to);
                put_bool(out, *mark_pending);
            }
            Frame::StateRep {
                ticket,
                from,
                to,
                state,
            } => {
                put_u8(out, T_STATE_REP);
                put_u64(out, *ticket);
                put_site(out, *from);
                put_site(out, *to);
                put_state(out, state);
            }
            Frame::Commit {
                ticket,
                from,
                to,
                state,
                value,
            } => {
                put_u8(out, T_COMMIT);
                put_u64(out, *ticket);
                put_site(out, *from);
                put_site(out, *to);
                put_state(out, state);
                put_bool(out, value.is_some());
                if let Some(value) = value {
                    put_bytes(out, value);
                }
            }
            Frame::CommitAck { ticket, from, to } => {
                put_u8(out, T_COMMIT_ACK);
                put_u64(out, *ticket);
                put_site(out, *from);
                put_site(out, *to);
            }
            Frame::CopyReq { ticket, from, to } => {
                put_u8(out, T_COPY_REQ);
                put_u64(out, *ticket);
                put_site(out, *from);
                put_site(out, *to);
            }
            Frame::CopyRep {
                ticket,
                from,
                to,
                version,
                value,
            } => {
                put_u8(out, T_COPY_REP);
                put_u64(out, *ticket);
                put_site(out, *from);
                put_site(out, *to);
                put_u64(out, *version);
                put_bytes(out, value);
            }
            Frame::Release { ticket, from, keep } => {
                put_u8(out, T_RELEASE);
                put_u64(out, *ticket);
                put_site(out, *from);
                put_u64(out, keep.bits());
            }
            Frame::Abstain { ticket, from, to } => {
                put_u8(out, T_ABSTAIN);
                put_u64(out, *ticket);
                put_site(out, *from);
                put_site(out, *to);
            }
            Frame::VoteProbe { ticket, from, to } => {
                put_u8(out, T_VOTE_PROBE);
                put_u64(out, *ticket);
                put_site(out, *from);
                put_site(out, *to);
            }
            Frame::Put { value } => {
                put_u8(out, T_PUT);
                put_bytes(out, value);
            }
            Frame::Get => put_u8(out, T_GET),
            Frame::Recover => put_u8(out, T_RECOVER),
            Frame::Status => put_u8(out, T_STATUS),
            Frame::Deny { site } => {
                put_u8(out, T_DENY);
                put_site(out, *site);
            }
            Frame::Allow { site } => {
                put_u8(out, T_ALLOW);
                put_site(out, *site);
            }
            Frame::HealLinks => put_u8(out, T_HEAL_LINKS),
            Frame::PutKey {
                epoch,
                shard,
                key,
                value,
            } => {
                put_u8(out, T_PUT_KEY);
                put_u64(out, *epoch);
                put_u16(out, *shard);
                put_text(out, key);
                put_bytes(out, value);
            }
            Frame::GetKey { epoch, shard, key } => {
                put_u8(out, T_GET_KEY);
                put_u64(out, *epoch);
                put_u16(out, *shard);
                put_text(out, key);
            }
            Frame::GetShardMap => put_u8(out, T_GET_SHARD_MAP),
            Frame::InstallShardMap { map } => {
                put_u8(out, T_INSTALL_SHARD_MAP);
                put_bytes(out, map);
            }
            Frame::ShardMapRep { map } => {
                put_u8(out, T_SHARD_MAP_REP);
                put_bytes(out, map);
            }
            Frame::StaleShardMap { epoch } => {
                put_u8(out, T_STALE_SHARD_MAP);
                put_u64(out, *epoch);
            }
            Frame::Done { detail } => {
                put_u8(out, T_DONE);
                put_text(out, detail);
            }
            Frame::Value { version, value } => {
                put_u8(out, T_VALUE);
                put_u64(out, *version);
                put_bytes(out, value);
            }
            Frame::Refused { message } => {
                put_u8(out, T_REFUSED);
                put_text(out, message);
            }
            Frame::Report { text } => {
                put_u8(out, T_REPORT);
                put_text(out, text);
            }
            Frame::Unavailable { reason, message } => {
                put_u8(out, T_UNAVAILABLE);
                put_u8(out, reason.code());
                put_text(out, message);
            }
            Frame::Tagged { id, inner } => {
                put_u8(out, T_TAGGED);
                put_u64(out, *id);
                inner.encode_body(out);
            }
            Frame::Shard { shard, inner } => {
                debug_assert!(
                    !matches!(**inner, Frame::Tagged { .. } | Frame::Shard { .. }),
                    "shard envelopes wrap only plain frames"
                );
                put_u8(out, T_SHARD);
                put_u16(out, *shard);
                inner.encode_body(out);
            }
        }
    }

    /// Decodes one frame body (the bytes after the length prefix).
    ///
    /// # Errors
    ///
    /// [`FrameError`] on any malformed input; never panics.
    pub fn decode(body: &[u8]) -> Result<Frame, FrameError> {
        let mut r = Reader::new(body);
        let frame = Frame::decode_one(&mut r, true, true)?;
        if !r.is_exhausted() {
            return Err(FrameError::TrailingBytes {
                extra: r.remaining(),
            });
        }
        Ok(frame)
    }

    /// Decodes one frame from the reader. The flags enforce canonical
    /// envelope nesting: `allow_tag` is true only at the top level and
    /// `allow_shard` is true at the top level and directly under a
    /// `Tagged`, so `Tagged{Shard{plain}}` is the deepest legal shape
    /// and the decoder never recurses more than two levels.
    fn decode_one(
        r: &mut Reader<'_>,
        allow_tag: bool,
        allow_shard: bool,
    ) -> Result<Frame, FrameError> {
        let frame = match r.u8()? {
            T_START_REQ => Frame::StartReq {
                ticket: r.u64()?,
                from: read_site(r)?,
                to: read_site(r)?,
                mark_pending: read_bool(r)?,
            },
            T_STATE_REP => Frame::StateRep {
                ticket: r.u64()?,
                from: read_site(r)?,
                to: read_site(r)?,
                state: r.state()?,
            },
            T_COMMIT => {
                let ticket = r.u64()?;
                let from = read_site(r)?;
                let to = read_site(r)?;
                let state = r.state()?;
                let value = if read_bool(r)? {
                    Some(read_blob(r)?)
                } else {
                    None
                };
                Frame::Commit {
                    ticket,
                    from,
                    to,
                    state,
                    value,
                }
            }
            T_COMMIT_ACK => Frame::CommitAck {
                ticket: r.u64()?,
                from: read_site(r)?,
                to: read_site(r)?,
            },
            T_COPY_REQ => Frame::CopyReq {
                ticket: r.u64()?,
                from: read_site(r)?,
                to: read_site(r)?,
            },
            T_COPY_REP => Frame::CopyRep {
                ticket: r.u64()?,
                from: read_site(r)?,
                to: read_site(r)?,
                version: r.u64()?,
                value: read_blob(r)?,
            },
            T_RELEASE => Frame::Release {
                ticket: r.u64()?,
                from: read_site(r)?,
                keep: SiteSet::from_bits(r.u64()?),
            },
            T_ABSTAIN => Frame::Abstain {
                ticket: r.u64()?,
                from: read_site(r)?,
                to: read_site(r)?,
            },
            T_VOTE_PROBE => Frame::VoteProbe {
                ticket: r.u64()?,
                from: read_site(r)?,
                to: read_site(r)?,
            },
            T_PUT => Frame::Put {
                value: read_blob(r)?,
            },
            T_GET => Frame::Get,
            T_RECOVER => Frame::Recover,
            T_STATUS => Frame::Status,
            T_DENY => Frame::Deny {
                site: read_site(r)?,
            },
            T_ALLOW => Frame::Allow {
                site: read_site(r)?,
            },
            T_HEAL_LINKS => Frame::HealLinks,
            T_PUT_KEY => Frame::PutKey {
                epoch: r.u64()?,
                shard: r.u16()?,
                key: read_text(r)?,
                value: read_blob(r)?,
            },
            T_GET_KEY => Frame::GetKey {
                epoch: r.u64()?,
                shard: r.u16()?,
                key: read_text(r)?,
            },
            T_GET_SHARD_MAP => Frame::GetShardMap,
            T_INSTALL_SHARD_MAP => Frame::InstallShardMap { map: read_blob(r)? },
            T_SHARD_MAP_REP => Frame::ShardMapRep { map: read_blob(r)? },
            T_STALE_SHARD_MAP => Frame::StaleShardMap { epoch: r.u64()? },
            T_DONE => Frame::Done {
                detail: read_text(r)?,
            },
            T_VALUE => Frame::Value {
                version: r.u64()?,
                value: read_blob(r)?,
            },
            T_REFUSED => Frame::Refused {
                message: read_text(r)?,
            },
            T_REPORT => Frame::Report {
                text: read_text(r)?,
            },
            T_UNAVAILABLE => {
                let code = r.u8()?;
                let reason =
                    UnavailableReason::from_code(code).ok_or(FrameError::BadReason(code))?;
                Frame::Unavailable {
                    reason,
                    message: read_text(r)?,
                }
            }
            T_TAGGED => {
                if !allow_tag {
                    return Err(FrameError::NestedTag);
                }
                Frame::Tagged {
                    id: r.u64()?,
                    inner: Box::new(Frame::decode_one(r, false, true)?),
                }
            }
            T_SHARD => {
                if !allow_shard {
                    return Err(FrameError::NestedShard);
                }
                Frame::Shard {
                    shard: r.u16()?,
                    inner: Box::new(Frame::decode_one(r, false, false)?),
                }
            }
            other => return Err(FrameError::UnknownType(other)),
        };
        Ok(frame)
    }
}

fn invalid_data(err: FrameError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, err)
}

/// Reads one frame off a stream: length prefix, cap check, body,
/// decode. A length over [`MAX_FRAME`] fails *before* any body
/// allocation.
///
/// # Errors
///
/// I/O errors pass through (`UnexpectedEof` marks a clean close at a
/// frame boundary as well as a mid-frame truncation); malformed frames
/// surface as [`io::ErrorKind::InvalidData`] wrapping the
/// [`FrameError`].
pub fn read_frame<R: Read>(reader: &mut R) -> io::Result<Frame> {
    let mut prefix = [0u8; 4];
    reader.read_exact(&mut prefix)?;
    let len = u32::from_be_bytes(prefix);
    if len > MAX_FRAME {
        return Err(invalid_data(FrameError::Oversized { len }));
    }
    let mut body = vec![0u8; len as usize];
    reader.read_exact(&mut body)?;
    Frame::decode(&body).map_err(invalid_data)
}

/// Writes one frame (length prefix included) and flushes.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_frame<W: Write>(writer: &mut W, frame: &Frame) -> io::Result<()> {
    writer.write_all(&frame.encode())?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> ReplicaState {
        ReplicaState {
            op: 9,
            version: 4,
            partition: SiteSet::from_indices([0, 1, 5]),
        }
    }

    #[test]
    fn peer_frames_round_trip() {
        let frames = [
            Frame::StartReq {
                ticket: 77,
                from: SiteId::new(0),
                to: SiteId::new(3),
                mark_pending: true,
            },
            Frame::StateRep {
                ticket: 77,
                from: SiteId::new(3),
                to: SiteId::new(0),
                state: state(),
            },
            Frame::Commit {
                ticket: 77,
                from: SiteId::new(0),
                to: SiteId::new(3),
                state: state(),
                value: Some(b"payload".to_vec()),
            },
            Frame::Commit {
                ticket: 77,
                from: SiteId::new(0),
                to: SiteId::new(3),
                state: state(),
                value: None,
            },
            Frame::Release {
                ticket: 77,
                from: SiteId::new(0),
                keep: SiteSet::from_indices([2]),
            },
            Frame::Abstain {
                ticket: 77,
                from: SiteId::new(3),
                to: SiteId::new(0),
            },
            Frame::VoteProbe {
                ticket: (2 << 48) | 91,
                from: SiteId::new(1),
                to: SiteId::new(2),
            },
        ];
        for frame in frames {
            let bytes = frame.encode();
            let mut cursor = &bytes[..];
            assert_eq!(read_frame(&mut cursor).unwrap(), frame);
            assert!(cursor.is_empty());
        }
    }

    #[test]
    fn unavailable_round_trips_every_reason() {
        for reason in UnavailableReason::ALL {
            let frame = Frame::Unavailable {
                reason,
                message: format!("cannot serve: {reason}"),
            };
            let bytes = frame.encode();
            let mut cursor = &bytes[..];
            assert_eq!(read_frame(&mut cursor).unwrap(), frame);
        }
        // An unknown reason code is a decode error, not a panic or a
        // silent default.
        let mut body = Vec::new();
        put_u8(&mut body, T_UNAVAILABLE);
        put_u8(&mut body, 0xEE);
        put_u32(&mut body, 0);
        assert_eq!(Frame::decode(&body), Err(FrameError::BadReason(0xEE)));
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut bytes = Vec::new();
        put_u32(&mut bytes, MAX_FRAME + 1);
        let err = read_frame(&mut &bytes[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn inner_length_cannot_exceed_the_body() {
        // A Put whose inner blob claims 4 GiB inside a 5-byte body.
        let mut body = Vec::new();
        put_u8(&mut body, T_PUT);
        put_u32(&mut body, u32::MAX);
        assert_eq!(Frame::decode(&body), Err(FrameError::Truncated));
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut body = Vec::new();
        put_u8(&mut body, T_GET);
        put_u8(&mut body, 0xFF);
        assert_eq!(
            Frame::decode(&body),
            Err(FrameError::TrailingBytes { extra: 1 })
        );
    }

    #[test]
    fn shard_frames_round_trip() {
        let frames = [
            Frame::PutKey {
                epoch: 3,
                shard: 7,
                key: "user:42".to_string(),
                value: b"payload".to_vec(),
            },
            Frame::GetKey {
                epoch: 3,
                shard: 0,
                key: String::new(),
            },
            Frame::GetShardMap,
            Frame::InstallShardMap { map: vec![1, 2, 3] },
            Frame::ShardMapRep { map: Vec::new() },
            Frame::StaleShardMap { epoch: 9 },
            Frame::Shard {
                shard: 2,
                inner: Box::new(Frame::Recover),
            },
            Frame::Shard {
                shard: 2,
                inner: Box::new(Frame::StartReq {
                    ticket: 77,
                    from: SiteId::new(0),
                    to: SiteId::new(3),
                    mark_pending: true,
                }),
            },
            Frame::Tagged {
                id: 5,
                inner: Box::new(Frame::Shard {
                    shard: 1,
                    inner: Box::new(Frame::Status),
                }),
            },
        ];
        for frame in frames {
            let bytes = frame.encode();
            let mut cursor = &bytes[..];
            assert_eq!(read_frame(&mut cursor).unwrap(), frame);
            assert!(cursor.is_empty());
        }
    }

    #[test]
    fn envelope_nesting_is_canonical() {
        // Shard{Shard{...}} is a decode error.
        let mut body = Vec::new();
        put_u8(&mut body, T_SHARD);
        put_u16(&mut body, 0);
        put_u8(&mut body, T_SHARD);
        put_u16(&mut body, 1);
        put_u8(&mut body, T_GET);
        assert_eq!(Frame::decode(&body), Err(FrameError::NestedShard));

        // Shard{Tagged{...}} is a decode error: the tag goes outside.
        let mut body = Vec::new();
        put_u8(&mut body, T_SHARD);
        put_u16(&mut body, 0);
        put_u8(&mut body, T_TAGGED);
        put_u64(&mut body, 1);
        put_u8(&mut body, T_GET);
        assert_eq!(Frame::decode(&body), Err(FrameError::NestedTag));

        // Tagged{Tagged{...}} stays an error.
        let mut body = Vec::new();
        put_u8(&mut body, T_TAGGED);
        put_u64(&mut body, 1);
        put_u8(&mut body, T_TAGGED);
        put_u64(&mut body, 2);
        put_u8(&mut body, T_GET);
        assert_eq!(Frame::decode(&body), Err(FrameError::NestedTag));
    }

    #[test]
    fn bad_site_and_bool_are_rejected() {
        let mut body = Vec::new();
        put_u8(&mut body, T_DENY);
        put_u16(&mut body, 64);
        assert_eq!(Frame::decode(&body), Err(FrameError::BadSite(64)));

        let mut body = Vec::new();
        put_u8(&mut body, T_START_REQ);
        put_u64(&mut body, 1);
        put_u16(&mut body, 0);
        put_u16(&mut body, 1);
        put_u8(&mut body, 2);
        assert_eq!(Frame::decode(&body), Err(FrameError::BadBool(2)));
    }
}
