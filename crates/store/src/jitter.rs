//! A tiny deterministic PRNG for backoff jitter.
//!
//! Retry loops that back off in lockstep re-collide forever: every
//! client (or every restarted peer writer) sleeps the same window and
//! hammers the same instant again. The fix is jitter — each sleeper
//! draws its wait from a window instead of hitting its edge. This
//! module supplies the draw without pulling in a randomness dependency:
//! a SplitMix64 stream, seeded per call site, good enough to decorrelate
//! sleepers and cheap enough to sit inside a reconnect loop.

use std::hash::{Hash, Hasher};
use std::time::Duration;

/// A SplitMix64 jitter stream.
#[derive(Clone, Debug)]
pub struct Jitter {
    state: u64,
}

impl Jitter {
    /// A stream seeded directly.
    #[must_use]
    pub fn new(seed: u64) -> Jitter {
        Jitter { state: seed }
    }

    /// A stream seeded from anything hashable plus wall-clock entropy —
    /// two processes restarted at (almost) the same instant, or two
    /// links to different peers, still draw different sequences.
    #[must_use]
    pub fn from_entropy(salt: &impl Hash) -> Jitter {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        salt.hash(&mut hasher);
        std::process::id().hash(&mut hasher);
        if let Ok(elapsed) = std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH) {
            elapsed.subsec_nanos().hash(&mut hasher);
            elapsed.as_secs().hash(&mut hasher);
        }
        Jitter::new(hasher.finish())
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A draw in `[lo, hi]` (inclusive); returns `lo` when the range is
    /// empty or inverted.
    pub fn in_range(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        lo + self.next_u64() % (hi - lo + 1)
    }

    /// The "equal jitter" wait for one backoff window: half the window
    /// guaranteed, the other half drawn uniformly — bounded below (so a
    /// hot loop still backs off) and above (so no one waits longer than
    /// the un-jittered policy would).
    pub fn equal_jitter(&mut self, window: Duration) -> Duration {
        let micros = window.as_micros().min(u128::from(u64::MAX)) as u64;
        let half = micros / 2;
        Duration::from_micros(half + self.in_range(0, micros - half))
    }
}

#[cfg(test)]
mod tests {
    use super::Jitter;
    use std::time::Duration;

    #[test]
    fn jitter_is_deterministic_per_seed_and_differs_across_seeds() {
        let a: Vec<u64> = {
            let mut j = Jitter::new(7);
            (0..8).map(|_| j.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut j = Jitter::new(7);
            (0..8).map(|_| j.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut j = Jitter::new(8);
            (0..8).map(|_| j.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn equal_jitter_stays_inside_the_window() {
        let mut j = Jitter::new(42);
        let window = Duration::from_millis(800);
        for _ in 0..256 {
            let wait = j.equal_jitter(window);
            assert!(wait >= window / 2, "wait {wait:?} under half the window");
            assert!(wait <= window, "wait {wait:?} over the window");
        }
    }

    #[test]
    fn in_range_handles_degenerate_ranges() {
        let mut j = Jitter::new(1);
        assert_eq!(j.in_range(5, 5), 5);
        assert_eq!(j.in_range(9, 3), 9);
        for _ in 0..64 {
            let draw = j.in_range(10, 12);
            assert!((10..=12).contains(&draw));
        }
    }
}
