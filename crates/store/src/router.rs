//! The shard-map router: the client side of the sharded store.
//!
//! A [`ShardRouter`] holds a cached [`ShardMap`] (fetched from any
//! bootstrap daemon with `GetShardMap`), hashes keys to shards with
//! the map's own [`ShardMap::shard_of`], and sends each keyed
//! operation — pipelined, over pooled connections — to the owning
//! shard's *coordinator* (`placement[0]`). Every keyed frame carries
//! the epoch it routed by; a daemon whose map moved on answers with a
//! typed `StaleShardMap{epoch}`, and the router refetches and retries
//! — the client-visible contract a rebalance depends on: requests in
//! flight across an epoch bump are *retried*, never failed.
//!
//! The module also hosts the scripted rebalance driver ([`rebalance`]):
//! bump the epoch, install the new map at every site — **old
//! coordinator first**, which closes the double-coordinator window (the
//! old funnel refuses epoch-`e` traffic before the new funnel accepts
//! epoch-`e+1` traffic, so two read-modify-write coordinators never
//! run concurrently) — then run the protocol-level RECOVER at the
//! joining site, the paper's own Figure 3/7 machinery doing duty as
//! data migration.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use dynvote_control::ShardMap;

use crate::client::{request_deadline, ClientError, Deadline, Outcome};
use crate::conn::{ConnOptions, ConnectionPool};
use crate::wire::Frame;

/// How many route-and-retry rounds one keyed operation may burn before
/// the router concedes (each round refetches the map). The deadline
/// still rules: the loop exits early the moment it expires.
const MAX_ROUTE_RETRIES: usize = 8;

/// Minimum overall budget for the RECOVER step of a rebalance. The
/// joiner's daemon is spawned by the map install moments earlier and
/// may spend several seconds booting and settling before its first
/// RECOVER round can be granted — a short per-request timeout (the
/// ctl default is 5 s) must not translate into a single attempt.
const RECOVER_BUDGET_FLOOR: Duration = Duration::from_secs(30);

/// A routing client for a sharded `dynvote-stored` fleet.
pub struct ShardRouter {
    pool: ConnectionPool,
    bootstrap: Vec<String>,
    map: Mutex<Option<ShardMap>>,
    stale_retries: AtomicU64,
}

enum Keyed<'a> {
    Put(&'a [u8]),
    Get,
}

impl ShardRouter {
    /// A router bootstrapping from `bootstrap` (any daemon addresses —
    /// the first one that answers `GetShardMap` wins).
    #[must_use]
    pub fn new(bootstrap: Vec<String>, opts: ConnOptions) -> ShardRouter {
        ShardRouter {
            pool: ConnectionPool::new(opts),
            bootstrap,
            map: Mutex::new(None),
            stale_retries: AtomicU64::new(0),
        }
    }

    /// How many operations were re-routed after a typed
    /// `StaleShardMap` answer — the observable difference between a
    /// *retried* request and a *failed* one across a rebalance.
    #[must_use]
    pub fn stale_retries(&self) -> u64 {
        self.stale_retries.load(Ordering::Relaxed)
    }

    /// The epoch of the cached map, if one is cached.
    #[must_use]
    pub fn cached_epoch(&self) -> Option<u64> {
        self.map
            .lock()
            .expect("router map poisoned")
            .as_ref()
            .map(|m| m.epoch)
    }

    /// Drops the cached map; the next operation refetches.
    pub fn invalidate(&self) {
        *self.map.lock().expect("router map poisoned") = None;
    }

    /// The current map: cached, or fetched from the bootstrap list.
    ///
    /// # Errors
    ///
    /// The last typed client error when no bootstrap daemon produced a
    /// decodable map before the deadline.
    pub fn map(&self, deadline: &Deadline) -> Result<ShardMap, ClientError> {
        if let Some(map) = self.map.lock().expect("router map poisoned").clone() {
            return Ok(map);
        }
        self.refresh(deadline)
    }

    /// Fetches the map from the first answering bootstrap daemon and
    /// caches it.
    ///
    /// # Errors
    ///
    /// As [`ShardRouter::map`].
    pub fn refresh(&self, deadline: &Deadline) -> Result<ShardMap, ClientError> {
        let mut last = ClientError::Unreachable {
            detail: "no bootstrap addresses".to_string(),
        };
        for addr in &self.bootstrap {
            deadline.remaining()?;
            let conn = self.pool.get(addr);
            match conn.call(&Frame::GetShardMap, deadline) {
                Ok(Outcome::ShardMap(bytes)) => match ShardMap::decode(&bytes) {
                    Ok(map) => {
                        *self.map.lock().expect("router map poisoned") = Some(map.clone());
                        return Ok(map);
                    }
                    Err(error) => {
                        last = ClientError::Protocol {
                            detail: format!("{addr}: undecodable shard map: {error}"),
                        };
                    }
                },
                Ok(other) => {
                    last = ClientError::Protocol {
                        detail: format!("{addr}: GetShardMap answered {other:?}"),
                    };
                }
                Err(error) => last = error,
            }
        }
        Err(last)
    }

    /// Routes a keyed write to the owning shard's coordinator.
    ///
    /// # Errors
    ///
    /// [`ClientError::Timeout`] at the deadline; [`ClientError`]
    /// otherwise only when retries are exhausted — stale-map answers,
    /// coordinator moves, and dead connections are retried in place.
    pub fn put(
        &self,
        key: &str,
        value: &[u8],
        deadline: &Deadline,
    ) -> Result<Outcome, ClientError> {
        self.keyed(key, &Keyed::Put(value), deadline)
    }

    /// Routes a keyed read to the owning shard's coordinator.
    ///
    /// # Errors
    ///
    /// As [`ShardRouter::put`].
    pub fn get(&self, key: &str, deadline: &Deadline) -> Result<Outcome, ClientError> {
        self.keyed(key, &Keyed::Get, deadline)
    }

    fn keyed(
        &self,
        key: &str,
        op: &Keyed<'_>,
        deadline: &Deadline,
    ) -> Result<Outcome, ClientError> {
        let mut attempts = 0;
        loop {
            attempts += 1;
            deadline.remaining()?;
            let map = self.map(deadline)?;
            let shard = map.shard_of(key.as_bytes());
            let Some(addr) = map.coordinator_addr(shard) else {
                return Err(ClientError::Protocol {
                    detail: format!(
                        "shard map (epoch {}) names no address for shard {shard}'s coordinator",
                        map.epoch
                    ),
                });
            };
            let frame = match op {
                Keyed::Put(value) => Frame::PutKey {
                    epoch: map.epoch,
                    shard,
                    key: key.to_string(),
                    value: value.to_vec(),
                },
                Keyed::Get => Frame::GetKey {
                    epoch: map.epoch,
                    shard,
                    key: key.to_string(),
                },
            };
            let conn = self.pool.get(addr);
            let retryable = match conn.call(&frame, deadline) {
                // The daemon's map moved on: refetch, re-route, retry.
                // This is the rebalance contract — the op is retried,
                // not failed.
                Ok(Outcome::Stale { .. }) => {
                    self.stale_retries.fetch_add(1, Ordering::Relaxed);
                    true
                }
                // Mid-rebalance the slot may be momentarily unhosted or
                // the funnel may have moved; the refreshed map resolves
                // both.
                Ok(Outcome::Unavailable {
                    reason: crate::wire::UnavailableReason::OriginDown,
                    ..
                }) => true,
                Ok(outcome) => return Ok(outcome),
                // A connection that died mid-exchange: the op's fate is
                // unknown (the usual at-most-once line); re-route.
                Err(ClientError::Unreachable { .. }) => true,
                Err(error) => return Err(error),
            };
            debug_assert!(retryable);
            self.invalidate();
            if attempts >= MAX_ROUTE_RETRIES {
                return Err(ClientError::Protocol {
                    detail: format!(
                        "routing for key {key:?} did not converge after {attempts} attempts"
                    ),
                });
            }
            // Give a mid-install fleet a moment before re-routing.
            std::thread::sleep(Duration::from_millis(25).min(deadline.remaining()?));
        }
    }
}

/// One-shot fetch of the shard map from a single daemon.
///
/// # Errors
///
/// A human-readable reason: unreachable daemon, non-map answer, or
/// undecodable bytes.
pub fn fetch_map(addr: &str, timeout: Duration) -> Result<ShardMap, String> {
    match request_deadline(addr, &Frame::GetShardMap, timeout) {
        Ok(Outcome::ShardMap(bytes)) => {
            ShardMap::decode(&bytes).map_err(|e| format!("{addr}: undecodable shard map: {e}"))
        }
        Ok(other) => Err(format!("{addr}: GetShardMap answered {other:?}")),
        Err(error) => Err(format!("{addr}: {error}")),
    }
}

/// Installs `map` at every site it names, `first` before the rest —
/// the old coordinator must learn the new epoch before anyone else so
/// the write funnel never runs doubled.
///
/// # Errors
///
/// The first site that refuses or cannot be reached.
fn install_everywhere(map: &ShardMap, first: usize, timeout: Duration) -> Result<(), String> {
    let bytes = map.encode();
    let mut order: Vec<(usize, &str)> = Vec::new();
    if let Some(addr) = map.addr_of(first) {
        order.push((first, addr));
    }
    for (site, addr) in &map.sites {
        if *site != first {
            order.push((*site, addr));
        }
    }
    for (site, addr) in order {
        match request_deadline(
            addr,
            &Frame::InstallShardMap { map: bytes.clone() },
            timeout,
        ) {
            Ok(outcome) if outcome.granted() => {}
            Ok(other) => {
                return Err(format!(
                    "S{site} ({addr}) refused the epoch-{} map: {other:?}",
                    map.epoch
                ))
            }
            Err(error) => {
                return Err(format!(
                    "S{site} ({addr}) unreachable installing the epoch-{} map: {error}",
                    map.epoch
                ))
            }
        }
    }
    Ok(())
}

/// Runs the protocol-level RECOVER (Figures 3/7) for `shard` at
/// `site`, retrying until granted or the overall budget elapses — a
/// freshly joined copy needs its peers' daemons reachable, and the
/// install that created it may still be settling at other sites.
/// `timeout` bounds each request; the overall budget gets a floor of
/// [`RECOVER_BUDGET_FLOOR`] so a short per-request timeout still
/// leaves room for the joiner's daemon to finish booting.
fn recover_at(
    map: &ShardMap,
    shard: u16,
    site: usize,
    timeout: Duration,
) -> Result<String, String> {
    let addr = map
        .addr_of(site)
        .ok_or_else(|| format!("the map names no address for site {site}"))?;
    let frame = Frame::Shard {
        shard,
        inner: Box::new(Frame::Recover),
    };
    let deadline = std::time::Instant::now() + timeout.max(RECOVER_BUDGET_FLOOR);
    loop {
        let last = match request_deadline(addr, &frame, timeout) {
            Ok(Outcome::Done(detail)) => return Ok(detail),
            Ok(other) => format!("{other:?}"),
            Err(error) => error.to_string(),
        };
        if std::time::Instant::now() >= deadline {
            return Err(format!(
                "RECOVER for shard {shard} at S{site} never granted: {last}"
            ));
        }
        std::thread::sleep(Duration::from_millis(150));
    }
}

/// A scripted rebalance of one shard: optionally grow the placement by
/// `add` (epoch `e+1`: install everywhere old-coordinator-first, then
/// protocol-level RECOVER at the joiner), then optionally shrink it by
/// `remove` (epoch `e+2`, same install order). Returns the log of
/// steps taken; the final installed map is fetchable from any site.
///
/// # Errors
///
/// Any step that refuses or times out, with the steps already taken
/// still applied (a rebalance is not atomic across sites — the epoch
/// protocol is what keeps the non-atomicity safe).
pub fn rebalance(
    addr: &str,
    shard: u16,
    add: Option<usize>,
    remove: Option<usize>,
    timeout: Duration,
) -> Result<Vec<String>, String> {
    let mut steps = Vec::new();
    let mut map = fetch_map(addr, timeout)?;
    let spec = map
        .shards
        .get(shard as usize)
        .ok_or_else(|| format!("shard {shard} out of range ({} shards)", map.shards.len()))?
        .clone();
    if let Some(site) = add {
        if spec.placement.contains(&site) {
            steps.push(format!("S{site} already in shard {shard}'s placement"));
        } else {
            let coordinator = spec.coordinator();
            let mut next = map.clone();
            next.epoch += 1;
            next.shards[shard as usize].placement.push(site);
            install_everywhere(&next, coordinator, timeout)?;
            steps.push(format!(
                "epoch {}: shard {shard} placement grew to {:?}",
                next.epoch, next.shards[shard as usize].placement
            ));
            let detail = recover_at(&next, shard, site, timeout)?;
            steps.push(format!("S{site} recovered into shard {shard}: {detail}"));
            map = next;
        }
    }
    if let Some(site) = remove {
        let spec = map.shards[shard as usize].clone();
        if !spec.placement.contains(&site) {
            steps.push(format!("S{site} not in shard {shard}'s placement"));
        } else if spec.placement.len() == 1 {
            return Err(format!(
                "refusing to remove shard {shard}'s last copy (S{site})"
            ));
        } else {
            let coordinator = spec.coordinator();
            let mut next = map.clone();
            next.epoch += 1;
            next.shards[shard as usize].placement.retain(|&s| s != site);
            install_everywhere(&next, coordinator, timeout)?;
            steps.push(format!(
                "epoch {}: shard {shard} placement shrank to {:?}",
                next.epoch, next.shards[shard as usize].placement
            ));
            map = next;
        }
    }
    let _ = map;
    Ok(steps)
}
