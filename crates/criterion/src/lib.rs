//! Offline stand-in for the crates.io `criterion` crate (0.5 API
//! subset).
//!
//! The build environment has no network access, so the workspace cannot
//! fetch `criterion` from a registry. This crate implements the surface
//! the `dynvote-bench` targets use — [`criterion_group!`],
//! [`criterion_main!`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`Throughput`] and [`Bencher::iter`] — with a
//! deliberately simple measurement loop: a short warm-up followed by a
//! fixed time budget, reporting mean wall-clock time per iteration.
//! There is no statistical analysis, no HTML report, and no comparison
//! against saved baselines.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Entry point handed to every benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            budget: Duration::from_millis(250),
            throughput: None,
        }
    }
}

/// A named set of benchmarks sharing throughput/size settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    budget: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares how much work one iteration performs (reported as a
    /// rate).
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Real criterion uses this as a statistical sample count; here it
    /// only scales the per-benchmark time budget (smaller = quicker).
    pub fn sample_size(&mut self, n: usize) {
        self.budget = Duration::from_millis(25).saturating_mul(n.clamp(1, 100) as u32);
    }

    /// Runs one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut bencher = Bencher::new(self.budget);
        f(&mut bencher);
        bencher.report(&id.to_string(), self.throughput.as_ref());
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut bencher = Bencher::new(self.budget);
        f(&mut bencher, input);
        bencher.report(&id.to_string(), self.throughput.as_ref());
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// A benchmark name combined with a parameter value.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `name/parameter`, as real criterion renders it.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{name}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Work performed per iteration, for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Times the closure handed to it.
pub struct Bencher {
    budget: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    fn new(budget: Duration) -> Self {
        Bencher {
            budget,
            iters: 0,
            elapsed: Duration::ZERO,
        }
    }

    /// Runs `f` repeatedly — a short warm-up, then until the group's
    /// time budget is spent — recording mean time per iteration.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        for _ in 0..3 {
            std::hint::black_box(f());
        }
        let started = Instant::now();
        let mut iters = 0u64;
        loop {
            std::hint::black_box(f());
            iters += 1;
            if started.elapsed() >= self.budget {
                break;
            }
        }
        self.iters = iters;
        self.elapsed = started.elapsed();
    }

    fn report(&self, id: &str, throughput: Option<&Throughput>) {
        if self.iters == 0 {
            println!("  {id}: no iterations recorded");
            return;
        }
        let per_iter = self.elapsed.as_secs_f64() / self.iters as f64;
        print!(
            "  {id}: {:.3} µs/iter ({} iters)",
            per_iter * 1e6,
            self.iters
        );
        match throughput {
            Some(Throughput::Elements(n)) => {
                println!(", {:.0} elem/s", *n as f64 / per_iter);
            }
            Some(Throughput::Bytes(n)) => {
                println!(", {:.0} B/s", *n as f64 / per_iter);
            }
            None => println!(),
        }
    }
}

/// Bundles benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
