//! Collection strategies.

use core::ops::Range;

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A length specification for [`vec`]: an exact `usize` or a half-open
/// `Range<usize>`.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            lo: exact,
            hi: exact + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty vec size range");
        SizeRange {
            lo: range.start,
            hi: range.end,
        }
    }
}

/// The strategy returned by [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = if self.size.lo + 1 == self.size.hi {
            self.size.lo
        } else {
            rng.gen_range(self.size.lo..self.size.hi)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A `Vec` whose length is drawn from `size` and whose elements are
/// drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
