//! Value-generation strategies.

use core::fmt::Debug;
use core::marker::PhantomData;
use core::ops::Range;

use rand::Rng;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic function of the case RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: Debug;

    /// Draws one value from the case RNG.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy (stand-in for real
/// proptest's `Arbitrary`).
pub trait Arbitrary: Sized + Debug {
    /// Draws one value uniformly from the type's whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            #[inline]
            #[allow(clippy::cast_possible_truncation)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )+};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    #[inline]
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<bool>()
    }
}

/// The strategy returned by [`any`].
#[derive(Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Any<T> {}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over the whole domain of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_strategy_for_range {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )+};
}
impl_strategy_for_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_for_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_strategy_for_tuple!(A: 0);
impl_strategy_for_tuple!(A: 0, B: 1);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3);

type DynGenerate<V> = Box<dyn Fn(&mut TestRng) -> V>;

/// A weighted choice among strategies with a common value type; built
/// by the [`prop_oneof!`](crate::prop_oneof) macro.
pub struct Union<V> {
    arms: Vec<(u32, DynGenerate<V>)>,
}

impl<V: Debug> Union<V> {
    /// An empty union; generation panics until an arm is added.
    #[must_use]
    pub fn new() -> Self {
        Union { arms: Vec::new() }
    }

    /// Adds an arm with the given relative weight.
    #[must_use]
    pub fn or<S>(mut self, weight: u32, strategy: S) -> Self
    where
        S: Strategy<Value = V> + 'static,
    {
        assert!(weight > 0, "prop_oneof! weights must be positive");
        self.arms
            .push((weight, Box::new(move |rng| strategy.generate(rng))));
        self
    }
}

impl<V: Debug> Default for Union<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let total: u32 = self.arms.iter().map(|(w, _)| w).sum();
        assert!(total > 0, "prop_oneof! needs at least one arm");
        let mut pick = rng.gen_range(0..total);
        for (weight, arm) in &self.arms {
            if pick < *weight {
                return arm(rng);
            }
            pick -= weight;
        }
        unreachable!("weighted pick exceeded total weight")
    }
}
