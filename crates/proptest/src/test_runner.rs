//! Case execution: configuration, seeding, and the per-case RNG.

use rand::SeedableRng;

/// The RNG handed to strategies for one test case.
pub type TestRng = rand::rngs::StdRng;

/// How many cases to run, and (unlike real proptest) nothing else.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running exactly `cases` cases (ignores the
    /// `PROPTEST_CASES` environment variable, matching real proptest).
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 256 cases, overridable via the `PROPTEST_CASES` environment
    /// variable.
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}

/// FNV-1a, used to give every property its own seed universe.
fn fnv1a(text: &str) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for byte in text.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// SplitMix64 finalizer for combining (test hash, case index, user seed).
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs `case` once per configured case with a deterministic,
/// per-(test, index) seeded RNG.
///
/// Failures panic through (after the macro wrapper has printed the
/// generated inputs); this function additionally names the case index
/// and seed so the run can be reproduced in isolation.
pub fn run_cases<F>(config: &ProptestConfig, test_name: &str, mut case: F)
where
    F: FnMut(&mut TestRng),
{
    let user_seed = std::env::var("PROPTEST_RNG_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0u64);
    let base = fnv1a(test_name) ^ mix(user_seed);
    for index in 0..config.cases {
        let seed = mix(base ^ u64::from(index).wrapping_mul(0x2545_F491_4F6C_DD1D));
        let mut rng = TestRng::seed_from_u64(seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            case(&mut rng);
        }));
        if let Err(panic) = outcome {
            eprintln!(
                "proptest: property {test_name} failed at case {index}/{} \
                 (case seed {seed:#018x}); no shrinking in this offline \
                 stand-in, inputs printed above",
                config.cases
            );
            std::panic::resume_unwind(panic);
        }
    }
}
