//! Offline stand-in for the crates.io `proptest` crate (1.x API subset).
//!
//! The build environment has no network access, so the workspace cannot
//! fetch `proptest` from a registry. This crate implements the surface
//! the workspace's property tests use: the [`proptest!`] and
//! [`prop_oneof!`] macros, `prop_assert!`/`prop_assert_eq!`, the
//! [`strategy::Strategy`] trait with `prop_map`, range / tuple /
//! [`strategy::Just`] / [`strategy::any`] strategies,
//! [`collection::vec`], and [`test_runner::ProptestConfig`].
//!
//! Differences from real proptest, deliberately accepted:
//!
//! - **No shrinking.** A failing case reports the generated inputs and
//!   the case seed instead of a minimized counterexample.
//! - **Deterministic seeding.** Case `i` of test `t` is seeded from
//!   `FNV(t)` mixed with `i`, so failures reproduce without a
//!   persistence file. Set `PROPTEST_RNG_SEED` to explore a different
//!   universe of cases.
//! - `ProptestConfig::default()` honours the `PROPTEST_CASES`
//!   environment variable (like real proptest's env-driven config);
//!   `with_cases` is exact.

#![warn(missing_docs)]

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Defines property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn addition_commutes(a in 0u32..100, b in 0u32..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
///
/// As with real proptest, the `#[test]` attribute is written by the
/// caller and passed through.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            $crate::test_runner::run_cases(&__config, stringify!($name), |__rng| {
                $(
                    let $arg =
                        $crate::strategy::Strategy::generate(&($strategy), __rng);
                )+
                let __case_inputs = ::std::format!(
                    ::std::concat!($(::std::stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || $body),
                );
                if let ::std::result::Result::Err(panic) = __outcome {
                    ::std::eprintln!(
                        "proptest: case failed with inputs: {__case_inputs}"
                    );
                    ::std::panic::resume_unwind(panic);
                }
            });
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Chooses between several strategies producing the same value type,
/// optionally weighted (`weight => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new()$(.or($weight, $strategy))+
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new()$(.or(1, $strategy))+
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)+) => { ::std::assert!($($args)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)+) => { ::std::assert_eq!($($args)+) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)+) => { ::std::assert_ne!($($args)+) };
}
