//! Memoized reachability: up-set bitmask → interned partition value.
//!
//! [`crate::Network::reachability`] is a pure function of the up-set —
//! the topology itself never changes — so a simulation that recomputes
//! it on every failure/repair event is doing the same union-find over
//! and over. For the paper's 8-site Figure 8 network there are at most
//! 2⁸ = 256 distinct up-sets; a long availability run visits each of
//! them millions of times. The cache computes each partition once,
//! interns it behind an [`Arc`], and turns every subsequent lookup into
//! a table index plus a reference-count bump — no BFS, no allocation.
//!
//! Memoization cannot change results: the cached value is exactly the
//! value `Network::reachability` returns for that up-set, and the
//! network is immutable while cached (the cache checks this with a
//! debug assertion on the site universe).

use std::collections::HashMap;
use std::sync::Arc;

use dynvote_types::SiteSet;

use crate::network::Network;
use crate::reachability::Reachability;

/// Site universes up to this many low bits use the dense direct-indexed
/// table (`2^n` slots); larger universes fall back to a hash map. At 12
/// sites the dense table is 4096 pointers — 32 KiB — while the paper's
/// networks (8 sites) use 2 KiB.
const DENSE_BITS: u32 = 12;

enum Slots {
    /// Indexed directly by the up-set bitmask. `None` = not yet computed.
    Dense(Vec<Option<Arc<Reachability>>>),
    /// General fallback keyed by the up-set bitmask.
    Sparse(HashMap<u64, Arc<Reachability>>),
}

/// An interning memo table for [`Network::reachability`].
///
/// Create one per [`Network`] and route reachability queries through
/// [`ReachabilityCache::get`]. Cloning the cache clones the *table*,
/// not the values: the interned [`Arc`]s are shared, so a driver fleet
/// (e.g. independent replications of a reliability study) can fork a
/// warm cache for free.
///
/// # Examples
///
/// ```
/// use dynvote_topology::{Network, ReachabilityCache};
/// use dynvote_types::SiteSet;
///
/// let net = Network::single_segment(4);
/// let mut cache = ReachabilityCache::new(&net);
/// let up = SiteSet::from_indices([0, 2]);
/// let a = cache.get(&net, up);
/// let b = cache.get(&net, up);
/// // Same interned value, computed once.
/// assert!(std::sync::Arc::ptr_eq(&a, &b));
/// assert_eq!(*a, net.reachability(up));
/// ```
pub struct ReachabilityCache {
    slots: Slots,
    /// The site universe the cache was built for (debug-checked on use).
    sites: SiteSet,
    /// Lookups answered from the table.
    hits: u64,
    /// Lookups that had to run the union-find.
    misses: u64,
}

impl ReachabilityCache {
    /// An empty cache sized for `network`.
    #[must_use]
    pub fn new(network: &Network) -> Self {
        let sites = network.sites();
        let slots = if sites.bits() < (1u64 << DENSE_BITS) {
            Slots::Dense(vec![None; 1usize << DENSE_BITS.min(usize::BITS - 1)])
        } else {
            Slots::Sparse(HashMap::new())
        };
        ReachabilityCache {
            slots,
            sites,
            hits: 0,
            misses: 0,
        }
    }

    /// The interned reachability for `up`, computing and caching it on
    /// first use. Equivalent to `network.reachability(up)` in every
    /// observable way.
    ///
    /// `network` must be the network the cache was created for; mixing
    /// networks is a logic error caught by a debug assertion.
    #[must_use]
    pub fn get(&mut self, network: &Network, up: SiteSet) -> Arc<Reachability> {
        debug_assert_eq!(
            network.sites(),
            self.sites,
            "cache used with a different network"
        );
        let key = (up & self.sites).bits();
        match &mut self.slots {
            Slots::Dense(table) => {
                if let Some(cached) = &table[key as usize] {
                    self.hits += 1;
                    return Arc::clone(cached);
                }
                self.misses += 1;
                let value = Arc::new(network.reachability(up));
                table[key as usize] = Some(Arc::clone(&value));
                value
            }
            Slots::Sparse(map) => {
                if let Some(cached) = map.get(&key) {
                    self.hits += 1;
                    return Arc::clone(cached);
                }
                self.misses += 1;
                let value = Arc::new(network.reachability(up));
                map.insert(key, Arc::clone(&value));
                value
            }
        }
    }

    /// Number of distinct up-sets computed so far.
    #[must_use]
    pub fn len(&self) -> usize {
        match &self.slots {
            Slots::Dense(table) => table.iter().filter(|s| s.is_some()).count(),
            Slots::Sparse(map) => map.len(),
        }
    }

    /// `true` when no up-set has been computed yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.misses == 0
    }

    /// Lookups answered without running the union-find.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that computed (and interned) a new partition.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

impl Clone for ReachabilityCache {
    fn clone(&self) -> Self {
        ReachabilityCache {
            slots: match &self.slots {
                Slots::Dense(table) => Slots::Dense(table.clone()),
                Slots::Sparse(map) => Slots::Sparse(map.clone()),
            },
            sites: self.sites,
            hits: 0,
            misses: 0,
        }
    }
}

impl core::fmt::Debug for ReachabilityCache {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ReachabilityCache")
            .field("entries", &self.len())
            .field("hits", &self.hits)
            .field("misses", &self.misses)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;
    use proptest::prelude::*;

    fn two_segment() -> Network {
        NetworkBuilder::new()
            .segment("alpha", [0, 1, 2])
            .segment("beta", [3, 4])
            .bridge(2, "beta")
            .build()
            .unwrap()
    }

    #[test]
    fn cached_equals_fresh_for_every_up_set() {
        let net = two_segment();
        let mut cache = ReachabilityCache::new(&net);
        for mask in 0u64..32 {
            let up = SiteSet::from_bits(mask);
            assert_eq!(*cache.get(&net, up), net.reachability(up), "mask {mask:#b}");
        }
        assert_eq!(cache.len(), 32);
    }

    #[test]
    fn repeat_lookups_hit_and_intern() {
        let net = two_segment();
        let mut cache = ReachabilityCache::new(&net);
        let up = SiteSet::from_indices([0, 1, 3]);
        let a = cache.get(&net, up);
        let b = cache.get(&net, up);
        assert!(Arc::ptr_eq(&a, &b), "second lookup must return the intern");
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn out_of_universe_bits_are_masked() {
        let net = two_segment();
        let mut cache = ReachabilityCache::new(&net);
        // Bits outside the 5-site universe must not create new entries.
        let a = cache.get(&net, SiteSet::from_bits(0b11));
        let b = cache.get(&net, SiteSet::from_bits(0b11 | (1 << 40)));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn clone_shares_interned_values() {
        let net = two_segment();
        let mut cache = ReachabilityCache::new(&net);
        let up = net.sites();
        let a = cache.get(&net, up);
        let mut forked = cache.clone();
        let b = forked.get(&net, up);
        assert!(Arc::ptr_eq(&a, &b), "fork must share the warm entries");
        assert_eq!(forked.hits(), 1);
        assert_eq!(forked.misses(), 0);
    }

    #[test]
    fn sparse_fallback_for_wide_universes() {
        // A universe using site indices ≥ DENSE_BITS forces the hash
        // path; behaviour must be identical.
        let net = NetworkBuilder::new()
            .segment("hi", [20, 21, 22])
            .segment("lo", [30])
            .bridge(22, "lo")
            .build()
            .unwrap();
        let mut cache = ReachabilityCache::new(&net);
        for up in [
            SiteSet::from_indices([20, 21, 22, 30]),
            SiteSet::from_indices([20, 30]),
            SiteSet::from_indices([20, 21, 22, 30]),
        ] {
            assert_eq!(*cache.get(&net, up), net.reachability(up));
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.hits(), 1);
    }

    /// Random networks over up to 12 sites: 2-4 segments of random
    /// sizes, random gateway bridges (possibly none, possibly chained).
    fn arb_network() -> impl Strategy<Value = Network> {
        (2usize..5, proptest::collection::vec(0usize..12, 0..4)).prop_map(
            |(n_seg, bridge_picks)| {
                // Deal 12 sites round-robin into n_seg segments.
                let mut builder = NetworkBuilder::new();
                let names = ["a", "b", "c", "d"];
                for seg in 0..n_seg {
                    let members: Vec<usize> = (0..12).filter(|s| s % n_seg == seg).collect();
                    builder = builder.segment(names[seg], members);
                }
                // Each pick bridges its home-segment gateway to the next
                // segment over (skipping self-bridges by construction).
                for site in bridge_picks {
                    let home = site % n_seg;
                    let to = names[(home + 1) % n_seg];
                    builder = builder.bridge(site, to);
                }
                builder.build().expect("generator produces valid networks")
            },
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// For random networks (≤ 12 sites, random bridges) and *all*
        /// 2¹² up-sets, the cached reachability equals a fresh BFS.
        #[test]
        fn cache_agrees_with_fresh_bfs_exhaustively(net in arb_network()) {
            let mut cache = ReachabilityCache::new(&net);
            for mask in 0u64..(1 << 12) {
                let up = SiteSet::from_bits(mask);
                let cached = cache.get(&net, up);
                let fresh = net.reachability(up);
                prop_assert_eq!(&*cached, &fresh, "mask {:#014b}", mask);
            }
            // Second sweep: everything must now be a hit, and still agree.
            let misses_after_first = cache.misses();
            for mask in 0u64..(1 << 12) {
                let up = SiteSet::from_bits(mask);
                prop_assert_eq!(&*cache.get(&net, up), &net.reachability(up));
            }
            prop_assert_eq!(cache.misses(), misses_after_first, "second sweep recomputed");
        }
    }
}
