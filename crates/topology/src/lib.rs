#![warn(missing_docs)]

//! Segmented local-area-network topology model.
//!
//! Section 3 of the paper observes that large LANs are built from
//! *non-partitionable segments* — unsegmented carrier-sense networks
//! (Ethernets) or token rings — joined by *gateway hosts*. Segments never
//! split: two up sites on the same segment can always talk. Gateways can
//! fail, detaching whole segments and partitioning the network. This is
//! the structural fact Topological Dynamic Voting exploits: an up site may
//! claim the votes of unreachable sites on *its own* segment, because they
//! cannot be on the far side of a partition — they must be down.
//!
//! This crate models that world:
//!
//! * [`Network`] — sites assigned to segments, plus gateway hosts that
//!   bridge their home segment to other segments,
//! * [`Reachability`] — given the set of currently *up* sites, the
//!   partition of up sites into maximal mutually-communicating groups,
//! * [`ReachabilityCache`] — a memo table interning one immutable
//!   [`Reachability`] per up-set, turning the per-event recomputation
//!   done by simulators into a table lookup,
//! * [`NetworkBuilder`] — ergonomic construction (and the classic UCSD
//!   Figure 8 network lives in `dynvote-availability::network`),
//! * [`Network::segment_partitions`] — the canonical enumeration of
//!   every partition the topology can be driven into (set partitions of
//!   the segment set), the event alphabet model checkers explore.

pub mod builder;
pub mod cache;
pub mod network;
pub mod partitions;
pub mod reachability;

pub use builder::{point_to_point, NetworkBuilder};
pub use cache::ReachabilityCache;
pub use network::{Network, SegmentId, TopologyError};
pub use reachability::Reachability;
