//! The result of a reachability computation: who can talk to whom, now.

use dynvote_types::{SiteId, SiteSet, MAX_SITES};

/// Sentinel for "site is in no group" in the per-site index array.
const NO_GROUP: u8 = u8::MAX;

/// A partition of the currently-up sites into maximal groups of mutually
/// communicating sites.
///
/// Produced by [`crate::Network::reachability`]. Each group corresponds
/// to one side of a (possibly multi-way) network partition; within a
/// group, the paper's fail-stop/reliable-delivery assumptions mean every
/// member answers a broadcast.
///
/// Alongside the group list the value carries a compact per-site
/// group-index array, so the hot-path queries [`Reachability::group_of`]
/// and [`Reachability::can_communicate`] are O(1) lookups rather than
/// linear scans — the simulation driver issues them on every event.
#[derive(Clone, Debug)]
pub struct Reachability {
    groups: Vec<SiteSet>,
    up: SiteSet,
    /// `group_index[s]` is the index into `groups` of the group holding
    /// site `s`, or [`NO_GROUP`] when the site is down.
    group_index: [u8; MAX_SITES],
}

impl PartialEq for Reachability {
    fn eq(&self, other: &Self) -> bool {
        // The index array is derived from the groups; comparing it
        // would be redundant.
        self.groups == other.groups && self.up == other.up
    }
}

impl Eq for Reachability {}

fn index_groups(groups: &[SiteSet]) -> [u8; MAX_SITES] {
    debug_assert!(groups.len() < NO_GROUP as usize, "group count fits in u8");
    let mut index = [NO_GROUP; MAX_SITES];
    for (i, g) in groups.iter().enumerate() {
        for site in g.iter() {
            index[site.index()] = i as u8;
        }
    }
    index
}

impl Reachability {
    pub(crate) fn new(groups: Vec<SiteSet>, up: SiteSet) -> Self {
        debug_assert!(
            groups.iter().all(|g| g.is_subset_of(up)),
            "groups must contain only up sites"
        );
        let group_index = index_groups(&groups);
        Reachability {
            groups,
            up,
            group_index,
        }
    }

    /// Builds a reachability directly from groups (for tests and for
    /// driving protocol engines without a [`crate::Network`]).
    ///
    /// # Panics
    ///
    /// Panics if the groups are not pairwise disjoint.
    #[must_use]
    pub fn from_groups(groups: Vec<SiteSet>) -> Self {
        let mut up = SiteSet::EMPTY;
        for g in &groups {
            assert!(up.is_disjoint(*g), "groups must be pairwise disjoint");
            up |= *g;
        }
        let group_index = index_groups(&groups);
        Reachability {
            groups,
            up,
            group_index,
        }
    }

    /// The maximal mutually-communicating groups, in unspecified order.
    #[must_use]
    pub fn groups(&self) -> &[SiteSet] {
        &self.groups
    }

    /// All sites that are up.
    #[must_use]
    pub fn up(&self) -> SiteSet {
        self.up
    }

    /// The group containing `site`, or `None` when the site is down.
    ///
    /// This is the paper's `R` for a request originating at `site`: "the
    /// set of all sites communicating with the requesting site". An O(1)
    /// array lookup.
    #[inline]
    #[must_use]
    pub fn group_of(&self, site: SiteId) -> Option<SiteSet> {
        match self.group_index[site.index()] {
            NO_GROUP => None,
            i => Some(self.groups[i as usize]),
        }
    }

    /// `true` when the two sites can currently communicate. O(1).
    #[inline]
    #[must_use]
    pub fn can_communicate(&self, a: SiteId, b: SiteId) -> bool {
        let ia = self.group_index[a.index()];
        ia != NO_GROUP && ia == self.group_index[b.index()]
    }

    /// The linear-scan definition of [`Reachability::group_of`], kept as
    /// the executable specification the O(1) index is tested against.
    #[must_use]
    pub fn group_of_linear(&self, site: SiteId) -> Option<SiteSet> {
        self.groups.iter().copied().find(|g| g.contains(site))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn from_groups_and_queries() {
        let r = Reachability::from_groups(vec![
            SiteSet::from_indices([0, 1]),
            SiteSet::from_indices([3]),
        ]);
        assert_eq!(r.up(), SiteSet::from_indices([0, 1, 3]));
        assert_eq!(
            r.group_of(SiteId::new(1)),
            Some(SiteSet::from_indices([0, 1]))
        );
        assert_eq!(r.group_of(SiteId::new(2)), None);
        assert!(r.can_communicate(SiteId::new(0), SiteId::new(1)));
        assert!(!r.can_communicate(SiteId::new(0), SiteId::new(3)));
        assert!(!r.can_communicate(SiteId::new(0), SiteId::new(2)));
    }

    #[test]
    #[should_panic(expected = "pairwise disjoint")]
    fn overlapping_groups_rejected() {
        let _ = Reachability::from_groups(vec![
            SiteSet::from_indices([0, 1]),
            SiteSet::from_indices([1, 2]),
        ]);
    }

    /// A random partition of (a subset of) the first 12 sites into up to
    /// four disjoint groups: each site draws a group id 0-4, where 4
    /// means "down".
    fn arb_partition() -> impl Strategy<Value = Vec<SiteSet>> {
        proptest::collection::vec(0u8..5, 12).prop_map(|assignment| {
            let mut groups = vec![SiteSet::EMPTY; 4];
            for (site, &g) in assignment.iter().enumerate() {
                if (g as usize) < groups.len() {
                    groups[g as usize].insert(SiteId::new(site));
                }
            }
            groups.retain(|g| !g.is_empty());
            groups
        })
    }

    proptest! {
        /// The O(1) per-site index agrees with the linear-scan
        /// definition for every site, on random group partitions.
        #[test]
        fn indexed_group_of_matches_linear_scan(groups in arb_partition()) {
            let r = Reachability::from_groups(groups);
            for site in (0..16).map(SiteId::new) {
                prop_assert_eq!(r.group_of(site), r.group_of_linear(site));
            }
        }

        /// `can_communicate` is exactly "same group under the linear
        /// scan" on random partitions.
        #[test]
        fn can_communicate_matches_linear_scan(groups in arb_partition()) {
            let r = Reachability::from_groups(groups);
            for a in (0..14).map(SiteId::new) {
                for b in (0..14).map(SiteId::new) {
                    let expected = match (r.group_of_linear(a), r.group_of_linear(b)) {
                        (Some(ga), Some(gb)) => ga == gb,
                        _ => false,
                    };
                    prop_assert_eq!(r.can_communicate(a, b), expected);
                }
            }
        }
    }
}
