//! The result of a reachability computation: who can talk to whom, now.

use dynvote_types::{SiteId, SiteSet};

/// A partition of the currently-up sites into maximal groups of mutually
/// communicating sites.
///
/// Produced by [`crate::Network::reachability`]. Each group corresponds
/// to one side of a (possibly multi-way) network partition; within a
/// group, the paper's fail-stop/reliable-delivery assumptions mean every
/// member answers a broadcast.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Reachability {
    groups: Vec<SiteSet>,
    up: SiteSet,
}

impl Reachability {
    pub(crate) fn new(groups: Vec<SiteSet>, up: SiteSet) -> Self {
        debug_assert!(
            groups.iter().all(|g| g.is_subset_of(up)),
            "groups must contain only up sites"
        );
        Reachability { groups, up }
    }

    /// Builds a reachability directly from groups (for tests and for
    /// driving protocol engines without a [`crate::Network`]).
    ///
    /// # Panics
    ///
    /// Panics if the groups are not pairwise disjoint.
    #[must_use]
    pub fn from_groups(groups: Vec<SiteSet>) -> Self {
        let mut up = SiteSet::EMPTY;
        for g in &groups {
            assert!(up.is_disjoint(*g), "groups must be pairwise disjoint");
            up |= *g;
        }
        Reachability { groups, up }
    }

    /// The maximal mutually-communicating groups, in unspecified order.
    #[must_use]
    pub fn groups(&self) -> &[SiteSet] {
        &self.groups
    }

    /// All sites that are up.
    #[must_use]
    pub fn up(&self) -> SiteSet {
        self.up
    }

    /// The group containing `site`, or `None` when the site is down.
    ///
    /// This is the paper's `R` for a request originating at `site`: "the
    /// set of all sites communicating with the requesting site".
    #[must_use]
    pub fn group_of(&self, site: SiteId) -> Option<SiteSet> {
        self.groups.iter().copied().find(|g| g.contains(site))
    }

    /// `true` when the two sites can currently communicate.
    #[must_use]
    pub fn can_communicate(&self, a: SiteId, b: SiteId) -> bool {
        self.group_of(a).is_some_and(|g| g.contains(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_groups_and_queries() {
        let r = Reachability::from_groups(vec![
            SiteSet::from_indices([0, 1]),
            SiteSet::from_indices([3]),
        ]);
        assert_eq!(r.up(), SiteSet::from_indices([0, 1, 3]));
        assert_eq!(
            r.group_of(SiteId::new(1)),
            Some(SiteSet::from_indices([0, 1]))
        );
        assert_eq!(r.group_of(SiteId::new(2)), None);
        assert!(r.can_communicate(SiteId::new(0), SiteId::new(1)));
        assert!(!r.can_communicate(SiteId::new(0), SiteId::new(3)));
        assert!(!r.can_communicate(SiteId::new(0), SiteId::new(2)));
    }

    #[test]
    #[should_panic(expected = "pairwise disjoint")]
    fn overlapping_groups_rejected() {
        let _ = Reachability::from_groups(vec![
            SiteSet::from_indices([0, 1]),
            SiteSet::from_indices([1, 2]),
        ]);
    }
}
