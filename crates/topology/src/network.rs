//! The static description of a segmented LAN.

use core::fmt;

use dynvote_types::{SiteId, SiteSet, MAX_SITES};

use crate::reachability::Reachability;

/// Identifier of a non-partitionable network segment (an Ethernet or a
/// token ring in the paper's terminology).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SegmentId(pub(crate) u16);

impl SegmentId {
    /// The zero-based index of the segment.
    #[inline]
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for SegmentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seg{}", self.0)
    }
}

impl fmt::Display for SegmentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seg{}", self.0)
    }
}

/// Errors raised while constructing a [`Network`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TopologyError {
    /// A site was assigned to two different segments. The paper requires
    /// every host — including gateways — to *belong* to exactly one
    /// segment, otherwise rival majority blocks could claim the same
    /// host's votes.
    DuplicateSite(SiteId),
    /// A bridge references a site that is not on any segment.
    UnknownGateway(SiteId),
    /// A bridge references a segment name that was never declared.
    UnknownSegment(String),
    /// A gateway was bridged to its own home segment.
    SelfBridge(SiteId),
    /// Two segments were declared with the same name.
    DuplicateSegmentName(String),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::DuplicateSite(s) => {
                write!(f, "site {s} assigned to more than one segment")
            }
            TopologyError::UnknownGateway(s) => {
                write!(f, "gateway {s} is not a member of any segment")
            }
            TopologyError::UnknownSegment(name) => write!(f, "unknown segment {name:?}"),
            TopologyError::SelfBridge(s) => {
                write!(f, "gateway {s} bridged to its own home segment")
            }
            TopologyError::DuplicateSegmentName(name) => {
                write!(f, "segment {name:?} declared twice")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// A bridge: a gateway host connecting its home segment to another
/// segment. Traffic flows across the bridge only while the gateway host
/// is up.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Bridge {
    /// The gateway host.
    pub gateway: SiteId,
    /// The foreign segment the gateway attaches to.
    pub to: SegmentId,
}

/// A segmented LAN: sites grouped into non-partitionable segments, joined
/// by gateway hosts.
///
/// Invariants enforced at construction:
///
/// * every site belongs to exactly one segment (the paper's rule for
///   sound topological vote claiming),
/// * every bridge's gateway is a known site and attaches to a foreign,
///   declared segment.
///
/// Segments themselves never fail — only sites (and therefore gateways)
/// do. The network's connectivity under a given set of up sites is
/// computed by [`Network::reachability`].
///
/// # Examples
///
/// A two-segment network where site `S2` gateways between them:
///
/// ```
/// use dynvote_topology::NetworkBuilder;
/// use dynvote_types::SiteSet;
///
/// let net = NetworkBuilder::new()
///     .segment("alpha", [0, 1, 2])
///     .segment("beta", [3])
///     .bridge(2, "beta")
///     .build()
///     .unwrap();
///
/// // All four sites up: one connected group.
/// let all = SiteSet::first_n(4);
/// assert_eq!(net.reachability(all).groups().len(), 1);
///
/// // Gateway S2 down: S3 is cut off from {S0, S1}.
/// let up = SiteSet::from_indices([0, 1, 3]);
/// let r = net.reachability(up);
/// assert_eq!(r.groups().len(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct Network {
    sites: SiteSet,
    segment_of: [u16; MAX_SITES],
    segment_members: Vec<SiteSet>,
    segment_names: Vec<String>,
    bridges: Vec<Bridge>,
}

const NO_SEGMENT: u16 = u16::MAX;

impl Network {
    pub(crate) fn from_parts(
        segment_members: Vec<SiteSet>,
        segment_names: Vec<String>,
        bridges: Vec<Bridge>,
    ) -> Result<Self, TopologyError> {
        let mut segment_of = [NO_SEGMENT; MAX_SITES];
        let mut sites = SiteSet::EMPTY;
        for (seg, members) in segment_members.iter().enumerate() {
            for site in members.iter() {
                if segment_of[site.index()] != NO_SEGMENT {
                    return Err(TopologyError::DuplicateSite(site));
                }
                segment_of[site.index()] = seg as u16;
                sites.insert(site);
            }
        }
        for bridge in &bridges {
            if !sites.contains(bridge.gateway) {
                return Err(TopologyError::UnknownGateway(bridge.gateway));
            }
            if segment_of[bridge.gateway.index()] == bridge.to.0 {
                return Err(TopologyError::SelfBridge(bridge.gateway));
            }
        }
        Ok(Network {
            sites,
            segment_of,
            segment_members,
            segment_names,
            bridges,
        })
    }

    /// A degenerate network where all `n` sites share one segment — the
    /// "unsegmented carrier-sense network" case in which Topological
    /// Dynamic Voting degenerates into an Available-Copy protocol.
    #[must_use]
    pub fn single_segment(n: usize) -> Self {
        Network::from_parts(
            vec![SiteSet::first_n(n)],
            vec!["all".to_string()],
            Vec::new(),
        )
        .expect("single segment is always valid")
    }

    /// A network where every site sits alone on its own segment, pairwise
    /// joined only through external switching we model as never failing.
    ///
    /// This is the conventional *point-to-point* world in which
    /// topological vote claiming never applies (every site is its own
    /// segment), useful as a baseline in experiments. All sites remain
    /// mutually reachable while up.
    #[must_use]
    pub fn fully_connected(n: usize) -> Self {
        // One segment per site, every site bridging to a hub segment would
        // need a non-failing carrier; instead we model full connectivity
        // as a single segment but report each site as alone on its own
        // segment for vote-claiming purposes. The cleanest encoding is a
        // dedicated flag-free representation: per-site segments plus
        // virtual always-up links. We achieve it with per-site segments
        // and a complete bridge mesh carried by every site: while any two
        // sites are up they can talk directly.
        let segment_members: Vec<SiteSet> =
            (0..n).map(|i| SiteSet::singleton(SiteId::new(i))).collect();
        let segment_names = (0..n).map(|i| format!("p2p{i}")).collect();
        // Every site bridges its own segment to every other segment: the
        // link (i -> seg j) is up while site i is up, which makes any two
        // up sites adjacent.
        let mut bridges = Vec::new();
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    bridges.push(Bridge {
                        gateway: SiteId::new(i),
                        to: SegmentId(j as u16),
                    });
                }
            }
        }
        Network::from_parts(segment_members, segment_names, bridges).expect("mesh is always valid")
    }

    /// All sites known to the network.
    #[inline]
    #[must_use]
    pub fn sites(&self) -> SiteSet {
        self.sites
    }

    /// Number of segments.
    #[inline]
    #[must_use]
    pub fn segment_count(&self) -> usize {
        self.segment_members.len()
    }

    /// The home segment of `site`, or `None` for sites outside the network.
    #[must_use]
    pub fn segment_of(&self, site: SiteId) -> Option<SegmentId> {
        let seg = self.segment_of[site.index()];
        (seg != NO_SEGMENT).then_some(SegmentId(seg))
    }

    /// The member sites of a segment.
    #[must_use]
    pub fn segment_members(&self, segment: SegmentId) -> SiteSet {
        self.segment_members
            .get(segment.index())
            .copied()
            .unwrap_or(SiteSet::EMPTY)
    }

    /// The declared name of a segment.
    #[must_use]
    pub fn segment_name(&self, segment: SegmentId) -> &str {
        &self.segment_names[segment.index()]
    }

    /// Sites sharing `site`'s segment (including `site` itself).
    ///
    /// This is the only topological information a TDV site needs to
    /// store: "a list of sites belonging to the same segment and holding
    /// copies of the same object" (paper, §3).
    #[must_use]
    pub fn co_segment(&self, site: SiteId) -> SiteSet {
        match self.segment_of(site) {
            Some(seg) => self.segment_members(seg),
            None => SiteSet::singleton(site),
        }
    }

    /// `true` when the two sites share a segment.
    #[must_use]
    pub fn same_segment(&self, a: SiteId, b: SiteId) -> bool {
        match (self.segment_of(a), self.segment_of(b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// The declared bridges.
    #[must_use]
    pub fn bridges(&self) -> &[Bridge] {
        &self.bridges
    }

    /// The gateway hosts (sites carrying at least one bridge).
    #[must_use]
    pub fn gateways(&self) -> SiteSet {
        self.bridges.iter().map(|b| b.gateway).collect()
    }

    /// Partitions the currently-up sites into maximal groups of mutually
    /// communicating sites.
    ///
    /// Two up sites communicate iff a path of operational segments exists
    /// between their home segments, where a bridge is operational iff its
    /// gateway host is up. Sites not in `up` (or outside the network)
    /// appear in no group.
    #[must_use]
    pub fn reachability(&self, up: SiteSet) -> Reachability {
        let up = up & self.sites;
        let n_seg = self.segment_members.len();
        // Union-find over segments.
        let mut parent: Vec<u16> = (0..n_seg as u16).collect();
        fn find(parent: &mut [u16], x: u16) -> u16 {
            let mut root = x;
            while parent[root as usize] != root {
                root = parent[root as usize];
            }
            // Path compression.
            let mut cur = x;
            while parent[cur as usize] != root {
                let next = parent[cur as usize];
                parent[cur as usize] = root;
                cur = next;
            }
            root
        }
        for bridge in &self.bridges {
            if up.contains(bridge.gateway) {
                let home = self.segment_of[bridge.gateway.index()];
                let (a, b) = (find(&mut parent, home), find(&mut parent, bridge.to.0));
                if a != b {
                    parent[a as usize] = b;
                }
            }
        }
        // Collect up sites per segment component.
        let mut group_of_root: Vec<Option<usize>> = vec![None; n_seg];
        let mut groups: Vec<SiteSet> = Vec::new();
        for site in up.iter() {
            let seg = self.segment_of[site.index()];
            let root = find(&mut parent, seg) as usize;
            let idx = *group_of_root[root].get_or_insert_with(|| {
                groups.push(SiteSet::EMPTY);
                groups.len() - 1
            });
            groups[idx].insert(site);
        }
        Reachability::new(groups, up)
    }

    /// Enumerates the distinct partitions of `interesting` sites that any
    /// combination of gateway failures can produce, assuming every member
    /// of `interesting` is up.
    ///
    /// Used by the Figure 8 audit: the paper asserts, e.g., that with
    /// copies on sites {1, 6, 8} the only partition points are the two
    /// gateways. Each returned entry is the multiset of groups
    /// (canonically sorted) induced by one subset of failed gateways.
    #[must_use]
    pub fn possible_partitions(&self, interesting: SiteSet) -> Vec<Vec<SiteSet>> {
        let gws: Vec<SiteId> = self.gateways().iter().collect();
        let mut seen: Vec<Vec<SiteSet>> = Vec::new();
        for mask in 0..(1u32 << gws.len()) {
            let mut up = self.sites;
            for (i, gw) in gws.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    up.remove(*gw);
                }
            }
            let groups = self.reachability(up);
            let mut split: Vec<SiteSet> = groups
                .groups()
                .iter()
                .map(|g| *g & interesting)
                .filter(|g| !g.is_empty())
                .collect();
            // Downed gateways that are themselves interesting form
            // singleton "groups" of unreachable copies.
            for (i, gw) in gws.iter().enumerate() {
                if mask & (1 << i) != 0 && interesting.contains(*gw) {
                    split.push(SiteSet::singleton(*gw));
                }
            }
            split.sort_by_key(|g| core::cmp::Reverse((g.len(), u64::MAX - g.bits())));
            if !split.is_empty() && !seen.contains(&split) {
                seen.push(split);
            }
        }
        seen
    }
}

impl core::fmt::Display for Network {
    /// One-line topology summary:
    /// `segments: main{S0, S1}, leaf{S2}; bridges: S1->leaf`.
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "segments: ")?;
        for (i, members) in self.segment_members.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}{}", self.segment_names[i], members)?;
        }
        if !self.bridges.is_empty() {
            write!(f, "; bridges: ")?;
            for (i, bridge) in self.bridges.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(
                    f,
                    "{}->{}",
                    bridge.gateway,
                    self.segment_names[bridge.to.index()]
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NetworkBuilder;

    fn two_segment() -> Network {
        NetworkBuilder::new()
            .segment("alpha", [0, 1, 2])
            .segment("beta", [3, 4])
            .bridge(2, "beta")
            .build()
            .unwrap()
    }

    #[test]
    fn segment_lookup() {
        let net = two_segment();
        assert_eq!(net.segment_count(), 2);
        assert_eq!(net.segment_of(SiteId::new(0)), Some(SegmentId(0)));
        assert_eq!(net.segment_of(SiteId::new(4)), Some(SegmentId(1)));
        assert_eq!(net.segment_of(SiteId::new(9)), None);
        assert_eq!(net.segment_name(SegmentId(1)), "beta");
        assert_eq!(
            net.segment_members(SegmentId(0)),
            SiteSet::from_indices([0, 1, 2])
        );
    }

    #[test]
    fn co_segment_and_same_segment() {
        let net = two_segment();
        assert_eq!(
            net.co_segment(SiteId::new(3)),
            SiteSet::from_indices([3, 4])
        );
        assert!(net.same_segment(SiteId::new(0), SiteId::new(2)));
        assert!(!net.same_segment(SiteId::new(0), SiteId::new(3)));
        assert!(!net.same_segment(SiteId::new(0), SiteId::new(20)));
    }

    #[test]
    fn all_up_is_one_group() {
        let net = two_segment();
        let r = net.reachability(SiteSet::first_n(5));
        assert_eq!(r.groups(), &[SiteSet::first_n(5)]);
    }

    #[test]
    fn gateway_failure_partitions() {
        let net = two_segment();
        // S2 (gateway) down: {S0,S1} and {S3,S4} split.
        let r = net.reachability(SiteSet::from_indices([0, 1, 3, 4]));
        let mut groups = r.groups().to_vec();
        groups.sort_by_key(|g| g.bits());
        assert_eq!(
            groups,
            vec![SiteSet::from_indices([0, 1]), SiteSet::from_indices([3, 4])]
        );
    }

    #[test]
    fn non_gateway_failure_does_not_partition() {
        let net = two_segment();
        let r = net.reachability(SiteSet::from_indices([0, 2, 3, 4]));
        assert_eq!(r.groups(), &[SiteSet::from_indices([0, 2, 3, 4])]);
    }

    #[test]
    fn down_sites_are_in_no_group() {
        let net = two_segment();
        let r = net.reachability(SiteSet::from_indices([0]));
        assert_eq!(r.groups(), &[SiteSet::from_indices([0])]);
        assert!(r.group_of(SiteId::new(1)).is_none());
    }

    #[test]
    fn single_segment_never_partitions() {
        let net = Network::single_segment(5);
        for mask in 0u64..32 {
            let up = SiteSet::from_bits(mask);
            let r = net.reachability(up);
            assert!(
                r.groups().len() <= 1,
                "mask {mask:#b} split: {:?}",
                r.groups()
            );
        }
    }

    #[test]
    fn fully_connected_never_partitions() {
        let net = Network::fully_connected(5);
        for mask in 0u64..32 {
            let up = SiteSet::from_bits(mask);
            let r = net.reachability(up);
            assert!(
                r.groups().len() <= 1,
                "mask {mask:#b} split: {:?}",
                r.groups()
            );
        }
    }

    #[test]
    fn chained_gateways() {
        // alpha -(1)- beta -(3)- gamma: both gateways needed end to end.
        let net = NetworkBuilder::new()
            .segment("alpha", [0, 1])
            .segment("beta", [2, 3])
            .segment("gamma", [4])
            .bridge(1, "beta")
            .bridge(3, "gamma")
            .build()
            .unwrap();
        let all = SiteSet::first_n(5);
        assert_eq!(net.reachability(all).groups().len(), 1);
        // Middle gateway S3 down: gamma detaches.
        let r = net.reachability(all.without(SiteId::new(3)));
        assert_eq!(r.groups().len(), 2);
        // First gateway S1 down: alpha alone, beta+gamma together.
        let r = net.reachability(all.without(SiteId::new(1)));
        let mut groups = r.groups().to_vec();
        groups.sort_by_key(|g| g.bits());
        assert_eq!(
            groups,
            vec![SiteSet::from_indices([0]), SiteSet::from_indices([2, 3, 4])]
        );
    }

    #[test]
    fn gateways_listed() {
        let net = two_segment();
        assert_eq!(net.gateways(), SiteSet::from_indices([2]));
        assert_eq!(net.bridges().len(), 1);
    }

    #[test]
    fn possible_partitions_two_segments() {
        let net = two_segment();
        // Interesting sites on both sides of the single partition point.
        let parts = net.possible_partitions(SiteSet::from_indices([0, 3]));
        // Whole (gateway up) and split (gateway down) are both possible.
        assert!(parts.contains(&vec![SiteSet::from_indices([0, 3])]));
        assert!(parts
            .iter()
            .any(|p| p.len() == 2 && p.contains(&SiteSet::from_indices([0]))));
    }

    #[test]
    fn network_display_summarizes_topology() {
        let net = two_segment();
        let text = net.to_string();
        assert!(text.contains("alpha{S0, S1, S2}"), "{text}");
        assert!(text.contains("beta{S3, S4}"), "{text}");
        assert!(text.contains("S2->beta"), "{text}");
        // No bridges: no bridge section.
        let solo = Network::single_segment(2);
        assert!(!solo.to_string().contains("bridges"), "{}", solo);
    }

    #[test]
    fn errors_display() {
        let e = TopologyError::SelfBridge(SiteId::new(1));
        assert!(e.to_string().contains("its own home segment"));
    }
}
