//! Fluent construction of [`Network`] values.

use dynvote_types::SiteSet;

use crate::network::{Bridge, Network, SegmentId, TopologyError};

/// Builder for [`Network`].
///
/// Declare each segment with its member sites, then declare the bridges
/// carried by gateway hosts. A gateway's *home* segment is the segment it
/// was declared a member of; [`NetworkBuilder::bridge`] attaches it to a
/// foreign segment.
///
/// # Examples
///
/// The paper's Figure 8 network shape (five sites on the main Ethernet,
/// two subordinate segments behind gateway hosts):
///
/// ```
/// use dynvote_topology::NetworkBuilder;
///
/// let net = NetworkBuilder::new()
///     .segment("alpha", [0, 1, 2, 3, 4])
///     .segment("beta", [5])
///     .segment("gamma", [6, 7])
///     .bridge(3, "beta")
///     .bridge(4, "gamma")
///     .build()
///     .unwrap();
/// assert_eq!(net.segment_count(), 3);
/// ```
#[derive(Default)]
pub struct NetworkBuilder {
    segments: Vec<(String, SiteSet)>,
    bridges: Vec<(usize, String)>, // (site index, target segment name)
    error: Option<TopologyError>,
}

impl NetworkBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        NetworkBuilder::default()
    }

    /// Declares a segment with the given member sites (zero-based
    /// indices).
    #[must_use]
    pub fn segment<I: IntoIterator<Item = usize>>(mut self, name: &str, members: I) -> Self {
        if self.segments.iter().any(|(n, _)| n == name) {
            self.error
                .get_or_insert(TopologyError::DuplicateSegmentName(name.to_string()));
            return self;
        }
        self.segments
            .push((name.to_string(), SiteSet::from_indices(members)));
        self
    }

    /// Declares that the (already-declared) site `gateway` bridges its
    /// home segment to segment `to`.
    #[must_use]
    pub fn bridge(mut self, gateway: usize, to: &str) -> Self {
        self.bridges.push((gateway, to.to_string()));
        self
    }

    /// Validates and builds the network.
    ///
    /// # Errors
    ///
    /// Returns a [`TopologyError`] when a site is on two segments, a
    /// bridge references an unknown site or segment, a gateway bridges to
    /// its own segment, or a segment name was reused.
    pub fn build(self) -> Result<Network, TopologyError> {
        if let Some(err) = self.error {
            return Err(err);
        }
        let names: Vec<String> = self.segments.iter().map(|(n, _)| n.clone()).collect();
        let members: Vec<SiteSet> = self.segments.iter().map(|(_, m)| *m).collect();
        let mut bridges = Vec::with_capacity(self.bridges.len());
        for (gateway, to) in &self.bridges {
            let to_idx = names
                .iter()
                .position(|n| n == to)
                .ok_or_else(|| TopologyError::UnknownSegment(to.clone()))?;
            bridges.push(Bridge {
                gateway: dynvote_types::SiteId::new(*gateway),
                to: SegmentId(to_idx as u16),
            });
        }
        Network::from_parts(members, names, bridges)
    }
}

/// Builds a **point-to-point** network: every real site sits alone on
/// its own segment, and each link is represented by a *virtual link
/// site* that bridges its two endpoints — the link is up exactly while
/// its virtual site is up, so the existing site-failure machinery (and
/// any per-site failure model) doubles as a link-failure model.
///
/// This is the "conventional point-to-point network" the paper
/// contrasts segmented LANs with (§3): every partition pattern the link
/// graph allows can occur, and topological vote claiming never applies
/// (no two copies share a segment).
///
/// Returns the network and, for each input link, the [`dynvote_types::SiteId`] of its
/// virtual link site (attach the link's failure model there; give it no
/// copies or votes).
///
/// # Panics
///
/// Panics when a link endpoint is out of range, a link is a self-loop,
/// or `n_sites + links.len()` exceeds the site-set capacity.
///
/// # Examples
///
/// A 3-site ring loses no connectivity from one link failure, and
/// splits only when two links fail:
///
/// ```
/// use dynvote_topology::point_to_point;
/// use dynvote_types::SiteSet;
///
/// let (net, links) = point_to_point(3, &[(0, 1), (1, 2), (2, 0)]);
/// let all_real = SiteSet::first_n(3);
/// let all_links: SiteSet = links.iter().copied().collect();
///
/// // One link down: still one group.
/// let up = all_real | all_links.without(links[0]);
/// assert_eq!(net.reachability(up).groups().len(), 1);
///
/// // Two links down: the ring splits.
/// let up = all_real | SiteSet::from(links[1]);
/// assert_eq!(net.reachability(up).groups().len(), 2);
/// ```
pub fn point_to_point(
    n_sites: usize,
    links: &[(usize, usize)],
) -> (Network, Vec<dynvote_types::SiteId>) {
    let mut builder = NetworkBuilder::new();
    for site in 0..n_sites {
        builder = builder.segment(&format!("p{site}"), [site]);
    }
    let mut link_sites = Vec::with_capacity(links.len());
    for (i, &(a, b)) in links.iter().enumerate() {
        assert!(a < n_sites && b < n_sites, "link endpoint out of range");
        assert_ne!(a, b, "self-loop links are meaningless");
        let virtual_site = n_sites + i;
        // Encode `a ↔ b iff a up ∧ link up ∧ b up` as a two-hop chain
        // of private segments:
        //     p_a -(bridge by a)-> m1 -(bridge by L)-> m2 <-(bridge by b)- p_b
        // Endpoint sites are the gateways *into* the chain, so transit
        // through a down site is impossible (unlike a shared-medium
        // segment, a point-to-point node only relays while it is up),
        // and the virtual site L carries the link's own failure model.
        builder = builder
            .segment(&format!("link{i}a"), [virtual_site])
            .segment(&format!("link{i}b"), std::iter::empty::<usize>())
            .bridge(a, &format!("link{i}a"))
            .bridge(virtual_site, &format!("link{i}b"))
            .bridge(b, &format!("link{i}b"));
        link_sites.push(dynvote_types::SiteId::new(virtual_site));
    }
    let network = builder.build().expect("constructed topology is valid");
    (network, link_sites)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynvote_types::SiteId;

    #[test]
    fn duplicate_site_rejected() {
        let err = NetworkBuilder::new()
            .segment("a", [0, 1])
            .segment("b", [1])
            .build()
            .unwrap_err();
        assert_eq!(err, TopologyError::DuplicateSite(SiteId::new(1)));
    }

    #[test]
    fn duplicate_segment_name_rejected() {
        let err = NetworkBuilder::new()
            .segment("a", [0])
            .segment("a", [1])
            .build()
            .unwrap_err();
        assert_eq!(err, TopologyError::DuplicateSegmentName("a".to_string()));
    }

    #[test]
    fn unknown_segment_rejected() {
        let err = NetworkBuilder::new()
            .segment("a", [0])
            .bridge(0, "nope")
            .build()
            .unwrap_err();
        assert_eq!(err, TopologyError::UnknownSegment("nope".to_string()));
    }

    #[test]
    fn unknown_gateway_rejected() {
        let err = NetworkBuilder::new()
            .segment("a", [0])
            .segment("b", [1])
            .bridge(7, "b")
            .build()
            .unwrap_err();
        assert_eq!(err, TopologyError::UnknownGateway(SiteId::new(7)));
    }

    #[test]
    fn self_bridge_rejected() {
        let err = NetworkBuilder::new()
            .segment("a", [0])
            .segment("b", [1])
            .bridge(0, "a")
            .build()
            .unwrap_err();
        assert_eq!(err, TopologyError::SelfBridge(SiteId::new(0)));
    }

    #[test]
    fn point_to_point_line_partitions_per_link() {
        // 0 - 1 - 2 (a line): losing the left link isolates S0.
        let (net, links) = super::point_to_point(3, &[(0, 1), (1, 2)]);
        let real = SiteSet::first_n(3);
        let all: SiteSet = real | links.iter().copied().collect::<SiteSet>();
        assert_eq!(net.reachability(all).groups().len(), 1);
        let up = all.without(links[0]);
        let r = net.reachability(up);
        let mut groups: Vec<SiteSet> = r
            .groups()
            .iter()
            .map(|g| *g & real)
            .filter(|g| !g.is_empty())
            .collect();
        groups.sort_by_key(|g| g.bits());
        assert_eq!(
            groups,
            vec![SiteSet::from_indices([0]), SiteSet::from_indices([1, 2])]
        );
    }

    #[test]
    fn point_to_point_site_failures_also_partition() {
        // A star: 0 is the hub; losing it isolates every leaf.
        let (net, links) = super::point_to_point(4, &[(0, 1), (0, 2), (0, 3)]);
        let up: SiteSet =
            SiteSet::from_indices([1, 2, 3]) | links.iter().copied().collect::<SiteSet>();
        let r = net.reachability(up);
        assert_eq!(r.groups().len(), 3, "leaves are mutually isolated");
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn point_to_point_rejects_self_loops() {
        let _ = super::point_to_point(2, &[(1, 1)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn point_to_point_rejects_bad_endpoints() {
        let _ = super::point_to_point(2, &[(0, 5)]);
    }

    #[test]
    fn valid_build_round_trips() {
        let net = NetworkBuilder::new()
            .segment("main", [0, 1, 2])
            .segment("leaf", [3])
            .bridge(2, "leaf")
            .build()
            .unwrap();
        assert_eq!(net.sites(), SiteSet::first_n(4));
        assert_eq!(
            net.segment_name(net.segment_of(SiteId::new(3)).unwrap()),
            "leaf"
        );
    }
}
