//! Canonical enumeration of segment-granularity network partitions.
//!
//! Segments are non-partitionable (Section 3): any partition the network
//! can be driven into splits along segment boundaries, never through a
//! segment. The adversarial partitions a model checker needs to explore
//! are therefore exactly the *set partitions of the segment set* — each
//! block of segments becomes one group of mutually-communicating sites.
//!
//! The enumeration is canonical: partitions are generated from restricted
//! growth strings in lexicographic order, so the list is identical on
//! every run (the checker's event alphabet and trace files index into
//! it), and the first entry is always the trivial one-block partition
//! (everything connected).

use dynvote_types::SiteSet;

use crate::network::{Network, SegmentId};

impl Network {
    /// All set partitions of this network's segments, as site groups.
    ///
    /// Entry `0` is always the trivial partition (one block containing
    /// every segment). Each subsequent entry splits the segments into
    /// two or more blocks; within a partition the blocks are disjoint
    /// and their union is [`Network::sites`]. No block ever splits a
    /// segment, so every entry is a *sound* adversarial partition for
    /// the topological protocols (vote claiming stays within segments).
    ///
    /// The count is the Bell number of the segment count (1 segment →
    /// 1 partition, 2 → 2, 3 → 5, 4 → 15, …); callers bound the segment
    /// count, not this method.
    #[must_use]
    pub fn segment_partitions(&self) -> Vec<Vec<SiteSet>> {
        let k = self.segment_count();
        let mut out = Vec::new();
        // Restricted growth strings: a[0] = 0, a[i] <= max(a[..i]) + 1.
        // Lexicographic generation by recursion keeps the order stable.
        let mut assignment = vec![0usize; k];
        self.enumerate_rgs(1, 0, &mut assignment, &mut out);
        out
    }

    fn enumerate_rgs(
        &self,
        position: usize,
        max_used: usize,
        assignment: &mut Vec<usize>,
        out: &mut Vec<Vec<SiteSet>>,
    ) {
        let k = self.segment_count();
        if position == k {
            let blocks = max_used + 1;
            let mut groups = vec![SiteSet::EMPTY; blocks];
            for (segment, &block) in assignment.iter().enumerate() {
                groups[block] |= self.segment_members(SegmentId(segment as u16));
            }
            out.push(groups);
            return;
        }
        for block in 0..=max_used + 1 {
            assignment[position] = block;
            self.enumerate_rgs(position + 1, max_used.max(block), assignment, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::NetworkBuilder;
    use dynvote_types::SiteSet;

    use super::*;

    fn three_segments() -> Network {
        NetworkBuilder::new()
            .segment("a", [0, 1])
            .segment("b", [2, 3])
            .segment("c", [4])
            .bridge(1, "b")
            .bridge(3, "c")
            .build()
            .unwrap()
    }

    #[test]
    fn bell_numbers() {
        assert_eq!(Network::single_segment(4).segment_partitions().len(), 1);
        let two = NetworkBuilder::new()
            .segment("a", [0, 1])
            .segment("b", [2, 3])
            .bridge(1, "b")
            .build()
            .unwrap();
        assert_eq!(two.segment_partitions().len(), 2);
        assert_eq!(three_segments().segment_partitions().len(), 5);
    }

    #[test]
    fn first_entry_is_trivial() {
        let net = three_segments();
        let partitions = net.segment_partitions();
        assert_eq!(partitions[0], vec![net.sites()]);
    }

    #[test]
    fn blocks_are_disjoint_cover_everything_and_respect_segments() {
        let net = three_segments();
        for partition in net.segment_partitions() {
            let mut seen = SiteSet::EMPTY;
            for block in &partition {
                assert!(seen.is_disjoint(*block), "blocks overlap");
                seen |= *block;
            }
            assert_eq!(seen, net.sites(), "blocks must cover all sites");
            // No block splits a segment: each segment's members land in
            // exactly one block.
            for segment in 0..net.segment_count() {
                let members = net.segment_members(SegmentId(segment as u16));
                let holding: Vec<_> = partition
                    .iter()
                    .filter(|b| !(**b & members).is_empty())
                    .collect();
                assert_eq!(holding.len(), 1, "segment split across blocks");
                assert!(members.is_subset_of(*holding[0]));
            }
        }
    }

    #[test]
    fn enumeration_is_stable() {
        let net = three_segments();
        assert_eq!(net.segment_partitions(), net.segment_partitions());
    }
}
