//! Batched-commit equivalence: `Cluster::write_batch` must be
//! observationally identical to the serial writes it amortizes.
//!
//! Four angles:
//!
//! * **serial equivalence** — a fault-free K-batch leaves every site
//!   with the same final `⟨o, v, P⟩`, the same committed-op history,
//!   the same checker digest, and the same readable value as K
//!   back-to-back `write` calls;
//! * **commit-point ordering** — a recording transport wrapped around
//!   the nemesis bus proves the batch's single commit point (where a
//!   durable transport fsyncs its ledger record) fires strictly
//!   *before* any `COMMIT` frame leaves the coordinator, and carries
//!   the batch's final state;
//! * **all-or-nothing** — one poll and one commit fanout carry the
//!   whole batch, so a partial commit refuses every write in it as
//!   `Indeterminate`, never some prefix;
//! * **fault adversity** — under injected drop/dup message faults the
//!   batch path keeps every checker invariant the serial path keeps.

use std::sync::{Arc, Mutex};

use dynvote_core::state::ReplicaState;
use dynvote_replica::{
    BusTransport, Carried, Cluster, ClusterBuilder, FaultAction, FaultRule, LocalServe,
    MessageClass, MessageKind, Protocol, Transport, WireRequest,
};
use dynvote_types::{AccessError, SiteId, SiteSet};

fn cluster(protocol: Protocol) -> Cluster<u64> {
    ClusterBuilder::new()
        .copies([0, 1, 2])
        .protocol(protocol)
        .build_with_value(0)
}

fn origin() -> SiteId {
    SiteId::new(0)
}

/// A fault-free batch and the serial writes it stands in for cannot be
/// told apart by any observer: state, history, checker, or a reader.
#[test]
fn a_k_batch_is_indistinguishable_from_k_serial_writes() {
    for protocol in [Protocol::Odv, Protocol::Ldv, Protocol::Dv, Protocol::Mcv] {
        let mut batched = cluster(protocol);
        let mut serial = cluster(protocol);

        let values: Vec<u64> = (1..=5).collect();
        let results = batched.write_batch(origin(), values.clone());
        assert_eq!(results.len(), values.len());
        for result in &results {
            result.as_ref().expect("fault-free batch write granted");
        }
        for value in values {
            serial.write(origin(), value).expect("serial write granted");
        }

        assert_eq!(
            batched.history(),
            serial.history(),
            "{protocol:?}: per-write history entries diverged"
        );
        for site in 0..3 {
            assert_eq!(
                batched.state_at(SiteId::new(site)),
                serial.state_at(SiteId::new(site)),
                "{protocol:?}: S{site} final ⟨o, v, P⟩ diverged"
            );
        }
        assert_eq!(
            batched.checker().digest(),
            serial.checker().digest(),
            "{protocol:?}: checker observations diverged"
        );
        assert_eq!(
            batched.read(SiteId::new(2)).expect("read granted"),
            serial.read(SiteId::new(2)).expect("read granted"),
            "{protocol:?}: a reader can tell the batch from the serial run"
        );
        assert!(batched.checker().violations().is_empty());
    }
}

/// What the recording transport saw, in order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Event {
    /// `commit_point` — the durable-ledger hook.
    Point { op: u64, version: u64 },
    /// A `COMMIT` frame handed to the wire.
    CommitSent { op: u64, to: SiteId },
}

/// Wraps the nemesis bus and journals the transport-level events the
/// WAL/ledger safety argument is about.
struct RecordingTransport {
    inner: BusTransport,
    events: Arc<Mutex<Vec<Event>>>,
}

impl<T> Transport<T> for RecordingTransport {
    fn carry(&mut self, request: WireRequest<'_, T>, serve: LocalServe<'_, T>) -> Carried<T> {
        if let MessageKind::Commit { op, .. } = request.message.kind {
            self.events
                .lock()
                .expect("journal poisoned")
                .push(Event::CommitSent {
                    op,
                    to: request.message.to,
                });
        }
        self.inner.carry(request, serve)
    }

    fn commit_point(&mut self, ticket: u64, state: ReplicaState, value: Option<&T>) {
        self.events
            .lock()
            .expect("journal poisoned")
            .push(Event::Point {
                op: state.op,
                version: state.version,
            });
        Transport::<T>::commit_point(&mut self.inner, ticket, state, value);
    }

    fn release(&mut self, ticket: u64, keep: SiteSet) {
        Transport::<T>::release(&mut self.inner, ticket, keep);
    }
}

/// The ledger hook fires exactly once per batch, carries the batch's
/// *final* state, and strictly precedes every `COMMIT` frame — the
/// ordering that lets a crashed coordinator's successor answer vote
/// probes instead of forking the lineage (DESIGN §10–11).
#[test]
fn the_commit_point_precedes_the_commit_fanout_and_covers_the_batch() {
    let events = Arc::new(Mutex::new(Vec::new()));
    let transport = RecordingTransport {
        inner: BusTransport::new(),
        events: Arc::clone(&events),
    };
    let mut cluster = ClusterBuilder::new()
        .copies([0, 1, 2])
        .protocol(Protocol::Odv)
        .build_with_transport(transport, 0u64);

    let results = cluster.write_batch(origin(), vec![7, 8, 9]);
    assert!(results.iter().all(Result::is_ok), "{results:?}");
    let last = *cluster
        .history()
        .last()
        .expect("a granted batch records history");

    let events = events.lock().expect("journal poisoned");
    let points: Vec<(usize, Event)> = events
        .iter()
        .enumerate()
        .filter(|(_, e)| matches!(e, Event::Point { .. }))
        .map(|(i, e)| (i, *e))
        .collect();
    assert_eq!(
        points.len(),
        1,
        "one decision covers the whole batch: {events:?}"
    );
    let (point_at, point) = points[0];
    assert_eq!(
        point,
        Event::Point {
            op: last.op,
            version: last.version
        },
        "the ledger record must name the batch's final state"
    );
    let fanout: Vec<usize> = events
        .iter()
        .enumerate()
        .filter(|(_, e)| matches!(e, Event::CommitSent { .. }))
        .map(|(i, _)| i)
        .collect();
    assert_eq!(
        fanout.len(),
        2,
        "one COMMIT per non-coordinator: {events:?}"
    );
    assert!(
        fanout.iter().all(|&i| point_at < i),
        "a COMMIT left before the commit point was durable: {events:?}"
    );
    for event in events.iter() {
        if let Event::CommitSent { op, .. } = event {
            assert_eq!(*op, last.op, "every COMMIT carries the final op");
        }
    }
}

/// One fanout carries the whole batch, so a partial commit (both
/// peers' COMMITs swallowed past the retry budget) is `Indeterminate`
/// for *every* write in it — no prefix is reported granted.
#[test]
fn a_partial_batch_commit_refuses_every_write_as_indeterminate() {
    let mut cluster = cluster(Protocol::Odv);
    for peer in [1, 2] {
        cluster.inject_fault(
            FaultRule::once(MessageClass::Commit, SiteId::new(peer), FaultAction::Drop).times(16),
        );
    }
    let results = cluster.write_batch(origin(), vec![1, 2, 3]);
    assert_eq!(results.len(), 3);
    for result in results {
        assert!(
            matches!(result, Err(AccessError::Indeterminate { .. })),
            "a partial batch must be indeterminate for every write, got {result:?}"
        );
    }
    assert!(
        cluster.checker().violations().is_empty(),
        "{:?}",
        cluster.checker().violations()
    );
}

/// Under drop/dup message faults the batch path keeps the checker
/// invariants, decides each batch once (all grants or all refusals),
/// and keeps serving once the fault budgets are spent.
#[test]
fn batches_keep_invariants_under_drop_and_dup_faults() {
    let mut cluster = ClusterBuilder::new()
        .copies([0, 1, 2, 3, 4])
        .protocol(Protocol::Odv)
        .build_with_value(0u64);

    cluster.inject_fault(FaultRule {
        class: Some(MessageClass::State),
        from: Some(SiteId::new(1)),
        to: Some(origin()),
        action: FaultAction::Drop,
        remaining: 4,
    });
    cluster.inject_fault(
        FaultRule::once(MessageClass::Commit, SiteId::new(2), FaultAction::Duplicate).times(3),
    );
    cluster.inject_fault(
        FaultRule::once(MessageClass::Commit, SiteId::new(3), FaultAction::Drop).times(2),
    );
    cluster.inject_fault(
        FaultRule::once(MessageClass::Start, SiteId::new(4), FaultAction::Drop).times(2),
    );

    let mut granted = 0usize;
    for round in 0u64..6 {
        let values = vec![round * 10 + 1, round * 10 + 2, round * 10 + 3];
        let results = cluster.write_batch(origin(), values);
        let oks = results.iter().filter(|r| r.is_ok()).count();
        assert!(
            oks == 0 || oks == results.len(),
            "round {round}: a batch decides once — all grants or all \
             refusals, got {oks}/{}",
            results.len()
        );
        granted += oks;
        assert!(
            cluster.checker().violations().is_empty(),
            "round {round}: {:?}",
            cluster.checker().violations()
        );
    }
    assert!(
        granted > 0,
        "the fault budgets exhaust; some batches must land"
    );

    // Faults spent: the next batch lands everywhere a reader looks.
    let results = cluster.write_batch(origin(), vec![1000, 1001]);
    assert!(results.iter().all(Result::is_ok), "{results:?}");
    let reader = cluster
        .history()
        .last()
        .expect("granted batch recorded")
        .participants
        .max()
        .expect("non-empty participant set");
    assert_eq!(cluster.read(reader).expect("read granted"), 1001);
    assert!(cluster.checker().violations().is_empty());
}
