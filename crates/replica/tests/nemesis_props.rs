//! Seeded nemesis property tests: the non-topological protocols keep
//! their invariants under full message-fault adversity; the topological
//! ones demonstrably do not.
//!
//! Every campaign is generated from a seed drawn by the proptest
//! strategy, so a failing case prints everything needed to replay it
//! (`run_nemesis` consumes a `SimRng::new(seed)` and nothing else).
//! The case budget honours the `PROPTEST_CASES` environment variable
//! (default 256), which CI pins explicitly.

use dynvote_replica::nemesis::{run_nemesis, NemesisProfile};
use dynvote_replica::{Cluster, ClusterBuilder, Protocol, Violation};
use dynvote_sim::SimRng;
use proptest::prelude::*;

fn cluster(protocol: Protocol) -> Cluster<u64> {
    ClusterBuilder::new()
        .copies([0, 1, 2, 3, 4])
        .protocol(protocol)
        .build_with_value(1)
}

/// One campaign at `seed`; returns the violations it produced.
fn campaign(protocol: Protocol, seed: u64) -> Vec<dynvote_replica::Violation> {
    let mut c = cluster(protocol);
    run_nemesis(&mut c, &mut SimRng::new(seed), &NemesisProfile::default());
    c.checker().violations().to_vec()
}

proptest! {
    /// MCV, DV, LDV and ODV never emit a stale read, duplicate version
    /// or lineage fork, no matter what the nemesis does: partial
    /// commits wedge their silent voters instead of forking history.
    #[test]
    fn prop_sound_protocols_survive_nemesis(seed in any::<u64>()) {
        for protocol in [Protocol::Mcv, Protocol::Dv, Protocol::Ldv, Protocol::Odv] {
            let violations = campaign(protocol, seed);
            prop_assert!(
                violations.is_empty(),
                "{protocol:?} violated invariants at seed {seed}: {violations:?}"
            );
        }
    }
}

/// The paper's warning about the topological variants, demonstrated:
/// under a nemesis campaign TDV and OTDV fork history — disjoint
/// participant sets commit the same operation number — because
/// co-segment claims count votes of sites whose state was never
/// observed. The seed is pinned so the failure is a regression anchor,
/// not a flake: the same campaign that the sound protocols survive
/// (seed 0 is in `prop_sound_protocols_survive_nemesis`'s universe)
/// breaks both topological rules.
#[test]
fn topological_protocols_fork_lineage_under_nemesis() {
    for protocol in [Protocol::Tdv, Protocol::Otdv] {
        let violations = campaign(protocol, 0);
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, Violation::LineageFork { .. })),
            "{protocol:?} at seed 0 should fork lineage, got: {violations:?}"
        );
    }
}

/// Violation histories replay exactly from the seed — the property
/// tests' failure reports are actionable.
#[test]
fn topological_violations_replay_from_seed() {
    assert_eq!(campaign(Protocol::Tdv, 0), campaign(Protocol::Tdv, 0));
}

/// Scans for topological-violation seeds. Not part of the suite; run
/// with `--ignored --nocapture` when the pinned regression seed needs
/// refreshing.
#[test]
#[ignore]
fn scan_topological_violation_seeds() {
    for protocol in [Protocol::Tdv, Protocol::Otdv] {
        for seed in 0..5000u64 {
            let violations = campaign(protocol, seed);
            if !violations.is_empty() {
                eprintln!("{protocol:?}: seed {seed} -> {violations:?}");
                break;
            }
        }
    }
}
