//! Crash-restart equivalence for the durability layer.
//!
//! The property the WAL exists to provide: mirroring every committed
//! operation, outstanding vote, and release through a [`SiteStore`]
//! (exactly the diff-and-log discipline the daemon applies before each
//! acknowledgement), then killing the whole cluster after an fsync and
//! rebuilding it from disk, yields per-site ⟨o, v, P⟩ + data + pending
//! **byte-identical** to the cluster that never crashed — at the crash
//! point and after both continue with the same subsequent operations.
//!
//! Campaigns are seed-driven (the seed is the whole test case, as in
//! `nemesis_props.rs`), so a failure replays exactly. The case budget
//! honours `PROPTEST_CASES` (default 256), which CI pins.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use dynvote_replica::wal::{inject_flip_byte, SiteStore, WalRecord, SNAPSHOT_FILE, WAL_FILE};
use dynvote_replica::{Cluster, ClusterBuilder, Protocol};
use dynvote_sim::SimRng;
use dynvote_types::SiteId;
use proptest::prelude::*;

const SITES: [usize; 3] = [0, 1, 2];

fn scratch_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "dynvote-wal-props-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

fn cluster(protocol: Protocol) -> Cluster<Vec<u8>> {
    ClusterBuilder::new()
        .copies(SITES)
        .protocol(protocol)
        .build_with_value(b"v0".to_vec())
}

/// The daemon's durability discipline, in miniature: diff the site's
/// protocol-visible state against the store image and append whatever
/// records close the gap.
fn mirror(cluster: &Cluster<Vec<u8>>, site: SiteId, store: &mut SiteStore) {
    let state = cluster.state_at(site);
    let pending = cluster.pending_at(site);
    let value = cluster
        .copies()
        .contains(site)
        .then(|| cluster.value_at(site));
    if store.image().state != state || store.image().value != value {
        let value_changed = store.image().value != value;
        store
            .log(WalRecord::Commit {
                state,
                value: if value_changed { value } else { None },
            })
            .expect("scratch-dir WAL append");
    }
    if store.image().pending != pending {
        let record = match pending {
            Some(ticket) => WalRecord::Vote { ticket },
            None => WalRecord::Release {
                ticket: store.image().pending.unwrap_or(0),
            },
        };
        store.log(record).expect("scratch-dir WAL append");
    }
}

/// One random protocol event, applied identically to both clusters.
fn random_event(
    rng: &mut SimRng,
    reference: &mut Cluster<Vec<u8>>,
    mirrored: &mut Cluster<Vec<u8>>,
) {
    let site = SiteId::new(SITES[rng.below(SITES.len())]);
    match rng.below(10) {
        0 => {
            reference.fail_site(site);
            mirrored.fail_site(site);
        }
        1 => {
            reference.repair_site(site);
            mirrored.repair_site(site);
        }
        2 => {
            let _ = reference.recover(site);
            let _ = mirrored.recover(site);
        }
        3 | 4 => {
            let _ = reference.read(site);
            let _ = mirrored.read(site);
        }
        n => {
            let value = format!("w{n}-{}", rng.below(1 << 16)).into_bytes();
            let _ = reference.write(site, value.clone());
            let _ = mirrored.write(site, value);
        }
    }
}

fn assert_sites_identical(a: &Cluster<Vec<u8>>, b: &Cluster<Vec<u8>>, context: &str) {
    for site in SITES.map(SiteId::new) {
        assert_eq!(
            a.state_at(site),
            b.state_at(site),
            "state at S{site:?} {context}"
        );
        assert_eq!(
            a.value_at(site),
            b.value_at(site),
            "value at S{site:?} {context}"
        );
        assert_eq!(
            a.pending_at(site),
            b.pending_at(site),
            "pending at S{site:?} {context}"
        );
    }
}

/// One campaign: run `total` random events against a reference cluster
/// and a mirrored twin; crash the twin after `crash_after` events
/// (drop it and its stores), rebuild from disk, compare; then finish
/// the remaining events on both and compare again.
fn crash_restart_campaign(protocol: Protocol, seed: u64) {
    let mut rng = SimRng::new(seed);
    let total = 12 + rng.below(20);
    let crash_after = rng.below(total);
    let snapshot_every = [0u64, 1, 4][rng.below(3)];

    let dirs: Vec<PathBuf> = SITES
        .iter()
        .map(|s| scratch_dir(&format!("{seed}-s{s}")))
        .collect();
    let mut reference = cluster(protocol);
    let mut mirrored = cluster(protocol);
    let mut stores: Vec<SiteStore> = dirs
        .iter()
        .enumerate()
        .map(|(index, dir)| {
            let (mut store, restored) = SiteStore::open(dir, snapshot_every).unwrap();
            assert!(restored.image.is_none(), "fresh scratch dir");
            let site = SiteId::new(SITES[index]);
            store
                .seed(
                    mirrored.state_at(site),
                    mirrored.pending_at(site),
                    Some(mirrored.value_at(site)),
                )
                .unwrap();
            store
        })
        .collect();

    for step in 0..total {
        random_event(&mut rng, &mut reference, &mut mirrored);
        for (index, store) in stores.iter_mut().enumerate() {
            mirror(&mirrored, SiteId::new(SITES[index]), store);
        }
        if step == crash_after {
            // kill -9 the whole mirrored deployment: drop the cluster
            // and every store, then come back from disk alone.
            let up_before = mirrored.up_sites();
            drop(stores);
            drop(mirrored);
            mirrored = cluster(protocol);
            stores = dirs
                .iter()
                .enumerate()
                .map(|(index, dir)| {
                    let (store, restored) = SiteStore::open(dir, snapshot_every).unwrap();
                    let image = restored.image.expect("seeded store restores");
                    mirrored.install_durable_state(
                        SiteId::new(SITES[index]),
                        image.state,
                        image.value.clone(),
                        image.pending,
                    );
                    store
                })
                .collect();
            // Ticket issuance must stay monotone across the restart —
            // the daemon salts with the persisted boot epoch; here the
            // reference's counter is the exact equivalent (both
            // clusters issued identical tickets pre-crash).
            mirrored.advance_ticket_past(reference.last_ticket());
            // Liveness (up/down) is process state, not durable state;
            // carry it over so both clusters keep the same topology.
            for site in SITES.map(SiteId::new) {
                if !up_before.contains(site) {
                    mirrored.fail_site(site);
                }
            }
            assert_sites_identical(&reference, &mirrored, "right after restart");
        }
    }
    assert_sites_identical(&reference, &mirrored, "after the post-restart tail");
    assert!(
        reference.checker().violations().is_empty(),
        "reference cluster must stay clean at seed {seed}"
    );
    for dir in dirs {
        std::fs::remove_dir_all(dir).ok();
    }
}

/// One combined-corruption campaign: drive a single site's store
/// through a random committed history with rotation traffic, then hit
/// the data directory with *both* injuries at once — a torn WAL tail
/// (garbage appended past the last fsync'd record, the crash-mid-append
/// shape) **and** a corrupt current snapshot — and require the reopened
/// store to rebuild the exact acknowledged image by falling back to the
/// previous-generation snapshot plus both logs.
fn combined_corruption_campaign(seed: u64) {
    let mut rng = SimRng::new(seed);
    let dir = scratch_dir(&format!("combined-{seed}"));
    // snapshot_every in 1..=4 guarantees at least one rotation, so a
    // previous generation exists to fall back to.
    let snapshot_every = 1 + rng.below(4) as u64;
    let total = 4 + rng.below(24);
    let final_image = {
        let (mut store, restored) = SiteStore::open(&dir, snapshot_every).unwrap();
        assert!(restored.image.is_none(), "fresh scratch dir");
        let boot = dynvote_core::state::ReplicaState {
            op: 1,
            version: 1,
            partition: dynvote_types::SiteSet::from_indices(SITES),
        };
        store.seed(boot, None, Some(b"v0".to_vec())).unwrap();
        for step in 0..total {
            let state = dynvote_core::state::ReplicaState {
                op: 2 + step as u64,
                version: 2 + step as u64,
                partition: boot.partition,
            };
            let record = match rng.below(8) {
                0 => WalRecord::Vote {
                    ticket: 100 + step as u64,
                },
                1 => WalRecord::Release {
                    ticket: 100 + step as u64,
                },
                _ => WalRecord::Commit {
                    state,
                    value: rng
                        .bernoulli(0.7)
                        .then(|| format!("w{step}-{}", rng.below(1 << 16)).into_bytes()),
                },
            };
            store.log(record).unwrap();
        }
        store.image().clone()
    };
    // Both injuries in the same data dir.
    let garbage_len = 1 + rng.below(48);
    let mut wal = std::fs::OpenOptions::new()
        .append(true)
        .open(dir.join(WAL_FILE))
        .unwrap();
    use std::io::Write as _;
    let garbage: Vec<u8> = (0..garbage_len).map(|i| (i as u8) ^ 0xA5).collect();
    wal.write_all(&garbage).unwrap();
    drop(wal);
    let snapshot_len = std::fs::metadata(dir.join(SNAPSHOT_FILE)).unwrap().len();
    let offset = rng.below(snapshot_len as usize) as u64;
    inject_flip_byte(&dir.join(SNAPSHOT_FILE), offset).unwrap();

    let (store, restored) = SiteStore::open(&dir, snapshot_every).unwrap();
    assert!(
        restored.snapshot_was_corrupt,
        "seed {seed}: flipped byte at {offset} must invalidate the snapshot"
    );
    assert!(
        restored.used_previous_snapshot,
        "seed {seed}: recovery must fall back to the previous generation"
    );
    assert_eq!(
        restored.image.as_ref(),
        Some(&final_image),
        "seed {seed}: every acknowledged record must survive both injuries"
    );
    assert_eq!(store.image(), &final_image);
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    /// Kill-after-fsync + restart is invisible: the restored cluster is
    /// byte-identical to the never-crashed one, immediately and after
    /// more operations — across snapshot cadences (including none).
    #[test]
    fn wal_crash_restart_equivalence(seed in any::<u64>()) {
        for protocol in [Protocol::Odv, Protocol::Ldv] {
            crash_restart_campaign(protocol, seed);
        }
    }

    /// Torn WAL tail *plus* corrupt snapshot in the same data dir still
    /// restores every acknowledged record, via the previous-generation
    /// snapshot and the parked log.
    #[test]
    fn wal_combined_corruption_falls_back_to_previous_generation(seed in any::<u64>()) {
        combined_corruption_campaign(seed);
    }
}

/// Deterministic anchor for the combined-corruption property.
#[test]
fn wal_combined_corruption_pinned_seed() {
    combined_corruption_campaign(7);
    combined_corruption_campaign(42);
}

/// The deterministic anchor for the same property (seed pinned, so a
/// regression here is a bisection point, not a flake).
#[test]
fn wal_crash_restart_equivalence_pinned_seed() {
    crash_restart_campaign(Protocol::Odv, 7);
    crash_restart_campaign(Protocol::Mcv, 7);
}
