//! Deterministic partial-commit regressions: a `COMMIT` that reaches
//! some participants but not others leaves genuinely divergent
//! per-site `(o, v, P)` state, the caller learns exactly which sites
//! diverged, the cluster keeps making progress (or refuses with a
//! typed error), and RECOVER reconciles the stragglers.
//!
//! Runs against every protocol. The non-topological four must stay
//! violation-free throughout; the topological variants get the same
//! liveness guarantees but no consistency promise (see
//! `nemesis_props.rs` for their pinned failure).

use dynvote_replica::{Cluster, ClusterBuilder, Protocol};
use dynvote_replica::{FaultAction, FaultRule, MessageClass};
use dynvote_types::{AccessError, SiteId, SiteSet};

const SOUND: [Protocol; 4] = [Protocol::Mcv, Protocol::Dv, Protocol::Ldv, Protocol::Odv];

fn cluster(protocol: Protocol) -> Cluster<u64> {
    ClusterBuilder::new()
        .copies([0, 1, 2])
        .protocol(protocol)
        .build_with_value(1)
}

fn s(i: usize) -> SiteId {
    SiteId::new(i)
}

/// Losing every resend of S2's COMMIT (the retry budget is 3) makes
/// the write indeterminate, names the divergent site, and leaves S2's
/// control state observably behind — until RECOVER repairs it.
#[test]
fn dropped_commit_diverges_and_recover_reconciles() {
    for protocol in Protocol::ALL {
        let mut c = cluster(protocol);
        c.inject_fault(FaultRule::once(MessageClass::Commit, s(2), FaultAction::Drop).times(3));

        let err = c.write(s(0), 2).unwrap_err();
        match err {
            AccessError::Indeterminate {
                applied, missing, ..
            } => {
                assert_eq!(applied, SiteSet::from_indices([0, 1]), "{protocol:?}");
                assert_eq!(missing, SiteSet::from_indices([2]), "{protocol:?}");
            }
            other => panic!("{protocol:?}: expected Indeterminate, got {other}"),
        }

        // The divergence is real and observable: S2 never saw version 2.
        assert_eq!(c.state_at(s(0)).version, 2, "{protocol:?}");
        assert_eq!(c.state_at(s(2)).version, 1, "{protocol:?}");

        // The majority that did commit keeps serving the new value.
        assert_eq!(c.read(s(0)).unwrap(), 2, "{protocol:?}");

        // RECOVER reconciles the straggler; afterwards it serves v2.
        c.recover(s(2))
            .unwrap_or_else(|e| panic!("{protocol:?}: recover refused: {e}"));
        assert_eq!(c.read(s(2)).unwrap(), 2, "{protocol:?}");
        if protocol != Protocol::Mcv {
            // Dynamic protocols reinstall full control state; MCV only
            // promises the *read* is current (version numbers, not
            // partition sets, carry its consistency).
            assert_eq!(c.state_at(s(2)), c.state_at(s(0)), "{protocol:?}");
        }

        if SOUND.contains(&protocol) {
            assert!(
                c.checker().violations().is_empty(),
                "{protocol:?}: {:?}",
                c.checker().violations()
            );
        }
    }
}

/// The coordinator dies mid-fanout, right after S1's COMMIT is
/// delivered: S1 has the new state, S2 never hears, and the caller is
/// told the outcome is indeterminate. Survivors never panic or hang —
/// every follow-up is a grant or a typed refusal — and repairing the
/// coordinator plus recovering both stragglers restores one history.
#[test]
fn coordinator_crash_mid_fanout_is_indeterminate_then_recoverable() {
    for protocol in Protocol::ALL {
        let mut c = cluster(protocol);
        c.inject_fault(FaultRule::once(
            MessageClass::Commit,
            s(1),
            FaultAction::CrashSender,
        ));

        let err = c.write(s(0), 2).unwrap_err();
        assert!(
            matches!(err, AccessError::Indeterminate { .. }),
            "{protocol:?}: got {err}"
        );
        assert!(
            !c.up_sites().contains(s(0)),
            "{protocol:?}: the coordinator crashed mid-fanout"
        );
        assert_eq!(c.state_at(s(1)).version, 2, "{protocol:?}");
        assert_eq!(c.state_at(s(2)).version, 1, "{protocol:?}");

        // A survivor's next operation is bounded: grant or typed
        // refusal, never a hang (S2 may be wedged on the broken write).
        if let Err(e) = c.read(s(1)) {
            assert!(e.kind().is_some(), "{protocol:?}: untyped refusal {e}");
        }

        c.repair_site(s(0));
        c.recover(s(0))
            .unwrap_or_else(|e| panic!("{protocol:?}: recover S0: {e}"));
        c.recover(s(2))
            .unwrap_or_else(|e| panic!("{protocol:?}: recover S2: {e}"));
        assert_eq!(c.read(s(1)).unwrap(), 2, "{protocol:?}");
        assert_eq!(c.read(s(2)).unwrap(), 2, "{protocol:?}");

        if SOUND.contains(&protocol) {
            assert!(
                c.checker().violations().is_empty(),
                "{protocol:?}: {:?}",
                c.checker().violations()
            );
        }
    }
}

/// A crash-on-receipt of the COMMIT is the sharpest partial-commit
/// hazard: the recipient goes down *with the old state*, the rest of
/// the quorum moves on, and the crashed site must later rejoin a
/// partition that shrank without it.
#[test]
fn crash_on_commit_receipt_excludes_then_readmits_the_victim() {
    for protocol in Protocol::ALL {
        let mut c = cluster(protocol);
        c.inject_fault(FaultRule::once(
            MessageClass::Commit,
            s(2),
            FaultAction::CrashRecipient,
        ));

        let err = c.write(s(0), 2).unwrap_err();
        assert!(
            matches!(err, AccessError::Indeterminate { .. }),
            "{protocol:?}: got {err}"
        );
        assert!(!c.up_sites().contains(s(2)), "{protocol:?}");
        assert_eq!(c.state_at(s(2)).version, 1, "{protocol:?}");

        // The two-site majority continues without the victim...
        assert_eq!(c.read(s(0)).unwrap(), 2, "{protocol:?}");
        c.write(s(1), 3)
            .unwrap_or_else(|e| panic!("{protocol:?}: write: {e}"));

        // ...and the victim rejoins through the standard repair path.
        c.repair_site(s(2));
        c.recover(s(2))
            .unwrap_or_else(|e| panic!("{protocol:?}: recover: {e}"));
        assert_eq!(c.read(s(2)).unwrap(), 3, "{protocol:?}");

        if SOUND.contains(&protocol) {
            assert!(
                c.checker().violations().is_empty(),
                "{protocol:?}: {:?}",
                c.checker().violations()
            );
        }
    }
}
