//! The always-on invariant monitor.

use std::collections::HashMap;

use dynvote_types::SiteSet;

/// A detected violation of the replicated file's correctness guarantees.
///
/// With MCV, DV, LDV and ODV no violation is ever recorded — the
/// property tests hammer the cluster with random fault/operation
/// schedules to back that claim. The topological variants can violate
/// these invariants through the sequential-claim hazard (see DESIGN.md),
/// and the checker is how the test suite *demonstrates* that finding at
/// message level.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// A granted read served a version older than the latest successful
    /// write — the one-copy guarantee failed.
    StaleRead {
        /// The version the read served.
        served: u64,
        /// The version of the latest successful write.
        latest: u64,
    },
    /// Two successful writes committed the same version number — two
    /// rival majority partitions have both accepted writes.
    DuplicateVersion {
        /// The reused version number.
        version: u64,
    },
    /// Two successful operations committed the same operation number
    /// with different partition sets — the lineage forked.
    LineageFork {
        /// The reused operation number.
        op: u64,
        /// Participants of the first commit.
        first: SiteSet,
        /// Participants of the second commit.
        second: SiteSet,
    },
}

impl core::fmt::Display for Violation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Violation::StaleRead { served, latest } => {
                write!(f, "stale read: served v{served}, latest write is v{latest}")
            }
            Violation::DuplicateVersion { version } => {
                write!(f, "version v{version} committed by two rival writes")
            }
            Violation::LineageFork { op, first, second } => {
                write!(
                    f,
                    "operation {op} committed twice: by {first} and by {second}"
                )
            }
        }
    }
}

/// Tracks ground truth across operations and records [`Violation`]s.
#[derive(Clone, Debug)]
pub struct Checker {
    latest_written: u64,
    written_versions: HashMap<u64, u64>, // version → times committed
    committed_ops: HashMap<u64, SiteSet>,
    violations: Vec<Violation>,
}

impl Default for Checker {
    fn default() -> Self {
        Checker::new()
    }
}

impl Checker {
    /// A fresh checker; the initial value counts as write version 1.
    #[must_use]
    pub fn new() -> Self {
        Checker {
            latest_written: 1,
            written_versions: HashMap::from([(1, 1)]),
            committed_ops: HashMap::from([(1, SiteSet::EMPTY)]),
            violations: Vec::new(),
        }
    }

    /// Notes a successful commit of `op` by `participants`.
    pub fn note_commit(&mut self, op: u64, participants: SiteSet) {
        match self.committed_ops.get(&op) {
            // The initial pseudo-op 1 is held by every fresh copy.
            Some(&prev) if prev != participants && op != 1 => {
                self.violations.push(Violation::LineageFork {
                    op,
                    first: prev,
                    second: participants,
                });
            }
            Some(_) => {}
            None => {
                self.committed_ops.insert(op, participants);
            }
        }
    }

    /// Notes a successful write committing `version`.
    pub fn note_write(&mut self, version: u64) {
        let times = self.written_versions.entry(version).or_insert(0);
        *times += 1;
        if *times > 1 {
            self.violations
                .push(Violation::DuplicateVersion { version });
        }
        if version > self.latest_written {
            self.latest_written = version;
        }
    }

    /// Notes a successful read that served `version`.
    pub fn note_read(&mut self, version: u64) {
        if version < self.latest_written {
            self.violations.push(Violation::StaleRead {
                served: version,
                latest: self.latest_written,
            });
        }
    }

    /// The version of the latest successful write.
    #[must_use]
    pub fn latest_written(&self) -> u64 {
        self.latest_written
    }

    /// A deterministic, order-independent digest of the checker's
    /// ground truth (commit log, written versions, violation count).
    ///
    /// Exhaustive explorers fold this into the cluster fingerprint:
    /// lineage-fork and duplicate-version detection depend on the
    /// *history* of commits, not just the current replica states, so
    /// two states may only be deduplicated against each other when
    /// their detection-relevant histories also match. XOR-folding makes
    /// the digest independent of `HashMap` iteration order.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut acc =
            dynvote_core::fingerprint_of(&(self.latest_written, self.violations.len() as u64));
        let mut fold = 0u64;
        for (&op, &participants) in &self.committed_ops {
            fold ^= dynvote_core::fingerprint_of(&(op, participants));
        }
        acc ^= fold.rotate_left(1);
        fold = 0;
        for (&version, &times) in &self.written_versions {
            fold ^= dynvote_core::fingerprint_of(&(version, times));
        }
        acc ^ fold.rotate_left(2)
    }

    /// All recorded violations, in detection order.
    #[must_use]
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// The commit log as `(op, participants)` pairs, sorted by
    /// operation number — the detection-relevant history a symmetry
    /// canonicalization must relabel site-by-site (see the checker
    /// crate's `symmetry` module). Sorted so callers can hash the
    /// entries sequentially without re-introducing `HashMap` order.
    #[must_use]
    pub fn commit_entries(&self) -> Vec<(u64, SiteSet)> {
        let mut entries: Vec<_> = self
            .committed_ops
            .iter()
            .map(|(&op, &participants)| (op, participants))
            .collect();
        entries.sort_unstable_by_key(|&(op, _)| op);
        entries
    }

    /// The written-version multiset as `(version, times)` pairs, sorted
    /// by version — the site-free half of the detection-relevant
    /// history (companion to [`Checker::commit_entries`]).
    #[must_use]
    pub fn version_entries(&self) -> Vec<(u64, u64)> {
        let mut entries: Vec<_> = self
            .written_versions
            .iter()
            .map(|(&version, &times)| (version, times))
            .collect();
        entries.sort_unstable_by_key(|&(version, _)| version);
        entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_history_records_nothing() {
        let mut c = Checker::new();
        c.note_commit(2, SiteSet::from_indices([0, 1]));
        c.note_write(2);
        c.note_read(2);
        c.note_commit(3, SiteSet::from_indices([0, 1]));
        c.note_read(2);
        assert!(c.violations().is_empty());
        assert_eq!(c.latest_written(), 2);
    }

    #[test]
    fn stale_read_detected() {
        let mut c = Checker::new();
        c.note_write(5);
        c.note_read(4);
        assert_eq!(
            c.violations(),
            &[Violation::StaleRead {
                served: 4,
                latest: 5
            }]
        );
    }

    #[test]
    fn duplicate_version_detected() {
        let mut c = Checker::new();
        c.note_write(2);
        c.note_write(2);
        assert_eq!(
            c.violations(),
            &[Violation::DuplicateVersion { version: 2 }]
        );
    }

    #[test]
    fn lineage_fork_detected() {
        let mut c = Checker::new();
        c.note_commit(4, SiteSet::from_indices([0]));
        c.note_commit(4, SiteSet::from_indices([1]));
        assert_eq!(c.violations().len(), 1);
        assert!(matches!(
            c.violations()[0],
            Violation::LineageFork { op: 4, .. }
        ));
    }

    #[test]
    fn same_commit_twice_is_fine() {
        // Re-committing the same op by the same participants (e.g. the
        // initial state) is not a fork.
        let mut c = Checker::new();
        c.note_commit(4, SiteSet::from_indices([0, 1]));
        c.note_commit(4, SiteSet::from_indices([0, 1]));
        assert!(c.violations().is_empty());
    }

    #[test]
    fn digest_tracks_history_not_insertion_order() {
        let mut a = Checker::new();
        let mut b = Checker::new();
        assert_eq!(a.digest(), b.digest());

        // Same history, different note order → same digest.
        a.note_commit(2, SiteSet::from_indices([0, 1]));
        a.note_commit(3, SiteSet::from_indices([0]));
        b.note_commit(3, SiteSet::from_indices([0]));
        b.note_commit(2, SiteSet::from_indices([0, 1]));
        assert_eq!(a.digest(), b.digest());

        // Different participants for the same op → different digest.
        let mut c = Checker::new();
        c.note_commit(2, SiteSet::from_indices([0]));
        c.note_commit(3, SiteSet::from_indices([0]));
        assert_ne!(a.digest(), c.digest());

        // A recorded write changes the digest too.
        let before = a.digest();
        a.note_write(2);
        assert_ne!(before, a.digest());
    }

    #[test]
    fn violations_display() {
        let v = Violation::StaleRead {
            served: 3,
            latest: 7,
        };
        assert!(v.to_string().contains("v3"));
        let v = Violation::LineageFork {
            op: 9,
            first: SiteSet::from_indices([0]),
            second: SiteSet::from_indices([1]),
        };
        assert!(v.to_string().contains("operation 9"));
    }
}
