//! Per-site durable storage: a write-ahead log under every commit.
//!
//! The paper's correctness argument assumes each copy's ⟨o_i, v_i, P_i⟩
//! lives on *stable storage* — a site that crashes and restarts still
//! holds everything it acknowledged before the crash. This module
//! supplies that storage for one site: a [`Wal`] of checksummed,
//! length-prefixed records fsync'd before any acknowledgement leaves
//! the site, folded into a running
//! [`DurableSiteState`](crate::snapshot::DurableSiteState) image that
//! periodically lands as an atomic snapshot (write-then-rename), after
//! which the log is truncated.
//!
//! Three record kinds cover the whole durable surface:
//!
//! * [`WalRecord::Commit`] — an absolute install of ⟨o, v, P⟩ (plus the
//!   data bytes when they changed). Replaying a commit twice is
//!   harmless, which is what makes the snapshot/truncate race safe: a
//!   crash between the snapshot rename and the log truncation leaves
//!   stale records behind, and replay skips any record whose sequence
//!   number the snapshot already covers.
//! * [`WalRecord::Vote`] — the site answered a `START` and is wedged on
//!   an outstanding vote. Losing this across a crash could let the site
//!   vote in two conflicting operations, so it is fsync'd *before* the
//!   state reply leaves the site — outstanding votes are
//!   safety-critical state, not bookkeeping.
//! * [`WalRecord::Release`] — the outstanding vote resolved without a
//!   commit (the abort oracle spoke).
//!
//! Replay is torn-tail tolerant: a crash mid-append leaves a short or
//! checksum-broken tail, which [`Wal::open`] truncates back to the last
//! intact record and reports via [`WalTail`]. Corruption *before* the
//! tail also stops replay at the last good record — the log never
//! yields a record whose checksum does not match.

use std::fmt;
use std::fs::{File, OpenOptions};
use std::hash::Hasher;
use std::io::{self, Read as _, Seek, SeekFrom, Write as _};
use std::path::{Path, PathBuf};

use dynvote_core::wire::{put_state, put_u32, put_u64, put_u8, Reader};
use dynvote_core::Fnv64;

use crate::snapshot::{DurableSiteState, SnapshotLoad};

/// The write-ahead log's file name inside a site's data directory.
pub const WAL_FILE: &str = "wal.log";
/// The previous generation's log, kept until the next snapshot rotation
/// so a corrupt current snapshot can still be rebuilt from the previous
/// snapshot plus both logs.
pub const WAL_PREV_FILE: &str = "wal.prev.log";
/// The snapshot's file name inside a site's data directory.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";
/// The previous generation's snapshot, kept until the next rotation.
pub const SNAPSHOT_PREV_FILE: &str = "snapshot.prev.bin";
/// Where a corrupt snapshot is moved aside for forensics.
pub const SNAPSHOT_CORRUPT_FILE: &str = "snapshot.bin.corrupt";
/// Where a corrupt *previous* snapshot is moved aside for forensics.
pub const SNAPSHOT_PREV_CORRUPT_FILE: &str = "snapshot.prev.bin.corrupt";
/// The boot-epoch counter's file name inside a site's data directory.
pub const EPOCH_FILE: &str = "epoch.bin";

/// The durable namespace of one shard group under a site's base data
/// directory: `<base>/shard-<k>/`. Every shard hosted at a site gets
/// its own WAL, snapshot generation, boot-epoch counter, and operation
/// ledger — the groups vote independently, so their stable storage
/// must be independent too (one shard's snapshot/truncate cycle can
/// never tear another's log).
#[must_use]
pub fn shard_dir(base: &Path, shard: u16) -> PathBuf {
    base.join(format!("shard-{shard}"))
}

/// Upper bound on one record's body — matches the store's frame cap, so
/// any value that fit on the wire fits in the log, and a corrupted
/// length prefix cannot trigger a huge allocation.
const MAX_RECORD: usize = 16 * 1024 * 1024;

const KIND_COMMIT: u8 = 1;
const KIND_VOTE: u8 = 2;
const KIND_RELEASE: u8 = 3;

/// The checksum every durable artifact carries: the crate's fixed-key
/// FNV-1a over the record body (no per-process randomness — artifacts
/// written by one process must validate in the next).
#[must_use]
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

/// One durable event at a site, in protocol terms.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalRecord {
    /// A commit landed: adopt this ⟨o, v, P⟩ outright, and — when
    /// `value` is `Some` — these data bytes. Clears any outstanding
    /// vote, exactly as a delivered commit does in the protocol.
    Commit {
        /// The committed consistency-control state.
        state: dynvote_core::state::ReplicaState,
        /// New data bytes, present only when the value changed
        /// (state-only commits from read absorption carry `None`).
        value: Option<Vec<u8>>,
    },
    /// The site answered a `START` for this operation ticket and is
    /// wedged until it learns the outcome.
    Vote {
        /// The operation ticket voted for.
        ticket: u64,
    },
    /// The outstanding vote for this ticket resolved without a commit.
    Release {
        /// The released operation ticket.
        ticket: u64,
    },
}

/// A [`WalRecord`] plus its log sequence number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalEntry {
    /// Monotone per-site sequence number; snapshots remember the last
    /// sequence they cover so stale log records are skipped on replay.
    pub seq: u64,
    /// The durable event.
    pub record: WalRecord,
}

/// How the log's tail looked on open.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WalTail {
    /// Every byte parsed as an intact record.
    Clean,
    /// The final record was incomplete — the classic crash-mid-append
    /// shape. The dropped bytes never covered an acknowledged
    /// operation (acks follow fsync), so truncating them loses nothing.
    Torn {
        /// Bytes discarded from the tail.
        dropped_bytes: usize,
    },
    /// A record failed its checksum or decoded to garbage; replay
    /// stopped at the last good record and the rest was discarded.
    Corrupt {
        /// Bytes discarded from the first bad record onward.
        dropped_bytes: usize,
    },
}

impl fmt::Display for WalTail {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalTail::Clean => f.write_str("clean"),
            WalTail::Torn { dropped_bytes } => {
                write!(f, "torn tail ({dropped_bytes} bytes dropped)")
            }
            WalTail::Corrupt { dropped_bytes } => {
                write!(f, "corrupt tail ({dropped_bytes} bytes dropped)")
            }
        }
    }
}

/// What [`Wal::open`] recovered from disk.
#[derive(Clone, Debug)]
pub struct WalReplay {
    /// Every intact record, in log order.
    pub entries: Vec<WalEntry>,
    /// How the tail looked (the file has already been truncated back to
    /// the last intact record when this is not [`WalTail::Clean`]).
    pub tail: WalTail,
}

/// An append-only, checksummed, fsync'd record log.
#[derive(Debug)]
pub struct Wal {
    file: File,
    records: u64,
    bytes: u64,
}

impl Wal {
    /// Opens (creating if absent) the log at `path`, replays every
    /// intact record, and repairs a torn or corrupt tail by truncating
    /// the file back to the last good record.
    ///
    /// # Errors
    ///
    /// Any I/O error opening, reading, or repairing the file.
    pub fn open(path: &Path) -> io::Result<(Wal, WalReplay)> {
        let mut file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(path)?;
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)?;
        let (entries, good_bytes, tail) = parse_log(&buf);
        if good_bytes < buf.len() as u64 {
            file.set_len(good_bytes)?;
            file.sync_data()?;
        }
        let records = entries.len() as u64;
        Ok((
            Wal {
                file,
                records,
                bytes: good_bytes,
            },
            WalReplay { entries, tail },
        ))
    }

    /// Appends one record and fsyncs it — on `Ok`, the record survives
    /// a crash. Callers acknowledge *after* this returns, never before.
    ///
    /// # Errors
    ///
    /// The write or the fsync failed; the on-disk tail may be torn, and
    /// the next [`Wal::open`] will repair it.
    pub fn append(&mut self, entry: &WalEntry) -> io::Result<()> {
        let encoded = encode_entry(entry);
        self.file.write_all(&encoded)?;
        self.file.sync_data()?;
        self.records += 1;
        self.bytes += encoded.len() as u64;
        Ok(())
    }

    /// Empties the log — called after a snapshot covering every logged
    /// record has durably landed.
    ///
    /// # Errors
    ///
    /// The truncation or its fsync failed.
    pub fn truncate(&mut self) -> io::Result<()> {
        self.file.set_len(0)?;
        self.file.sync_data()?;
        self.records = 0;
        self.bytes = 0;
        Ok(())
    }

    /// Records currently in the log.
    #[must_use]
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The log's current length in bytes.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

fn encode_entry(entry: &WalEntry) -> Vec<u8> {
    let mut body = Vec::with_capacity(64);
    put_u64(&mut body, entry.seq);
    match &entry.record {
        WalRecord::Commit { state, value } => {
            put_u8(&mut body, KIND_COMMIT);
            put_state(&mut body, state);
            match value {
                Some(bytes) => {
                    put_u8(&mut body, 1);
                    put_u32(
                        &mut body,
                        u32::try_from(bytes.len()).expect("value exceeds u32"),
                    );
                    body.extend_from_slice(bytes);
                }
                None => put_u8(&mut body, 0),
            }
        }
        WalRecord::Vote { ticket } => {
            put_u8(&mut body, KIND_VOTE);
            put_u64(&mut body, *ticket);
        }
        WalRecord::Release { ticket } => {
            put_u8(&mut body, KIND_RELEASE);
            put_u64(&mut body, *ticket);
        }
    }
    let mut out = Vec::with_capacity(body.len() + 12);
    put_u32(
        &mut out,
        u32::try_from(body.len()).expect("record exceeds u32"),
    );
    let sum = checksum(&body);
    out.extend_from_slice(&body);
    put_u64(&mut out, sum);
    out
}

fn decode_body(body: &[u8]) -> Option<WalEntry> {
    let mut r = Reader::new(body);
    let seq = r.u64().ok()?;
    let record = match r.u8().ok()? {
        KIND_COMMIT => {
            let state = r.state().ok()?;
            let value = match r.u8().ok()? {
                0 => None,
                1 => {
                    let len = r.u32().ok()? as usize;
                    Some(r.bytes(len).ok()?.to_vec())
                }
                _ => return None,
            };
            WalRecord::Commit { state, value }
        }
        KIND_VOTE => WalRecord::Vote {
            ticket: r.u64().ok()?,
        },
        KIND_RELEASE => WalRecord::Release {
            ticket: r.u64().ok()?,
        },
        _ => return None,
    };
    if !r.is_exhausted() {
        return None;
    }
    Some(WalEntry { seq, record })
}

/// Parses as many intact records as the buffer holds; returns the
/// entries, the byte offset of the first non-intact byte (the repair
/// point), and how the tail looked.
fn parse_log(buf: &[u8]) -> (Vec<WalEntry>, u64, WalTail) {
    let mut entries = Vec::new();
    let mut pos = 0usize;
    loop {
        let rest = &buf[pos..];
        if rest.is_empty() {
            return (entries, pos as u64, WalTail::Clean);
        }
        if rest.len() < 4 {
            return (
                entries,
                pos as u64,
                WalTail::Torn {
                    dropped_bytes: rest.len(),
                },
            );
        }
        let len = u32::from_be_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
        if len > MAX_RECORD {
            return (
                entries,
                pos as u64,
                WalTail::Corrupt {
                    dropped_bytes: rest.len(),
                },
            );
        }
        let total = 4 + len + 8;
        if rest.len() < total {
            return (
                entries,
                pos as u64,
                WalTail::Torn {
                    dropped_bytes: rest.len(),
                },
            );
        }
        let body = &rest[4..4 + len];
        let sum = u64::from_be_bytes(rest[4 + len..total].try_into().expect("8 bytes"));
        let entry = if checksum(body) == sum {
            decode_body(body)
        } else {
            None
        };
        match entry {
            Some(entry) => entries.push(entry),
            None => {
                return (
                    entries,
                    pos as u64,
                    WalTail::Corrupt {
                        dropped_bytes: rest.len(),
                    },
                )
            }
        }
        pos += total;
    }
}

/// The last fsync's outcome, for operator status surfaces.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncOutcome {
    /// No record has been appended yet this process lifetime.
    Never,
    /// The most recent append reached stable storage.
    Synced,
    /// The most recent append failed — the site must stop
    /// acknowledging until the disk recovers.
    Failed,
}

impl fmt::Display for FsyncOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FsyncOutcome::Never => "never",
            FsyncOutcome::Synced => "ok",
            FsyncOutcome::Failed => "failed",
        })
    }
}

/// What [`SiteStore::open`] found on disk.
#[derive(Clone, Debug)]
pub struct Restored {
    /// The restored image — `None` for a fresh data directory (no
    /// snapshot, no log records), in which case the caller seeds the
    /// store with the site's boot state via [`SiteStore::seed`].
    pub image: Option<DurableSiteState>,
    /// The snapshot file existed but failed validation and was moved
    /// aside to [`SNAPSHOT_CORRUPT_FILE`]; the image (if any) came from
    /// the previous-generation snapshot and/or log replay.
    pub snapshot_was_corrupt: bool,
    /// Recovery fell back to the previous-generation snapshot
    /// ([`SNAPSHOT_PREV_FILE`]) because the current one was missing or
    /// corrupt; the previous log was replayed on top of it first.
    pub used_previous_snapshot: bool,
    /// How the log's tail looked (already repaired).
    pub wal_tail: WalTail,
    /// Log records folded into the image (stale pre-snapshot records
    /// are skipped and not counted).
    pub replayed: u64,
}

/// One site's durable storage: snapshot + write-ahead log + the running
/// image they fold into.
///
/// The contract a daemon builds on: call [`SiteStore::log`] with the
/// protocol event *before* acknowledging it to anyone; on `Ok` the
/// event is on stable storage. Snapshots land automatically every
/// `snapshot_every` records (atomic write-then-rename, then log
/// truncation) and can be forced with [`SiteStore::snapshot_now`].
#[derive(Debug)]
pub struct SiteStore {
    dir: PathBuf,
    wal: Wal,
    image: DurableSiteState,
    next_seq: u64,
    snapshot_every: u64,
    snapshot_seq: u64,
    last_fsync: FsyncOutcome,
    epoch: u64,
}

impl SiteStore {
    /// Opens (creating if needed) the durable store in `dir`: loads the
    /// snapshot if one validates (a corrupt one is moved aside), then
    /// folds in every intact log record the snapshot does not already
    /// cover. `snapshot_every` bounds the log's length in records
    /// before an automatic snapshot; `0` disables automatic snapshots.
    ///
    /// When the current snapshot is missing or corrupt, recovery chains
    /// back one generation: the previous snapshot
    /// ([`SNAPSHOT_PREV_FILE`]) plus the previous log
    /// ([`WAL_PREV_FILE`]) plus the current log rebuild the same image,
    /// because each rotation parks exactly the log that covers the gap
    /// between the two snapshots.
    ///
    /// # Errors
    ///
    /// Any I/O error other than a missing snapshot file. A corrupt
    /// snapshot or a torn/corrupt log tail is *not* an error — both are
    /// repaired and reported in [`Restored`].
    pub fn open(dir: &Path, snapshot_every: u64) -> io::Result<(SiteStore, Restored)> {
        std::fs::create_dir_all(dir)?;
        let snapshot_path = dir.join(SNAPSHOT_FILE);
        let mut snapshot_was_corrupt = false;
        let mut snapshot_image = None;
        match DurableSiteState::load(&snapshot_path)? {
            SnapshotLoad::Loaded(image) => snapshot_image = Some(image),
            SnapshotLoad::Missing => {}
            SnapshotLoad::Corrupt(_) => {
                snapshot_was_corrupt = true;
                let _ = std::fs::rename(&snapshot_path, dir.join(SNAPSHOT_CORRUPT_FILE));
            }
        }
        // Fall back one generation when the current snapshot is
        // unusable: the previous snapshot covers everything up to the
        // last rotation, and the previous log covers the gap from there
        // to the (lost) current snapshot.
        let mut used_previous_snapshot = false;
        let mut prev_entries: Vec<WalEntry> = Vec::new();
        if snapshot_image.is_none() {
            let prev_path = dir.join(SNAPSHOT_PREV_FILE);
            match DurableSiteState::load(&prev_path)? {
                SnapshotLoad::Loaded(image) => {
                    used_previous_snapshot = true;
                    snapshot_image = Some(image);
                }
                SnapshotLoad::Missing => {}
                SnapshotLoad::Corrupt(_) => {
                    let _ = std::fs::rename(&prev_path, dir.join(SNAPSHOT_PREV_CORRUPT_FILE));
                }
            }
            let prev_wal = dir.join(WAL_PREV_FILE);
            if prev_wal.exists() {
                let (_, prev_replay) = Wal::open(&prev_wal)?;
                prev_entries = prev_replay.entries;
            }
        }
        let snapshot_seq = snapshot_image.as_ref().map_or(0, |image| image.seq);
        let (wal, replay) = Wal::open(&dir.join(WAL_FILE))?;
        let had_snapshot = snapshot_image.is_some();
        let mut image = snapshot_image.unwrap_or_else(DurableSiteState::blank);
        let mut replayed = 0u64;
        for entry in prev_entries.iter().chain(&replay.entries) {
            // Skip records the snapshot already covers — the shape a
            // crash between snapshot rename and log truncation leaves.
            if entry.seq <= snapshot_seq {
                continue;
            }
            apply_entry(&mut image, entry);
            replayed += 1;
        }
        let restored = (had_snapshot || replayed > 0).then(|| image.clone());
        let next_seq = image.seq + 1;
        let epoch = bump_epoch(&dir.join(EPOCH_FILE))?;
        Ok((
            SiteStore {
                dir: dir.to_path_buf(),
                wal,
                image,
                next_seq,
                snapshot_every,
                snapshot_seq,
                last_fsync: FsyncOutcome::Never,
                epoch,
            },
            Restored {
                image: restored,
                snapshot_was_corrupt,
                used_previous_snapshot,
                wal_tail: replay.tail,
                replayed,
            },
        ))
    }

    /// Seeds a fresh store with the site's boot-time state and writes
    /// the initial snapshot, making the data directory self-contained
    /// from the first moment.
    ///
    /// # Errors
    ///
    /// Writing the initial snapshot failed.
    pub fn seed(
        &mut self,
        state: dynvote_core::state::ReplicaState,
        pending: Option<u64>,
        value: Option<Vec<u8>>,
    ) -> io::Result<()> {
        self.image = DurableSiteState {
            seq: self.next_seq - 1,
            state,
            pending,
            value,
        };
        self.snapshot_now()
    }

    /// Logs one durable event: appends it to the WAL, fsyncs, folds it
    /// into the running image, and — when the log has grown past
    /// `snapshot_every` records — lands a snapshot and truncates the
    /// log. On `Ok`, the event survives a crash; acknowledge only then.
    ///
    /// # Errors
    ///
    /// The append/fsync (or a due snapshot) failed; the caller must not
    /// acknowledge the event, and status reports the failed fsync.
    pub fn log(&mut self, record: WalRecord) -> io::Result<()> {
        let entry = WalEntry {
            seq: self.next_seq,
            record,
        };
        match self.wal.append(&entry) {
            Ok(()) => self.last_fsync = FsyncOutcome::Synced,
            Err(error) => {
                self.last_fsync = FsyncOutcome::Failed;
                return Err(error);
            }
        }
        self.next_seq += 1;
        apply_entry(&mut self.image, &entry);
        if self.snapshot_every > 0 && self.wal.records() >= self.snapshot_every {
            self.snapshot_now()?;
        }
        Ok(())
    }

    /// Writes the current image as a snapshot and rotates generations:
    /// the old snapshot becomes [`SNAPSHOT_PREV_FILE`], the new image
    /// lands atomically as [`SNAPSHOT_FILE`], and the log it covers is
    /// parked as [`WAL_PREV_FILE`] (a fresh empty log takes its place).
    /// Keeping exactly one previous generation means a later corrupt
    /// *snapshot* is recoverable: previous snapshot + previous log +
    /// current log rebuild the same image.
    ///
    /// A crash at any point between the steps is safe: replay skips
    /// records a snapshot already covers, and every intermediate file
    /// layout chains back to a complete image.
    ///
    /// # Errors
    ///
    /// The snapshot write or a rename along the rotation failed.
    pub fn snapshot_now(&mut self) -> io::Result<()> {
        let snapshot_path = self.dir.join(SNAPSHOT_FILE);
        if snapshot_path.exists() {
            std::fs::rename(&snapshot_path, self.dir.join(SNAPSHOT_PREV_FILE))?;
        }
        self.image.write_atomic(&snapshot_path)?;
        self.snapshot_seq = self.image.seq;
        // Park the covered log and start a fresh one; the parked log is
        // what lets recovery bridge from the previous snapshot if the
        // one just written is later unreadable.
        let wal_path = self.dir.join(WAL_FILE);
        std::fs::rename(&wal_path, self.dir.join(WAL_PREV_FILE))?;
        let (fresh, _) = Wal::open(&wal_path)?;
        self.wal = fresh;
        std::fs::File::open(&self.dir)?.sync_all()?;
        Ok(())
    }

    /// The running durable image (snapshot state + folded log).
    #[must_use]
    pub fn image(&self) -> &DurableSiteState {
        &self.image
    }

    /// The sequence number the on-disk snapshot covers.
    #[must_use]
    pub fn snapshot_seq(&self) -> u64 {
        self.snapshot_seq
    }

    /// Records currently in the log.
    #[must_use]
    pub fn wal_records(&self) -> u64 {
        self.wal.records()
    }

    /// The log's current length in bytes.
    #[must_use]
    pub fn wal_bytes(&self) -> u64 {
        self.wal.bytes()
    }

    /// The last fsync's outcome.
    #[must_use]
    pub fn last_fsync(&self) -> FsyncOutcome {
        self.last_fsync
    }

    /// The data directory this store lives in.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The boot epoch: how many times this data directory has been
    /// opened, persisted and fsync'd before [`SiteStore::open`]
    /// returns. A restarted daemon salts its vote-ticket namespace with
    /// this, so tickets issued before a crash are never reissued after
    /// it — a reissued ticket would look current to a site the old
    /// incarnation left wedged, silently lifting the wedge that guards
    /// against lineage forks.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

/// Reads, increments, and durably rewrites the boot-epoch counter
/// (write-then-rename, like the snapshot, so a crash mid-update leaves
/// the old epoch — which the next boot still increments past).
fn bump_epoch(path: &Path) -> io::Result<u64> {
    let epoch = match std::fs::read(path) {
        Ok(bytes) if bytes.len() == 8 => {
            u64::from_le_bytes(bytes.try_into().expect("length checked")) + 1
        }
        Ok(_) => 1, // torn or foreign contents: restart the count
        Err(error) if error.kind() == io::ErrorKind::NotFound => 1,
        Err(error) => return Err(error),
    };
    let tmp = path.with_file_name(format!("{EPOCH_FILE}.tmp"));
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(&epoch.to_le_bytes())?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(epoch)
}

fn apply_entry(image: &mut DurableSiteState, entry: &WalEntry) {
    image.seq = entry.seq;
    match &entry.record {
        WalRecord::Commit { state, value } => {
            image.state = *state;
            if let Some(bytes) = value {
                image.value = Some(bytes.clone());
            }
            // A delivered commit resolves the outstanding vote.
            image.pending = None;
        }
        WalRecord::Vote { ticket } => image.pending = Some(*ticket),
        WalRecord::Release { .. } => image.pending = None,
    }
}

/// Truncates `drop_bytes` off the end of the file at `path` — the
/// deterministic torn-write injector crash tests use to fabricate a
/// mid-append power cut.
///
/// # Errors
///
/// Opening or truncating the file failed.
pub fn inject_torn_tail(path: &Path, drop_bytes: u64) -> io::Result<()> {
    let file = OpenOptions::new().write(true).open(path)?;
    let len = file.metadata()?.len();
    file.set_len(len.saturating_sub(drop_bytes))
}

/// Flips every bit of the byte at `offset` in the file at `path` — the
/// deterministic corruption injector for checksum-detection tests.
///
/// # Errors
///
/// Opening, reading, or rewriting the byte failed (including an
/// `offset` past the end of the file).
pub fn inject_flip_byte(path: &Path, offset: u64) -> io::Result<()> {
    let mut file = OpenOptions::new().read(true).write(true).open(path)?;
    file.seek(SeekFrom::Start(offset))?;
    let mut byte = [0u8; 1];
    file.read_exact(&mut byte)?;
    byte[0] ^= 0xFF;
    file.seek(SeekFrom::Start(offset))?;
    file.write_all(&byte)?;
    file.sync_data()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynvote_core::state::ReplicaState;
    use dynvote_types::SiteSet;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scratch_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "dynvote-wal-{tag}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn state(op: u64, version: u64) -> ReplicaState {
        ReplicaState {
            op,
            version,
            partition: SiteSet::from_indices([0, 1, 2]),
        }
    }

    fn commit(op: u64, version: u64, value: &[u8]) -> WalRecord {
        WalRecord::Commit {
            state: state(op, version),
            value: Some(value.to_vec()),
        }
    }

    #[test]
    fn wal_epoch_increments_every_open_and_survives_tampering() {
        let dir = scratch_dir("epoch");
        let (first, _) = SiteStore::open(&dir, 0).unwrap();
        assert_eq!(first.epoch(), 1);
        drop(first);
        let (second, _) = SiteStore::open(&dir, 0).unwrap();
        assert_eq!(second.epoch(), 2);
        drop(second);
        // A torn or foreign epoch file restarts the count rather than
        // failing the boot — the salt only needs to move, not be exact.
        std::fs::write(dir.join(EPOCH_FILE), b"junk").unwrap();
        let (third, _) = SiteStore::open(&dir, 0).unwrap();
        assert_eq!(third.epoch(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wal_append_replay_round_trip() {
        let dir = scratch_dir("round-trip");
        let path = dir.join(WAL_FILE);
        let mut expected = Vec::new();
        {
            let (mut wal, replay) = Wal::open(&path).unwrap();
            assert!(replay.entries.is_empty());
            assert_eq!(replay.tail, WalTail::Clean);
            for (seq, record) in [
                (1, commit(2, 2, b"v1")),
                (2, WalRecord::Vote { ticket: 77 }),
                (3, WalRecord::Release { ticket: 77 }),
                (
                    4,
                    WalRecord::Commit {
                        state: state(3, 2),
                        value: None,
                    },
                ),
            ] {
                let entry = WalEntry { seq, record };
                wal.append(&entry).unwrap();
                expected.push(entry);
            }
            assert_eq!(wal.records(), 4);
        }
        let (wal, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.entries, expected);
        assert_eq!(replay.tail, WalTail::Clean);
        assert_eq!(wal.records(), 4);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wal_torn_tail_truncates_to_last_good_record() {
        let dir = scratch_dir("torn");
        let path = dir.join(WAL_FILE);
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            for seq in 1..=3 {
                wal.append(&WalEntry {
                    seq,
                    record: commit(seq + 1, seq + 1, b"value"),
                })
                .unwrap();
            }
        }
        // A crash mid-append: the final record loses its last 5 bytes.
        inject_torn_tail(&path, 5).unwrap();
        let torn_len = std::fs::metadata(&path).unwrap().len();
        let (wal, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.entries.len(), 2);
        assert_eq!(replay.entries.last().unwrap().seq, 2);
        assert!(matches!(replay.tail, WalTail::Torn { dropped_bytes } if dropped_bytes > 0));
        // The repair physically removed the torn bytes.
        assert!(std::fs::metadata(&path).unwrap().len() < torn_len);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), wal.bytes());
        // Appending after the repair continues cleanly.
        drop(wal);
        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.append(&WalEntry {
            seq: 3,
            record: commit(4, 4, b"retry"),
        })
        .unwrap();
        let (_, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.entries.len(), 3);
        assert_eq!(replay.tail, WalTail::Clean);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wal_corrupted_record_stops_replay_at_last_good() {
        let dir = scratch_dir("corrupt");
        let path = dir.join(WAL_FILE);
        let second_record_offset = {
            let (mut wal, _) = Wal::open(&path).unwrap();
            wal.append(&WalEntry {
                seq: 1,
                record: commit(2, 2, b"good"),
            })
            .unwrap();
            let offset = wal.bytes();
            wal.append(&WalEntry {
                seq: 2,
                record: commit(3, 3, b"doomed"),
            })
            .unwrap();
            wal.append(&WalEntry {
                seq: 3,
                record: commit(4, 4, b"shadowed"),
            })
            .unwrap();
            offset
        };
        // Flip a byte inside the *middle* record's body.
        inject_flip_byte(&path, second_record_offset + 6).unwrap();
        let (wal, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.entries.len(), 1, "replay stops at the corruption");
        assert_eq!(replay.entries[0].seq, 1);
        assert!(matches!(replay.tail, WalTail::Corrupt { dropped_bytes } if dropped_bytes > 0));
        assert_eq!(wal.records(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wal_site_store_snapshot_truncates_log_and_survives_reopen() {
        let dir = scratch_dir("store");
        let final_image;
        {
            let (mut store, restored) = SiteStore::open(&dir, 4).unwrap();
            assert!(restored.image.is_none(), "fresh directory");
            store.seed(state(1, 1), None, Some(b"v0".to_vec())).unwrap();
            for seq in 0..6u64 {
                store.log(commit(2 + seq, 2 + seq, b"payload")).unwrap();
            }
            // 6 records with snapshot_every=4: one auto-snapshot landed
            // at the 4th, leaving 2 in the log.
            assert_eq!(store.wal_records(), 2);
            assert_eq!(store.snapshot_seq(), 4);
            assert_eq!(store.last_fsync(), FsyncOutcome::Synced);
            final_image = store.image().clone();
        }
        let (store, restored) = SiteStore::open(&dir, 4).unwrap();
        assert_eq!(restored.image.as_ref(), Some(&final_image));
        assert_eq!(restored.replayed, 2);
        assert!(!restored.snapshot_was_corrupt);
        assert_eq!(store.image(), &final_image);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wal_stale_records_skipped_when_truncate_was_lost() {
        let dir = scratch_dir("stale");
        let (mut store, _) = SiteStore::open(&dir, 0).unwrap();
        store.seed(state(1, 1), None, Some(b"v0".to_vec())).unwrap();
        store.log(commit(2, 2, b"v1")).unwrap();
        store.log(commit(3, 3, b"v2")).unwrap();
        // Fabricate a crash *between* snapshot rename and log
        // truncation: snapshot the image, then restore the pre-snapshot
        // log bytes.
        let wal_bytes = std::fs::read(dir.join(WAL_FILE)).unwrap();
        store.snapshot_now().unwrap();
        assert_eq!(store.wal_records(), 0);
        drop(store);
        std::fs::write(dir.join(WAL_FILE), &wal_bytes).unwrap();
        let (store, restored) = SiteStore::open(&dir, 0).unwrap();
        assert_eq!(restored.replayed, 0, "stale records are skipped");
        let image = restored.image.unwrap();
        assert_eq!(image.state, state(3, 3));
        assert_eq!(image.value.as_deref(), Some(b"v2".as_slice()));
        // The stale records stay in the file (harmless — every reopen
        // skips them) until the next snapshot truncates the log.
        assert_eq!(store.wal_records(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wal_corrupt_snapshot_moved_aside_and_log_still_replays() {
        let dir = scratch_dir("bad-snap");
        {
            let (mut store, _) = SiteStore::open(&dir, 0).unwrap();
            store.seed(state(1, 1), None, Some(b"v0".to_vec())).unwrap();
            store.log(commit(2, 2, b"v1")).unwrap();
        }
        inject_flip_byte(&dir.join(SNAPSHOT_FILE), 12).unwrap();
        let (_, restored) = SiteStore::open(&dir, 0).unwrap();
        assert!(restored.snapshot_was_corrupt);
        assert!(dir.join(SNAPSHOT_CORRUPT_FILE).exists());
        // The log still carried the commit, so the image survives
        // (value included — the commit happened to carry bytes).
        let image = restored.image.unwrap();
        assert_eq!(image.state, state(2, 2));
        assert_eq!(image.value.as_deref(), Some(b"v1".as_slice()));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wal_corrupt_snapshot_falls_back_to_previous_generation() {
        let dir = scratch_dir("prev-gen");
        let final_image;
        {
            let (mut store, _) = SiteStore::open(&dir, 0).unwrap();
            store.seed(state(1, 1), None, Some(b"v0".to_vec())).unwrap();
            store.log(commit(2, 2, b"v1")).unwrap();
            store.log(commit(3, 3, b"v2")).unwrap();
            // Rotation: snapshot(seq 2) becomes current, the two
            // commits are parked in the previous log.
            store.snapshot_now().unwrap();
            store.log(commit(4, 4, b"v3")).unwrap();
            final_image = store.image().clone();
        }
        assert!(dir.join(SNAPSHOT_PREV_FILE).exists());
        assert!(dir.join(WAL_PREV_FILE).exists());
        // Corrupt the *current* snapshot AND tear the live log's tail
        // with appended garbage (the crash-mid-append shape): recovery
        // must chain previous snapshot -> previous log -> current log.
        inject_flip_byte(&dir.join(SNAPSHOT_FILE), 12).unwrap();
        let mut garbage = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join(WAL_FILE))
            .unwrap();
        garbage.write_all(&[0xA5; 3]).unwrap();
        drop(garbage);
        let (store, restored) = SiteStore::open(&dir, 0).unwrap();
        assert!(restored.snapshot_was_corrupt);
        assert!(restored.used_previous_snapshot);
        assert!(matches!(restored.wal_tail, WalTail::Torn { .. }));
        assert_eq!(restored.image.as_ref(), Some(&final_image));
        assert_eq!(store.image(), &final_image);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wal_missing_current_snapshot_recovers_from_previous() {
        // The crash window between "rename current -> prev" and
        // "write new current": no current snapshot at all.
        let dir = scratch_dir("prev-missing-cur");
        let final_image;
        {
            let (mut store, _) = SiteStore::open(&dir, 0).unwrap();
            store.seed(state(1, 1), None, Some(b"v0".to_vec())).unwrap();
            store.log(commit(2, 2, b"v1")).unwrap();
            store.snapshot_now().unwrap();
            store.log(commit(3, 3, b"v2")).unwrap();
            final_image = store.image().clone();
        }
        std::fs::rename(dir.join(SNAPSHOT_FILE), dir.join(SNAPSHOT_PREV_FILE)).unwrap();
        let (_, restored) = SiteStore::open(&dir, 0).unwrap();
        assert!(restored.used_previous_snapshot);
        assert!(!restored.snapshot_was_corrupt);
        assert_eq!(restored.image.as_ref(), Some(&final_image));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wal_vote_then_release_round_trip_pending() {
        let dir = scratch_dir("pending");
        {
            let (mut store, _) = SiteStore::open(&dir, 0).unwrap();
            store.seed(state(1, 1), None, Some(b"v0".to_vec())).unwrap();
            store.log(WalRecord::Vote { ticket: 42 }).unwrap();
        }
        {
            let (mut store, restored) = SiteStore::open(&dir, 0).unwrap();
            assert_eq!(
                restored.image.unwrap().pending,
                Some(42),
                "outstanding votes survive the crash"
            );
            store.log(WalRecord::Release { ticket: 42 }).unwrap();
        }
        let (_, restored) = SiteStore::open(&dir, 0).unwrap();
        assert_eq!(restored.image.unwrap().pending, None);
        std::fs::remove_dir_all(&dir).ok();
    }
}
