//! A directory of replicated files — the Gemini framing.
//!
//! The paper comes out of the Gemini replicated *file system* \[BMP87\]:
//! many files, each with its own copy placement and its own partition
//! set, over one population of sites. [`Directory`] provides exactly
//! that: named files created with per-file placements, witnesses and
//! protocols, sharing a single liveness/partition state, so one gateway
//! failure affects every file whose copies straddle it — and each
//! file's quorum adjusts independently, which is the whole point of
//! per-file partition sets.
//!
//! # Examples
//!
//! ```
//! use dynvote_replica::{Directory, Protocol};
//! use dynvote_topology::Network;
//! use dynvote_types::SiteId;
//!
//! let mut dir = Directory::new(Network::single_segment(4));
//! dir.create("etc/passwd", [0, 1, 2], [], Protocol::Odv, "root:*".to_string()).unwrap();
//! dir.create("var/log", [1, 2, 3], [], Protocol::Tdv, String::new()).unwrap();
//!
//! dir.fail_site(SiteId::new(0)); // affects only files with a copy on S0
//! dir.write("etc/passwd", SiteId::new(1), "root:x".to_string()).unwrap();
//! assert_eq!(dir.read("var/log", SiteId::new(3)).unwrap(), "");
//! ```

use std::collections::BTreeMap;

use dynvote_topology::Network;
use dynvote_types::{AccessError, SiteId, SiteSet};

use crate::cluster::{Cluster, ClusterBuilder, Protocol};

/// Errors from directory-level operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DirectoryError {
    /// No file with that name exists.
    NoSuchFile(String),
    /// A file with that name already exists.
    AlreadyExists(String),
    /// The underlying protocol refused the access.
    Access(AccessError),
}

impl core::fmt::Display for DirectoryError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DirectoryError::NoSuchFile(name) => write!(f, "no such file: {name:?}"),
            DirectoryError::AlreadyExists(name) => write!(f, "file exists: {name:?}"),
            DirectoryError::Access(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DirectoryError {}

impl From<AccessError> for DirectoryError {
    fn from(e: AccessError) -> Self {
        DirectoryError::Access(e)
    }
}

/// A set of replicated files over one population of sites.
///
/// Liveness (site up/down) and forced partitions are directory-wide —
/// they model the world — while every file keeps its own consistency
/// state, placement, witnesses and protocol.
pub struct Directory<T> {
    network: Network,
    files: BTreeMap<String, Cluster<T>>,
    /// Liveness applied to every current and future file.
    down: SiteSet,
    forced: Option<Vec<SiteSet>>,
}

impl<T: Clone> Directory<T> {
    /// An empty directory over `network`, all sites up.
    #[must_use]
    pub fn new(network: Network) -> Self {
        Directory {
            network,
            files: BTreeMap::new(),
            down: SiteSet::EMPTY,
            forced: None,
        }
    }

    /// The shared network.
    #[must_use]
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Creates a replicated file.
    ///
    /// # Errors
    ///
    /// Returns [`DirectoryError::AlreadyExists`] for duplicate names.
    ///
    /// # Panics
    ///
    /// Panics (via [`ClusterBuilder`]) when the placement is invalid
    /// for the network.
    pub fn create<C, W>(
        &mut self,
        name: &str,
        copies: C,
        witnesses: W,
        protocol: Protocol,
        initial: T,
    ) -> Result<(), DirectoryError>
    where
        C: IntoIterator<Item = usize>,
        W: IntoIterator<Item = usize>,
    {
        if self.files.contains_key(name) {
            return Err(DirectoryError::AlreadyExists(name.to_string()));
        }
        let mut cluster = ClusterBuilder::new()
            .network(self.network.clone())
            .copies(copies)
            .witnesses(witnesses)
            .protocol(protocol)
            .build_with_value(initial);
        // Bring the new file in line with the directory's world state.
        for site in self.down.iter() {
            cluster.fail_site(site);
        }
        if let Some(groups) = &self.forced {
            cluster.force_partition(groups.clone());
        }
        self.files.insert(name.to_string(), cluster);
        Ok(())
    }

    /// Removes a file, returning whether it existed.
    pub fn remove(&mut self, name: &str) -> bool {
        self.files.remove(name).is_some()
    }

    /// The file names, sorted.
    pub fn file_names(&self) -> impl Iterator<Item = &str> {
        self.files.keys().map(String::as_str)
    }

    /// Direct access to one file's cluster (for inspection).
    #[must_use]
    pub fn file(&self, name: &str) -> Option<&Cluster<T>> {
        self.files.get(name)
    }

    fn file_mut(&mut self, name: &str) -> Result<&mut Cluster<T>, DirectoryError> {
        self.files
            .get_mut(name)
            .ok_or_else(|| DirectoryError::NoSuchFile(name.to_string()))
    }

    /// READ from a file at `origin`.
    ///
    /// # Errors
    ///
    /// [`DirectoryError::NoSuchFile`] or the protocol's ABORT reason.
    pub fn read(&mut self, name: &str, origin: SiteId) -> Result<T, DirectoryError> {
        Ok(self.file_mut(name)?.read(origin)?)
    }

    /// WRITE to a file at `origin`.
    ///
    /// # Errors
    ///
    /// [`DirectoryError::NoSuchFile`] or the protocol's ABORT reason.
    pub fn write(&mut self, name: &str, origin: SiteId, value: T) -> Result<(), DirectoryError> {
        Ok(self.file_mut(name)?.write(origin, value)?)
    }

    /// RECOVER one file's copy at `site`.
    ///
    /// # Errors
    ///
    /// [`DirectoryError::NoSuchFile`] or the protocol's ABORT reason.
    pub fn recover(&mut self, name: &str, site: SiteId) -> Result<(), DirectoryError> {
        Ok(self.file_mut(name)?.recover(site)?)
    }

    /// Runs RECOVER for `site` on **every** file that hosts a copy or
    /// witness there, returning how many succeeded — what a site's
    /// restart script would do.
    pub fn recover_all(&mut self, site: SiteId) -> usize {
        self.files
            .values_mut()
            .filter(|f| f.participants().contains(site))
            .filter_map(|f| f.recover(site).ok())
            .count()
    }

    /// Fails a site, for every file.
    pub fn fail_site(&mut self, site: SiteId) {
        self.down.insert(site);
        for file in self.files.values_mut() {
            file.fail_site(site);
        }
    }

    /// Repairs a site, for every file (liveness only; see
    /// [`Directory::recover_all`]).
    pub fn repair_site(&mut self, site: SiteId) {
        self.down.remove(site);
        for file in self.files.values_mut() {
            file.repair_site(site);
        }
    }

    /// Forces a partition, for every file.
    ///
    /// # Panics
    ///
    /// Panics when the groups overlap.
    pub fn force_partition(&mut self, groups: Vec<SiteSet>) {
        for file in self.files.values_mut() {
            file.heal_partition();
            file.force_partition(groups.clone());
        }
        self.forced = Some(groups);
    }

    /// Heals any forced partition, for every file.
    pub fn heal_partition(&mut self) {
        self.forced = None;
        for file in self.files.values_mut() {
            file.heal_partition();
        }
    }

    /// Total invariant violations across all files.
    #[must_use]
    pub fn total_violations(&self) -> usize {
        self.files
            .values()
            .map(|f| f.checker().violations().len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir() -> Directory<String> {
        let mut d = Directory::new(Network::single_segment(4));
        d.create("a", [0, 1, 2], [], Protocol::Odv, "a0".to_string())
            .unwrap();
        d.create("b", [1, 2, 3], [], Protocol::Ldv, "b0".to_string())
            .unwrap();
        d
    }

    #[test]
    fn files_are_independent() {
        let mut d = dir();
        d.write("a", SiteId::new(0), "a1".into()).unwrap();
        assert_eq!(d.read("b", SiteId::new(3)).unwrap(), "b0");
        assert_eq!(d.read("a", SiteId::new(2)).unwrap(), "a1");
        // Quorum state diverges per file.
        d.fail_site(SiteId::new(0));
        d.write("a", SiteId::new(1), "a2".into()).unwrap();
        assert_eq!(
            d.file("a").unwrap().state_at(SiteId::new(1)).partition,
            SiteSet::from_indices([1, 2])
        );
        assert_eq!(
            d.file("b").unwrap().state_at(SiteId::new(1)).partition,
            SiteSet::from_indices([1, 2, 3]),
            "b has no copy on S0: untouched"
        );
    }

    #[test]
    fn liveness_is_shared() {
        let mut d = dir();
        d.fail_site(SiteId::new(1));
        d.fail_site(SiteId::new(2));
        // a: {0} of 3 — S0 is max, loses? {0} is 1 of 3: refused.
        assert!(d.read("a", SiteId::new(0)).is_err());
        // b: {3} of {1,2,3} — 1 of 3: refused.
        assert!(d.read("b", SiteId::new(3)).is_err());
        d.repair_site(SiteId::new(1));
        assert!(d.read("a", SiteId::new(1)).is_ok());
        assert!(d.read("b", SiteId::new(1)).is_ok());
    }

    #[test]
    fn late_created_files_inherit_world_state() {
        let mut d = dir();
        d.fail_site(SiteId::new(3));
        d.create("c", [2, 3], [], Protocol::Odv, "c0".to_string())
            .unwrap();
        // S3 is down for the new file too: S2 loses the {2,3} tie? max
        // of {2,3} = S2 under the default lexicon — it wins.
        assert!(d.read("c", SiteId::new(2)).is_ok());
        d.fail_site(SiteId::new(2));
        d.repair_site(SiteId::new(3));
        // S3 alone lost the tie (max S2 absent) — refused.
        assert!(d.read("c", SiteId::new(3)).is_err());
    }

    #[test]
    fn recover_all_touches_only_hosting_files() {
        let mut d = dir();
        d.fail_site(SiteId::new(3));
        d.write("b", SiteId::new(1), "b1".into()).unwrap();
        d.repair_site(SiteId::new(3));
        let recovered = d.recover_all(SiteId::new(3));
        assert_eq!(recovered, 1, "only file b hosts S3");
        assert_eq!(d.file("b").unwrap().value_at(SiteId::new(3)), "b1");
    }

    #[test]
    fn name_management() {
        let mut d = dir();
        assert_eq!(d.file_names().collect::<Vec<_>>(), vec!["a", "b"]);
        assert_eq!(
            d.create("a", [0], [], Protocol::Odv, String::new()),
            Err(DirectoryError::AlreadyExists("a".to_string()))
        );
        assert!(d.remove("a"));
        assert!(!d.remove("a"));
        assert!(matches!(
            d.read("a", SiteId::new(0)),
            Err(DirectoryError::NoSuchFile(_))
        ));
    }

    #[test]
    fn partitions_apply_to_every_file() {
        let mut d = dir();
        d.force_partition(vec![
            SiteSet::from_indices([0, 1]),
            SiteSet::from_indices([2, 3]),
        ]);
        // a ({0,1,2}): majority side is {0,1}.
        assert!(d.read("a", SiteId::new(0)).is_ok());
        assert!(d.read("a", SiteId::new(2)).is_err());
        // b ({1,2,3}): majority side is {2,3}.
        assert!(d.read("b", SiteId::new(2)).is_ok());
        assert!(d.read("b", SiteId::new(1)).is_err());
        d.heal_partition();
        assert!(d.read("a", SiteId::new(2)).is_ok());
        assert_eq!(d.total_violations(), 0);
    }
}
