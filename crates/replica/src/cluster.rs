//! The cluster: nodes, the transport carrying protocol messages, and
//! the READ / WRITE / RECOVER operations.

use dynvote_core::decision::Rule;
use dynvote_core::lexicon::Lexicon;
use dynvote_core::ops::{plan_with_witnesses, OpKind};
use dynvote_core::state::{ReplicaState, StateTable};
use dynvote_topology::{Network, ReachabilityCache};
use dynvote_types::{AccessError, AccessKind, SiteId, SiteSet};

use crate::bus::{Bus, FaultRule, Verdict};
use crate::checker::Checker;
use crate::message::{Message, MessageKind, Trace};
use crate::node::{Node, WitnessNode};
use crate::snapshot::Snapshot;
use crate::transport::{BusTransport, Carried, Reply, Transport, WireRequest};

/// Default bound on delivery rounds per operation phase.
const DEFAULT_MAX_ATTEMPTS: u32 = 3;

/// Which consistency protocol the cluster runs.
///
/// `Ldv` and `Odv` share a decision rule — at message level the
/// optimistic/instantaneous distinction is about *when clients invoke
/// operations*, which is the caller's business — but both names are kept
/// so call sites document their intent. The same holds for `Tdv`/`Otdv`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// Majority Consensus Voting (static quorums, version numbers only).
    Mcv,
    /// Dynamic Voting without the tie-break.
    Dv,
    /// Lexicographic Dynamic Voting.
    Ldv,
    /// Optimistic Dynamic Voting (Figures 1–3).
    Odv,
    /// Topological Dynamic Voting.
    Tdv,
    /// Optimistic Topological Dynamic Voting (Figures 5–7).
    Otdv,
}

impl Protocol {
    /// All protocols, in the paper's column order.
    pub const ALL: [Protocol; 6] = [
        Protocol::Mcv,
        Protocol::Dv,
        Protocol::Ldv,
        Protocol::Odv,
        Protocol::Tdv,
        Protocol::Otdv,
    ];

    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Protocol::Mcv => "MCV",
            Protocol::Dv => "DV",
            Protocol::Ldv => "LDV",
            Protocol::Odv => "ODV",
            Protocol::Tdv => "TDV",
            Protocol::Otdv => "OTDV",
        }
    }

    fn rule(self, lexicon: Lexicon) -> Option<Rule> {
        match self {
            Protocol::Mcv => None,
            Protocol::Dv => Some(Rule::dv()),
            Protocol::Ldv | Protocol::Odv => Some(Rule::with_lexicon(lexicon)),
            Protocol::Tdv | Protocol::Otdv => Some(Rule {
                tie_break: Some(lexicon),
                topological: true,
            }),
        }
    }
}

/// Operation counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpStats {
    /// Granted reads.
    pub reads_ok: u64,
    /// Refused reads.
    pub reads_refused: u64,
    /// Granted writes.
    pub writes_ok: u64,
    /// Refused writes.
    pub writes_refused: u64,
    /// Successful recoveries.
    pub recovers_ok: u64,
    /// Refused recoveries.
    pub recovers_refused: u64,
}

impl OpStats {
    /// Total granted operations.
    #[must_use]
    pub fn granted(&self) -> u64 {
        self.reads_ok + self.writes_ok + self.recovers_ok
    }

    /// Total refused operations.
    #[must_use]
    pub fn refused(&self) -> u64 {
        self.reads_refused + self.writes_refused + self.recovers_refused
    }
}

/// One committed operation, as recorded in the cluster's history log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CommittedOp {
    /// What kind of operation committed.
    pub kind: AccessKind,
    /// The coordinating site.
    pub origin: SiteId,
    /// The committed operation number.
    pub op: u64,
    /// The committed version number.
    pub version: u64,
    /// The participants (the new partition set).
    pub participants: SiteSet,
}

/// Retention cap for the history log; beyond it the log stops growing
/// (operation *counting* lives in [`OpStats`] and never stops).
const HISTORY_CAP: usize = 4096;

/// Builder for [`Cluster`].
#[derive(Clone, Debug)]
pub struct ClusterBuilder {
    network: Option<Network>,
    copies: Vec<usize>,
    witnesses: Vec<usize>,
    protocol: Protocol,
    lexicon: Lexicon,
}

impl Default for ClusterBuilder {
    fn default() -> Self {
        ClusterBuilder::new()
    }
}

impl ClusterBuilder {
    /// A builder defaulting to ODV on a single-segment network.
    #[must_use]
    pub fn new() -> Self {
        ClusterBuilder {
            network: None,
            copies: Vec::new(),
            witnesses: Vec::new(),
            protocol: Protocol::Odv,
            lexicon: Lexicon::default(),
        }
    }

    /// Sets the network (default: one segment covering all copies).
    #[must_use]
    pub fn network(mut self, network: Network) -> Self {
        self.network = Some(network);
        self
    }

    /// Sets the copy sites (zero-based indices). Required.
    #[must_use]
    pub fn copies<I: IntoIterator<Item = usize>>(mut self, copies: I) -> Self {
        self.copies = copies.into_iter().collect();
        self
    }

    /// Adds witness sites: voting participants that store the
    /// consistency-control state but no data (the paper's §5 "witness
    /// copies" extension). Not supported with [`Protocol::Mcv`], which
    /// has no partition sets for a witness to carry.
    #[must_use]
    pub fn witnesses<I: IntoIterator<Item = usize>>(mut self, witnesses: I) -> Self {
        self.witnesses = witnesses.into_iter().collect();
        self
    }

    /// Sets the consistency protocol (default ODV).
    #[must_use]
    pub fn protocol(mut self, protocol: Protocol) -> Self {
        self.protocol = protocol;
        self
    }

    /// Sets a custom tie-break ordering (default: lower index ranks
    /// higher).
    #[must_use]
    pub fn lexicon(mut self, lexicon: Lexicon) -> Self {
        self.lexicon = lexicon;
        self
    }

    /// Builds the cluster, storing `initial` at every copy.
    ///
    /// # Panics
    ///
    /// Panics when no copies were declared, or when a copy site is not
    /// part of the supplied network.
    #[must_use]
    pub fn build_with_value<T: Clone>(self, initial: T) -> Cluster<T> {
        self.build_with_transport(BusTransport::new(), initial)
    }

    /// Builds the all-in-process cluster on a caller-supplied
    /// transport. This is the observation seam for tests that need to
    /// see the transport-level event order (e.g. that the commit point
    /// fires strictly before the `COMMIT` fanout) — wrap a
    /// [`BusTransport`] in a recorder and hand it in here.
    ///
    /// # Panics
    ///
    /// Panics when no copies were declared, or when a copy site is not
    /// part of the supplied network.
    #[must_use]
    pub fn build_with_transport<T: Clone, X: Transport<T>>(
        self,
        transport: X,
        initial: T,
    ) -> Cluster<T, X> {
        assert!(!self.copies.is_empty(), "a replicated file needs copies");
        let copies: SiteSet = SiteSet::from_indices(self.copies.iter().copied());
        let witnesses: SiteSet = SiteSet::from_indices(self.witnesses.iter().copied());
        assert!(
            copies.is_disjoint(witnesses),
            "a site cannot be both a copy and a witness"
        );
        assert!(
            witnesses.is_empty() || self.protocol != Protocol::Mcv,
            "witnesses require a dynamic-voting protocol"
        );
        let participants = copies | witnesses;
        let network = self.network.unwrap_or_else(|| {
            let max = participants.max().expect("non-empty").index();
            Network::single_segment(max + 1)
        });
        assert!(
            participants.is_subset_of(network.sites()),
            "every copy and witness must live on a network site"
        );
        let nodes = copies
            .iter()
            .map(|site| Node::new(site, participants, initial.clone()))
            .collect();
        let witness_nodes = witnesses
            .iter()
            .map(|site| WitnessNode::new(site, participants))
            .collect();
        Cluster {
            rule: self.protocol.rule(self.lexicon),
            protocol: self.protocol,
            up: network.sites(),
            reach_cache: std::sync::Arc::new(std::sync::Mutex::new(ReachabilityCache::new(
                &network,
            ))),
            #[cfg(any(test, feature = "stale-read-fault"))]
            stale_read_fault: false,
            network,
            copies,
            witnesses,
            nodes,
            witness_nodes,
            forced_groups: None,
            trace: Trace::default(),
            checker: Checker::new(),
            stats: OpStats::default(),
            history: Vec::new(),
            transport,
            max_attempts: DEFAULT_MAX_ATTEMPTS,
            op_ticket: 0,
        }
    }

    /// Builds one *node's share* of a networked deployment: a cluster
    /// that hosts only the participant at `local` and reaches every
    /// other participant through `transport` — the configuration a
    /// `dynvote-stored` daemon runs.
    ///
    /// Two deliberate differences from the all-in-process build:
    ///
    /// * the up-set stays "everyone up" forever — on a real network the
    ///   coordinator cannot observe remote liveness, only silence, so
    ///   unreachable peers surface as `Timeout` refusals instead of the
    ///   fail-stop model's omniscient down-set;
    /// * operation tickets are namespaced by the local site index (high
    ///   16 bits), so the outstanding votes of concurrent coordinators
    ///   on different daemons can never collide.
    ///
    /// # Panics
    ///
    /// Panics when the placement is invalid (see
    /// [`ClusterBuilder::build_with_value`]) or when `local` is not a
    /// declared participant.
    #[must_use]
    pub fn build_remote<T: Clone, X: Transport<T>>(
        self,
        local: usize,
        transport: X,
        initial: T,
    ) -> Cluster<T, X> {
        assert!(!self.copies.is_empty(), "a replicated file needs copies");
        let copies: SiteSet = SiteSet::from_indices(self.copies.iter().copied());
        let witnesses: SiteSet = SiteSet::from_indices(self.witnesses.iter().copied());
        assert!(
            copies.is_disjoint(witnesses),
            "a site cannot be both a copy and a witness"
        );
        assert!(
            witnesses.is_empty() || self.protocol != Protocol::Mcv,
            "witnesses require a dynamic-voting protocol"
        );
        let participants = copies | witnesses;
        let local_id = SiteId::new(local);
        assert!(
            participants.contains(local_id),
            "the local site must be a declared participant"
        );
        let network = self.network.unwrap_or_else(|| {
            let max = participants.max().expect("non-empty").index();
            Network::single_segment(max + 1)
        });
        assert!(
            participants.is_subset_of(network.sites()),
            "every copy and witness must live on a network site"
        );
        let nodes = if copies.contains(local_id) {
            vec![Node::new(local_id, participants, initial)]
        } else {
            Vec::new()
        };
        let witness_nodes = if witnesses.contains(local_id) {
            vec![WitnessNode::new(local_id, participants)]
        } else {
            Vec::new()
        };
        Cluster {
            rule: self.protocol.rule(self.lexicon),
            protocol: self.protocol,
            up: network.sites(),
            reach_cache: std::sync::Arc::new(std::sync::Mutex::new(ReachabilityCache::new(
                &network,
            ))),
            #[cfg(any(test, feature = "stale-read-fault"))]
            stale_read_fault: false,
            network,
            copies,
            witnesses,
            nodes,
            witness_nodes,
            forced_groups: None,
            trace: Trace::default(),
            checker: Checker::new(),
            stats: OpStats::default(),
            history: Vec::new(),
            transport,
            max_attempts: DEFAULT_MAX_ATTEMPTS,
            op_ticket: (local as u64) << 48,
        }
    }

    /// Builds a cluster that resumes from a durable [`Snapshot`] — a
    /// whole-service restart: every site comes up holding exactly the
    /// control state and data it had persisted.
    ///
    /// # Panics
    ///
    /// Panics when the builder's placement (copies and witnesses) does
    /// not match the snapshot's, or when the placement is invalid.
    #[must_use]
    pub fn build_from_snapshot<T: Clone>(self, snapshot: &Snapshot<T>) -> Cluster<T> {
        // Seed data is irrelevant: every node is overwritten below. Use
        // the first captured value.
        let seed = snapshot
            .copies
            .first()
            .map(|(_, _, value)| value.clone())
            .expect("a snapshot captures at least one copy");
        let mut cluster = self.build_with_value(seed);
        assert!(
            cluster.copies == snapshot.copy_sites()
                && cluster.witnesses == snapshot.witness_sites(),
            "snapshot does not match the builder's placement"
        );
        for (site, state, value) in &snapshot.copies {
            let node = cluster.node_mut(*site);
            node.apply_commit(state.op, state.version, state.partition);
            node.store(value.clone());
        }
        for (site, state) in &snapshot.witnesses {
            cluster
                .witness_node_mut(*site)
                .apply_commit(state.op, state.version, state.partition);
        }
        cluster
    }
}

/// A replicated file: one value, `n` copies, one consistency protocol.
///
/// All operations are *coordinated from an origin site*: the origin
/// broadcasts `START`, reachable copies reply with their control state,
/// the origin runs the majority-partition decision, and — when granted —
/// sends `COMMIT` (and data) to the participants. Message routing
/// respects the current failure/partition state: messages to down or
/// unreachable sites are silently lost, exactly as the paper's fail-stop
/// model prescribes.
///
/// `Cluster` is `Clone` (when its transport is): a clone is an
/// independent replicated file that evolves separately from the
/// original — the branch operation an exhaustive explorer
/// (`dynvote-check`) performs at every state. Only the reachability
/// memo is shared between clones (it is a pure cache keyed by up-set,
/// so sharing changes no observable behavior and keeps branching
/// cheap).
///
/// The transport parameter `X` selects the network under the protocol:
/// the default [`BusTransport`] hosts every participant in-process
/// behind the nemesis fault bus, while `dynvote-store`'s `TcpTransport`
/// runs the *same* operation code against remote peers over real
/// sockets (built via [`ClusterBuilder::build_remote`]).
#[derive(Clone)]
pub struct Cluster<T, X = BusTransport> {
    network: Network,
    protocol: Protocol,
    rule: Option<Rule>,
    copies: SiteSet,
    witnesses: SiteSet,
    /// All network sites currently up (gateways included).
    up: SiteSet,
    nodes: Vec<Node<T>>,
    witness_nodes: Vec<WitnessNode>,
    forced_groups: Option<Vec<SiteSet>>,
    /// Memoized topology-derived reachability, keyed by the up-set.
    /// Interior mutability keeps [`Cluster::group_of`] a `&self` query;
    /// each operation phase asks for the origin's group, and without
    /// the memo every ask re-ran the union-find and allocated fresh
    /// group vectors. Shared (`Arc`) so that cloning a cluster — the
    /// hot branch operation of exhaustive exploration — does not copy
    /// the dense memo table, and so every branch keeps hitting memo
    /// entries interned by its siblings.
    reach_cache: std::sync::Arc<std::sync::Mutex<ReachabilityCache>>,
    /// Deliberate fault for checker self-tests: a granted read serves
    /// the origin's *local* copy (skipping the planned data source)
    /// whenever the origin holds one — the classic "trust the local
    /// replica" optimization that breaks one-copy semantics. Compiled
    /// only for tests and the `stale-read-fault` feature; defaults off.
    #[cfg(any(test, feature = "stale-read-fault"))]
    stale_read_fault: bool,
    trace: Trace,
    checker: Checker,
    stats: OpStats,
    history: Vec<CommittedOp>,
    /// The delivery surface every protocol message crosses.
    transport: X,
    /// Bound on delivery rounds per operation phase (poll retries,
    /// per-participant commit retries, copy-transfer retries).
    max_attempts: u32,
    /// Cluster-wide monotonic operation ticket; outstanding votes are
    /// keyed by it.
    op_ticket: u64,
}

/// The result of the START/STATE polling rounds.
struct Poll {
    table: StateTable,
    /// Participants whose state reply arrived (origin included when it
    /// answers itself).
    heard: SiteSet,
    /// Delivery rounds used.
    attempts: u32,
    /// Reachable, up participants that never answered: message-loss
    /// victims or outstanding-vote abstainers — the coordinator cannot
    /// tell which.
    silent: SiteSet,
    /// `false` when a fault killed the coordinator mid-poll.
    origin_alive: bool,
}

/// Where a granted operation's `COMMIT` fanout actually landed.
struct CommitOutcome {
    applied: SiteSet,
    missing: SiteSet,
}

/// Why a data-copy transfer failed.
enum CopyFailure {
    /// Messages kept getting lost (or the source died); the retry
    /// budget ran out.
    Timeout,
    /// The requesting site itself died during the transfer.
    RequesterDown,
}

/// Serves one protocol request at a locally-hosted participant — the
/// node side of every exchange, shared verbatim by the in-memory
/// transport (invoked through the `serve` callback) and a network
/// daemon answering a framed request for its own site.
///
/// Returns `None` when the addressed site abstains (outstanding vote
/// for a different ticket), is asked for data it does not hold (a
/// witness), or is not hosted here at all.
fn serve_participant<T: Clone>(
    nodes: &mut [Node<T>],
    witness_nodes: &mut [WitnessNode],
    to: SiteId,
    kind: &MessageKind,
    payload: Option<&T>,
    ticket: u64,
    mark_pending: bool,
) -> Option<Reply<T>> {
    if let Some(node) = nodes.iter_mut().find(|n| n.id() == to) {
        match kind {
            MessageKind::StartRequest => {
                match node.pending() {
                    // Outstanding vote for a different operation: the
                    // site abstains. Re-polls of the *same* ticket are
                    // answered (the coordinator lost the first reply).
                    Some(t) if t != ticket => return None,
                    _ => {}
                }
                if mark_pending {
                    node.set_pending(ticket);
                }
                let state = node.state();
                Some(Reply::State {
                    op: state.op,
                    version: state.version,
                    partition: state.partition,
                })
            }
            MessageKind::Commit {
                op,
                version,
                partition,
            } => {
                node.apply_commit(*op, *version, *partition);
                if let Some(value) = payload {
                    node.store(value.clone());
                }
                node.clear_pending();
                Some(Reply::Ack)
            }
            MessageKind::CopyRequest => Some(Reply::Copy {
                version: node.state().version,
                value: node.fetch(),
            }),
            MessageKind::StateReply { .. } | MessageKind::CopyReply => None,
        }
    } else if let Some(witness) = witness_nodes.iter_mut().find(|w| w.id() == to) {
        match kind {
            MessageKind::StartRequest => {
                match witness.pending() {
                    Some(t) if t != ticket => return None,
                    _ => {}
                }
                if mark_pending {
                    witness.set_pending(ticket);
                }
                let state = witness.state();
                Some(Reply::State {
                    op: state.op,
                    version: state.version,
                    partition: state.partition,
                })
            }
            MessageKind::Commit {
                op,
                version,
                partition,
            } => {
                witness.apply_commit(*op, *version, *partition);
                witness.clear_pending();
                Some(Reply::Ack)
            }
            // A witness holds no data to copy.
            MessageKind::CopyRequest | MessageKind::StateReply { .. } | MessageKind::CopyReply => {
                None
            }
        }
    } else {
        None
    }
}

impl<T: Clone, X: Transport<T>> Cluster<T, X> {
    fn node(&self, site: SiteId) -> &Node<T> {
        self.nodes
            .iter()
            .find(|n| n.id() == site)
            .expect("site holds a copy")
    }

    fn node_mut(&mut self, site: SiteId) -> &mut Node<T> {
        self.nodes
            .iter_mut()
            .find(|n| n.id() == site)
            .expect("site holds a copy")
    }

    /// The copy sites (full data replicas).
    #[must_use]
    pub fn copies(&self) -> SiteSet {
        self.copies
    }

    /// The witness sites (state-only voting participants).
    #[must_use]
    pub fn witnesses(&self) -> SiteSet {
        self.witnesses
    }

    /// All voting participants: copies plus witnesses.
    #[must_use]
    pub fn participants(&self) -> SiteSet {
        self.copies | self.witnesses
    }

    fn witness_node(&self, site: SiteId) -> &WitnessNode {
        self.witness_nodes
            .iter()
            .find(|n| n.id() == site)
            .expect("site is a witness")
    }

    fn witness_node_mut(&mut self, site: SiteId) -> &mut WitnessNode {
        self.witness_nodes
            .iter_mut()
            .find(|n| n.id() == site)
            .expect("site is a witness")
    }

    /// The control state stored at any participant (copy or witness).
    fn participant_state(&self, site: SiteId) -> dynvote_core::state::ReplicaState {
        if self.copies.contains(site) {
            self.node(site).state()
        } else {
            self.witness_node(site).state()
        }
    }

    /// The protocol in use.
    #[must_use]
    pub fn protocol(&self) -> Protocol {
        self.protocol
    }

    /// The voting rule the protocol evaluates accesses with — `None`
    /// for MCV, which uses the static-majority path. External invariant
    /// checkers use this to re-evaluate grant decisions from pure state
    /// (see [`dynvote_core::ProtocolSnapshot`]).
    #[must_use]
    pub fn rule(&self) -> Option<&Rule> {
        self.rule.as_ref()
    }

    /// The network topology.
    #[must_use]
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// Sites currently up.
    #[must_use]
    pub fn up_sites(&self) -> SiteSet {
        self.up
    }

    /// The invariant monitor.
    #[must_use]
    pub fn checker(&self) -> &Checker {
        &self.checker
    }

    /// The message trace.
    #[must_use]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Clears the message trace (counters and retained messages).
    pub fn clear_trace(&mut self) {
        self.trace.clear();
    }

    /// Operation counters.
    #[must_use]
    pub fn stats(&self) -> OpStats {
        self.stats
    }

    /// The committed-operation history (most recent last), capped at an
    /// internal retention limit.
    #[must_use]
    pub fn history(&self) -> &[CommittedOp] {
        &self.history
    }

    fn record_op(&mut self, entry: CommittedOp) {
        if self.history.len() < HISTORY_CAP {
            self.history.push(entry);
        }
    }

    /// Captures every participant's durable state and data — the image
    /// a whole-service restart resumes from (see
    /// [`ClusterBuilder::build_from_snapshot`]).
    #[must_use]
    pub fn snapshot(&self) -> Snapshot<T> {
        Snapshot {
            copies: self
                .nodes
                .iter()
                .map(|n| (n.id(), n.state(), n.fetch()))
                .collect(),
            witnesses: self
                .witness_nodes
                .iter()
                .map(|w| (w.id(), w.state()))
                .collect(),
        }
    }

    /// Applies one [`StepEvent`](crate::StepEvent) — the deterministic
    /// step API exhaustive explorers and trace replayers drive (see
    /// [`crate::step`] for the determinism contract).
    ///
    /// Returns `Ok(Some(value))` for a granted read, `Ok(None)` for
    /// every other successful (or purely topological) event.
    ///
    /// # Errors
    ///
    /// Propagates the protocol's refusal for `Recover`, `Read`, and
    /// `Write` events; the cluster state is exactly as the refused
    /// operation left it (for fault-free buses: unchanged).
    pub fn step(&mut self, event: crate::StepEvent<T>) -> Result<Option<T>, AccessError> {
        use crate::StepEvent;
        match event {
            StepEvent::FailSite(site) => {
                self.fail_site(site);
                Ok(None)
            }
            StepEvent::RepairSite(site) => {
                self.repair_site(site);
                Ok(None)
            }
            StepEvent::Recover(site) => self.recover(site).map(|()| None),
            StepEvent::ForcePartition(groups) => {
                self.force_partition(groups);
                Ok(None)
            }
            StepEvent::HealPartition => {
                self.heal_partition();
                Ok(None)
            }
            StepEvent::Read(origin) => self.read(origin).map(Some),
            StepEvent::Write(origin, value) => self.write(origin, value).map(|()| None),
        }
    }

    /// The value stored at one copy (test/observability access — not a
    /// protocol read).
    #[must_use]
    pub fn value_at(&self, site: SiteId) -> T {
        self.node(site).fetch()
    }

    /// The control state at one participant (copy or witness).
    #[must_use]
    pub fn state_at(&self, site: SiteId) -> dynvote_core::state::ReplicaState {
        self.participant_state(site)
    }

    // ---- fault surface -----------------------------------------------------

    /// Fails a site (copy, witness, or gateway). Idempotent. Sites
    /// hosted elsewhere (a [`ClusterBuilder::build_remote`] deployment)
    /// only leave the up-set — their node state is their own daemon's.
    pub fn fail_site(&mut self, site: SiteId) {
        self.up.remove(site);
        if let Some(node) = self.nodes.iter_mut().find(|n| n.id() == site) {
            node.fail();
        } else if let Some(witness) = self.witness_nodes.iter_mut().find(|w| w.id() == site) {
            witness.fail();
        }
    }

    /// Repairs a site. For copies this restores *liveness only*; rejoin
    /// the majority partition with [`Cluster::recover`].
    pub fn repair_site(&mut self, site: SiteId) {
        self.up.insert(site);
        if let Some(node) = self.nodes.iter_mut().find(|n| n.id() == site) {
            node.repair();
        } else if let Some(witness) = self.witness_nodes.iter_mut().find(|w| w.id() == site) {
            witness.repair();
        }
    }

    /// Forces an explicit partition (groups of mutually-communicating
    /// sites), overriding the topology-derived reachability. Groups must
    /// be pairwise disjoint. Down sites are excluded automatically.
    ///
    /// Note: with the topological protocols, forced partitions must not
    /// split a segment — segments are non-partitionable by definition,
    /// and the vote-claiming rule is only sound under that assumption.
    pub fn force_partition(&mut self, groups: Vec<SiteSet>) {
        let mut seen = SiteSet::EMPTY;
        for g in &groups {
            assert!(seen.is_disjoint(*g), "groups must be pairwise disjoint");
            seen |= *g;
        }
        self.forced_groups = Some(groups);
    }

    /// Removes a forced partition; reachability follows the topology
    /// again.
    pub fn heal_partition(&mut self) {
        self.forced_groups = None;
    }

    /// The group of up sites currently communicating with `origin`.
    #[must_use]
    pub fn group_of(&self, origin: SiteId) -> Option<SiteSet> {
        if !self.up.contains(origin) {
            return None;
        }
        match &self.forced_groups {
            Some(groups) => groups
                .iter()
                .map(|g| *g & self.up)
                .find(|g| g.contains(origin)),
            None => self
                .reach_cache
                .lock()
                .expect("reachability memo poisoned")
                .get(&self.network, self.up)
                .group_of(origin),
        }
    }

    // ---- transport surface -------------------------------------------------

    /// The transport carrying this cluster's protocol messages.
    #[must_use]
    pub fn transport(&self) -> &X {
        &self.transport
    }

    /// Mutable access to the transport (admin surface: fault rules for
    /// the in-memory bus, link rules and peer stats for a networked
    /// transport).
    pub fn transport_mut(&mut self) -> &mut X {
        &mut self.transport
    }

    /// Arms (or disarms) the deliberate stale-read fault: a granted
    /// read at a copy-holding origin serves the origin's **local** data
    /// instead of the planner's chosen source — the classic "trust the
    /// local replica" bug. Exists so the model checker's own tests can
    /// prove the invariant suite catches a real one-copy violation;
    /// compiled only for tests and under the `stale-read-fault`
    /// feature, and off by default even then.
    #[cfg(any(test, feature = "stale-read-fault"))]
    pub fn set_stale_read_fault(&mut self, armed: bool) {
        self.stale_read_fault = armed;
    }

    /// Bounds how many delivery rounds each operation phase may use
    /// before giving up (minimum 1; default 3).
    pub fn set_max_attempts(&mut self, attempts: u32) {
        self.max_attempts = attempts.max(1);
    }

    /// The per-phase delivery-round bound.
    #[must_use]
    pub fn max_attempts(&self) -> u32 {
        self.max_attempts
    }

    /// Participants currently holding an outstanding vote: they
    /// answered a `START` for an operation whose outcome they have not
    /// seen, and abstain from every other operation until it resolves.
    #[must_use]
    pub fn pending_sites(&self) -> SiteSet {
        let mut set = SiteSet::EMPTY;
        for node in &self.nodes {
            if node.pending().is_some() {
                set.insert(node.id());
            }
        }
        for witness in &self.witness_nodes {
            if witness.pending().is_some() {
                set.insert(witness.id());
            }
        }
        set
    }

    fn participant_pending(&self, site: SiteId) -> Option<u64> {
        if self.copies.contains(site) {
            self.node(site).pending()
        } else {
            self.witness_node(site).pending()
        }
    }

    /// The outstanding-vote ticket held at one participant, if any —
    /// the durable layer persists this alongside ⟨o, v, P⟩, because a
    /// site that forgot its vote across a crash could vote again in a
    /// conflicting operation.
    #[must_use]
    pub fn pending_at(&self, site: SiteId) -> Option<u64> {
        self.participant_pending(site)
    }

    /// Installs a restored durable image at a participant hosted in
    /// this process — the boot path of a persistent daemon: the node
    /// comes up holding exactly the ⟨o, v, P⟩, data, and outstanding
    /// vote it had fsync'd before the crash. `value` is ignored for
    /// witnesses (they hold no data); `None` at a copy keeps the
    /// builder's seed value.
    ///
    /// # Panics
    ///
    /// Panics when `site` is not hosted in this process.
    pub fn install_durable_state(
        &mut self,
        site: SiteId,
        state: dynvote_core::state::ReplicaState,
        value: Option<T>,
        pending: Option<u64>,
    ) {
        if self.copies.contains(site) {
            let node = self.node_mut(site);
            node.apply_commit(state.op, state.version, state.partition);
            if let Some(value) = value {
                node.store(value);
            }
            match pending {
                Some(ticket) => node.set_pending(ticket),
                None => node.clear_pending(),
            }
        } else {
            let witness = self.witness_node_mut(site);
            witness.apply_commit(state.op, state.version, state.partition);
            match pending {
                Some(ticket) => witness.set_pending(ticket),
                None => witness.clear_pending(),
            }
        }
    }

    /// The last vote ticket this cluster's coordinator side issued
    /// (`0` before the first operation). Together with
    /// [`Cluster::advance_ticket_past`], this lets a restart path keep
    /// ticket issuance monotone across process incarnations.
    #[must_use]
    pub fn last_ticket(&self) -> u64 {
        self.op_ticket
    }

    /// Raises the ticket counter so every future ticket exceeds
    /// `floor`. A restarted daemon calls this with its boot-epoch salt:
    /// reissuing a pre-crash ticket number would look *current* to a
    /// site the previous incarnation left wedged under that ticket,
    /// silently lifting the wedge that prevents lineage forks.
    pub fn advance_ticket_past(&mut self, floor: u64) {
        self.op_ticket = self.op_ticket.max(floor);
    }

    /// Applies the abort oracle to the participants hosted in *this*
    /// process: releases every outstanding vote for `ticket` except at
    /// the sites in `keep`. A network daemon calls this when a release
    /// frame arrives for its local site; coordinators use
    /// [`Cluster::release_pending`], which also forwards the release
    /// through the transport.
    pub fn local_release(&mut self, ticket: u64, keep: SiteSet) {
        for node in &mut self.nodes {
            if node.pending() == Some(ticket) && !keep.contains(node.id()) {
                node.clear_pending();
            }
        }
        for witness in &mut self.witness_nodes {
            if witness.pending() == Some(ticket) && !keep.contains(witness.id()) {
                witness.clear_pending();
            }
        }
    }

    /// Releases every outstanding vote for `ticket` except at the
    /// sites in `keep` — the abort oracle: a replier whose vote is
    /// *provably* non-binding (the operation was refused or aborted,
    /// or its reply was never counted and it did not become a
    /// participant) times out and frees itself. Participants whose
    /// `COMMIT` may still be outstanding are in `keep` and stay
    /// wedged. Locally-hosted participants release synchronously; the
    /// transport forwards the release to remote peers best-effort.
    fn release_pending(&mut self, ticket: u64, keep: SiteSet) {
        self.local_release(ticket, keep);
        self.transport.release(ticket, keep);
    }

    fn next_ticket(&mut self) -> u64 {
        self.op_ticket += 1;
        self.op_ticket
    }

    // ---- the protocol rounds -----------------------------------------------

    /// Serves one incoming protocol request at a participant hosted in
    /// this process — the entry point a network daemon routes framed
    /// peer requests through, so remote delivery runs exactly the code
    /// the in-memory transport's callback runs. Records nothing on the
    /// trace (the trace belongs to the *coordinator's* side of an
    /// exchange).
    pub fn serve_at(
        &mut self,
        to: SiteId,
        kind: &MessageKind,
        payload: Option<&T>,
        ticket: u64,
        mark_pending: bool,
    ) -> Option<Reply<T>> {
        serve_participant(
            &mut self.nodes,
            &mut self.witness_nodes,
            to,
            kind,
            payload,
            ticket,
            mark_pending,
        )
    }

    /// Runs one request/reply exchange through the transport: records
    /// the request (and a duplicate's second wire copy) on the trace,
    /// lets the transport deliver it — serving locally-hosted
    /// recipients via [`serve_participant`] — then records the reply's
    /// wire copy and applies every crash side effect the fault surface
    /// reported. Only called for recipients that are up and reachable —
    /// losses from the failure model itself never reach the transport.
    fn exchange(
        &mut self,
        message: Message,
        payload: Option<&T>,
        ticket: u64,
        mark_pending: bool,
    ) -> Carried<T> {
        self.trace.record(message.clone());
        let Cluster {
            transport,
            nodes,
            witness_nodes,
            ..
        } = self;
        let mut serve = |msg: &Message, payload: Option<&T>| {
            serve_participant(
                nodes,
                witness_nodes,
                msg.to,
                &msg.kind,
                payload,
                ticket,
                mark_pending,
            )
        };
        let carried = transport.carry(
            WireRequest {
                message: &message,
                payload,
                ticket,
                mark_pending,
            },
            &mut serve,
        );
        match carried.request {
            // Two wire copies, processed once: handlers are keyed by
            // the operation ticket, so the second is ignored.
            Verdict::Duplicate => self.trace.record(message.clone()),
            // The recipient dies *before* processing: the message was
            // sent (it is on the trace) but never took effect.
            Verdict::CrashRecipient => self.fail_site(message.to),
            // Delivered (for a commit) or moot (for a poll) — either
            // way the sender is now dead.
            Verdict::CrashSender => self.fail_site(message.from),
            Verdict::Deliver | Verdict::Drop | Verdict::Delay => {}
        }
        if let Some(response) = &carried.response {
            if let Some(wire) = &response.wire {
                self.trace.record(wire.clone());
                match response.verdict {
                    Verdict::Duplicate => self.trace.record(wire.clone()),
                    Verdict::CrashRecipient => self.fail_site(wire.to),
                    Verdict::CrashSender => self.fail_site(wire.from),
                    Verdict::Deliver | Verdict::Drop | Verdict::Delay => {}
                }
            }
        }
        carried
    }

    /// START/STATE polling with bounded retry: broadcast, collect the
    /// replies that actually arrive, re-poll the silent, give up after
    /// [`Cluster::max_attempts`] rounds. `mark_pending` (dynamic
    /// protocols) makes every replier record an outstanding vote for
    /// `ticket`; a site already holding an outstanding vote for a
    /// *different* ticket abstains — to the coordinator it is
    /// indistinguishable from a down site.
    fn poll_phase(
        &mut self,
        origin: SiteId,
        group: SiteSet,
        ticket: u64,
        mark_pending: bool,
    ) -> Poll {
        let participants = self.participants();
        let mut table = StateTable::fresh(participants);
        let mut heard = SiteSet::EMPTY;
        if participants.contains(origin) {
            match self.participant_pending(origin) {
                // The origin holds an outstanding vote for another
                // operation: it abstains even from itself, exactly as
                // it would ignore a remote START.
                Some(t) if t != ticket => {}
                _ => {
                    table.set(origin, self.participant_state(origin));
                    heard.insert(origin);
                }
            }
        }
        let mut attempts = 0;
        loop {
            let targets = ((group & participants & self.up) - heard).without(origin);
            if attempts >= self.max_attempts || (attempts > 0 && targets.is_empty()) {
                break;
            }
            // Round one: "a message is broadcast to all sites" — one
            // START per participant, lost outright when the site is
            // down or unreachable. Retries re-poll only the silent
            // reachable sites.
            let broadcast = if attempts == 0 {
                participants.without(origin)
            } else {
                targets
            };
            attempts += 1;
            for site in broadcast.iter() {
                if !self.up.contains(origin) {
                    break;
                }
                let start = Message {
                    from: origin,
                    to: site,
                    kind: MessageKind::StartRequest,
                };
                if !targets.contains(site) {
                    // Down or unreachable: lost by the failure model,
                    // not the transport — but it was sent, so it is
                    // traced.
                    self.trace.record(start);
                    continue;
                }
                let carried = self.exchange(start, None, ticket, mark_pending);
                if !self.up.contains(origin) {
                    break; // a crash fault killed the origin mid-poll
                }
                // Silence covers a lost request, a lost reply's
                // sibling (none), an abstaining wedged site, and (on a
                // real network) an unreachable peer — all one case to
                // the coordinator.
                let Some(response) = carried.response else {
                    continue;
                };
                if response.arrived() {
                    if let Reply::State {
                        op,
                        version,
                        partition,
                    } = response.body
                    {
                        heard.insert(site);
                        table.set(
                            site,
                            ReplicaState {
                                op,
                                version,
                                partition,
                            },
                        );
                    }
                }
            }
            if !self.up.contains(origin) {
                break;
            }
        }
        let silent = ((group & participants & self.up) - heard).without(origin);
        Poll {
            table,
            heard,
            attempts,
            silent,
            origin_alive: self.up.contains(origin),
        }
    }

    /// Installs one commit at a participant: control state, the write
    /// value when one rides the commit, and release of the site's
    /// outstanding vote — receiving the `COMMIT` is how a voter learns
    /// its operation resolved.
    fn apply_commit_at(
        &mut self,
        site: SiteId,
        op: u64,
        version: u64,
        partition: SiteSet,
        value: Option<&T>,
    ) {
        if self.copies.contains(site) {
            let node = self.node_mut(site);
            node.apply_commit(op, version, partition);
            if let Some(value) = value {
                node.store(value.clone());
            }
            node.clear_pending();
        } else {
            let witness = self.witness_node_mut(site);
            witness.apply_commit(op, version, partition);
            witness.clear_pending();
        }
    }

    /// COMMIT fanout with bounded per-participant retry. The
    /// coordinator installs its own commit first, then sends one
    /// `COMMIT` per other participant, retrying losses up to
    /// [`Cluster::max_attempts`] times. Delayed commits arrive after
    /// every on-time one (reordering); a participant that dies, or
    /// whose retries run out, ends up in `missing` — and, having
    /// voted, stays wedged on its outstanding vote.
    fn commit_phase(
        &mut self,
        origin: SiteId,
        ticket: u64,
        participants: SiteSet,
        op: u64,
        version: u64,
        value: Option<&T>,
    ) -> CommitOutcome {
        // The commit point: a durable transport records ⟨ticket, o, v,
        // P, value⟩ (fsync'd) before the commit has *any* effect —
        // the coordinator's own apply included. A crashed coordinator's
        // successor answers vote probes from that record; without it, a
        // ticket whose commit landed only locally would look
        // releasable, and releasing a committed participant's vote can
        // fork the partition lineage.
        self.transport.commit_point(
            ticket,
            ReplicaState {
                op,
                version,
                partition: participants,
            },
            value,
        );
        let mut applied = SiteSet::EMPTY;
        let mut missing = SiteSet::EMPTY;
        let mut late = Vec::new();
        if participants.contains(origin) {
            self.apply_commit_at(origin, op, version, participants, value);
            applied.insert(origin);
        }
        for site in participants.without(origin).iter() {
            if !self.up.contains(origin) {
                // The coordinator died mid-fanout: the remaining
                // commits were never sent.
                missing.insert(site);
                continue;
            }
            // `installed`: the commit was acknowledged (the transport
            // served it at the recipient). `delayed`: the fault
            // surface will deliver it after every on-time commit.
            let mut installed = false;
            let mut delayed = false;
            for _ in 0..self.max_attempts {
                let commit = Message {
                    from: origin,
                    to: site,
                    kind: MessageKind::Commit {
                        op,
                        version,
                        partition: participants,
                    },
                };
                if !self.up.contains(site) {
                    // The participant died after voting: the commit
                    // goes into the void (traced, not transport-
                    // faulted).
                    self.trace.record(commit);
                    break;
                }
                let carried = self.exchange(commit, value, 0, false);
                if carried.response.is_some() {
                    installed = true;
                    break;
                }
                if matches!(carried.request, Verdict::Delay) {
                    delayed = true;
                    break;
                }
                // Lost: retry.
            }
            if installed {
                applied.insert(site);
            } else if delayed {
                late.push(site);
            } else {
                missing.insert(site);
            }
        }
        // Delayed commits land after the on-time ones — reordered but
        // still within the operation's horizon. Delay is an in-memory
        // bus verdict, so the recipient is always hosted locally.
        for site in late {
            self.apply_commit_at(site, op, version, participants, value);
            applied.insert(site);
        }
        CommitOutcome { applied, missing }
    }

    /// Moves the file from `source` to `requester` through the
    /// transport: one request/reply pair per attempt. Returns the
    /// value together with the version number it carries at the source
    /// — what a real copy reply ships, and what the invariant checker
    /// grades a read against.
    fn transfer_copy(
        &mut self,
        requester: SiteId,
        source: SiteId,
    ) -> Result<(T, u64), CopyFailure> {
        if requester == source {
            let node = self.node(source);
            return Ok((node.fetch(), node.state().version));
        }
        for _ in 0..self.max_attempts {
            if !self.up.contains(requester) {
                return Err(CopyFailure::RequesterDown);
            }
            if !self.up.contains(source) {
                break;
            }
            let request = Message {
                from: requester,
                to: source,
                kind: MessageKind::CopyRequest,
            };
            let carried = self.exchange(request, None, 0, false);
            if let Some(response) = carried.response {
                if response.arrived() {
                    if !self.up.contains(requester) {
                        return Err(CopyFailure::RequesterDown);
                    }
                    if let Reply::Copy { version, value } = response.body {
                        return Ok((value, version));
                    }
                }
            }
            if !self.up.contains(requester) {
                return Err(CopyFailure::RequesterDown);
            }
        }
        Err(CopyFailure::Timeout)
    }

    /// Maps a quorum refusal to [`AccessError::Timeout`] when
    /// reachable participants stayed silent: lost messages and
    /// outstanding-vote abstentions look identical from the
    /// coordinator's side, so it cannot honestly blame a partition.
    fn timeout_or(
        &self,
        refusal: AccessError,
        kind: AccessKind,
        origin: SiteId,
        poll: &Poll,
    ) -> AccessError {
        if poll.silent.is_empty() {
            refusal
        } else {
            AccessError::Timeout {
                kind,
                origin,
                attempts: poll.attempts,
            }
        }
    }

    fn origin_group(&self, origin: SiteId, kind: AccessKind) -> Result<SiteSet, AccessError> {
        let _ = kind;
        self.group_of(origin)
            .ok_or(AccessError::OriginUnavailable { origin })
    }

    /// Non-mutating probe: would a read at `origin` be granted right
    /// now? Exchanges no messages and commits nothing — the same
    /// question the availability simulator's
    /// [`dynvote_core::policy::AvailabilityPolicy::is_available`] asks,
    /// answered by the message-level state (the equivalence of the two
    /// is an integration test).
    #[must_use]
    pub fn probe(&self, origin: SiteId) -> bool {
        let Some(group) = self.group_of(origin) else {
            return false;
        };
        match &self.rule {
            None => self.mcv_grants(group & self.copies),
            Some(rule) => {
                // Sites wedged on an outstanding vote would not answer
                // a real poll, so the probe must not count them.
                let answering = group - self.pending_sites();
                let participants = self.participants();
                let mut table = StateTable::fresh(participants);
                for site in (answering & participants).iter() {
                    table.set(site, self.participant_state(site));
                }
                dynvote_core::ops::plan_with_witnesses(
                    OpKind::Read,
                    answering,
                    self.copies,
                    self.witnesses,
                    &table,
                    rule,
                    Some(&self.network),
                )
                .is_ok()
            }
        }
    }

    /// Whether *any* up site could currently get a read granted — the
    /// cluster-level availability signal ("a single user that can
    /// access any of the sites").
    #[must_use]
    pub fn is_available(&self) -> bool {
        self.up.iter().any(|origin| self.probe(origin))
    }

    /// Algorithm 1's full decision trace for a (non-mutating) read
    /// probe at `origin`, rendered for humans. Returns `None` when the
    /// origin is down; for MCV (which has no partition sets) a short
    /// quorum summary is produced instead.
    #[must_use]
    pub fn explain(&self, origin: SiteId) -> Option<String> {
        let group = self.group_of(origin)?;
        match &self.rule {
            None => {
                let reachable = group & self.copies;
                Some(format!(
                    "R = {} ({} of {} copies reachable)\n=> {}\n",
                    reachable,
                    reachable.len(),
                    self.copies.len(),
                    if self.mcv_grants(reachable) {
                        "GRANTED: static quorum met"
                    } else {
                        "REFUSED: static quorum not met"
                    }
                ))
            }
            Some(rule) => {
                // Wedged sites abstain: the explanation reflects the
                // replies a real poll would collect.
                let answering = group - self.pending_sites();
                let participants = self.participants();
                let mut table = StateTable::fresh(participants);
                for site in (answering & participants).iter() {
                    table.set(site, self.participant_state(site));
                }
                let decision = dynvote_core::decision::decide(
                    answering,
                    participants,
                    &table,
                    rule,
                    Some(&self.network),
                );
                Some(dynvote_core::decision::explain(&decision))
            }
        }
    }

    /// READ (Figure 1 / Figure 5): returns the current value.
    ///
    /// # Errors
    ///
    /// Returns the ABORT reason when the origin's group is not the
    /// majority partition (or, for MCV, holds no quorum).
    pub fn read(&mut self, origin: SiteId) -> Result<T, AccessError> {
        let group = self.origin_group(origin, AccessKind::Read)?;
        let result = match self.rule.clone() {
            None => self.mcv_read(origin, group),
            Some(rule) => self.dynamic_read(origin, group, &rule),
        };
        match &result {
            Ok(_) => self.stats.reads_ok += 1,
            Err(_) => self.stats.reads_refused += 1,
        }
        result
    }

    fn dynamic_read(
        &mut self,
        origin: SiteId,
        group: SiteSet,
        rule: &Rule,
    ) -> Result<T, AccessError> {
        let ticket = self.next_ticket();
        let poll = self.poll_phase(origin, group, ticket, true);
        if !poll.origin_alive {
            self.release_pending(ticket, SiteSet::EMPTY);
            return Err(AccessError::OriginUnavailable { origin });
        }
        let p = match plan_with_witnesses(
            OpKind::Read,
            poll.heard,
            self.copies,
            self.witnesses,
            &poll.table,
            rule,
            Some(&self.network),
        ) {
            Ok(p) => p,
            Err(refusal) => {
                self.release_pending(ticket, SiteSet::EMPTY);
                return Err(self.timeout_or(refusal, AccessKind::Read, origin, &poll));
            }
        };
        #[allow(unused_mut)]
        let mut data_source = p.data_source;
        #[cfg(any(test, feature = "stale-read-fault"))]
        if self.stale_read_fault && self.copies.contains(origin) {
            // The injected bug: trust the local replica, skip the
            // planner's source. Correct when the origin is current,
            // silently stale when it is not.
            data_source = origin;
        }
        // The version actually being served — for a correct cluster this
        // equals the planned `p.new_version` (the source is a current
        // copy), but the checker must grade what was *served*, not what
        // was planned, or a bug in source selection would grade itself.
        // It rides the copy reply: on a real network the coordinator
        // has no other way to know what the source shipped.
        let (value, served_version) = match self.transfer_copy(origin, data_source) {
            Ok(pair) => pair,
            Err(failure) => {
                self.release_pending(ticket, SiteSet::EMPTY);
                return Err(match failure {
                    CopyFailure::RequesterDown => AccessError::OriginUnavailable { origin },
                    CopyFailure::Timeout => AccessError::Timeout {
                        kind: AccessKind::Read,
                        origin,
                        attempts: self.max_attempts,
                    },
                });
            }
        };
        let outcome = self.commit_phase(
            origin,
            ticket,
            p.participants,
            p.new_op,
            p.new_version,
            None,
        );
        if !outcome.applied.is_empty() {
            self.checker.note_commit(p.new_op, p.participants);
        }
        self.release_pending(ticket, outcome.missing);
        if outcome.missing.is_empty() {
            self.checker.note_read(served_version);
            self.record_op(CommittedOp {
                kind: AccessKind::Read,
                origin,
                op: p.new_op,
                version: p.new_version,
                participants: p.participants,
            });
            Ok(value)
        } else {
            // The absorption commit did not close everywhere: serving
            // the value would claim a success the cluster cannot stand
            // behind. The value is discarded.
            Err(AccessError::Indeterminate {
                kind: AccessKind::Read,
                origin,
                applied: outcome.applied,
                missing: outcome.missing,
            })
        }
    }

    /// WRITE (Figure 2 / Figure 6): replaces the value.
    ///
    /// # Errors
    ///
    /// Returns the ABORT reason when the origin's group is not the
    /// majority partition (or, for MCV, holds no quorum).
    pub fn write(&mut self, origin: SiteId, value: T) -> Result<(), AccessError> {
        let group = self.origin_group(origin, AccessKind::Write)?;
        let result = match self.rule.clone() {
            None => self.mcv_write(origin, group, value),
            Some(rule) => self.dynamic_write(origin, group, value, &rule),
        };
        match &result {
            Ok(()) => self.stats.writes_ok += 1,
            Err(_) => self.stats.writes_refused += 1,
        }
        result
    }

    /// WRITE, batched: commits `values` as `values.len()` consecutive
    /// write operations decided by ONE poll and closed by ONE commit
    /// exchange. The quorum question is identical for every write in
    /// the batch — the group either holds a strict majority of P_m or
    /// it does not — so one ruling covers all of them, and the single
    /// COMMIT installs ⟨o + K, v + K, P⟩ with the *last* value: exactly
    /// the state K serial writes would leave (each overwriting its
    /// predecessor), with the same per-write history entries and
    /// checker lineage notes.
    ///
    /// All-or-nothing by construction: one decision grants or refuses
    /// the whole batch, so a client never sees write i+1 acknowledged
    /// while write i failed. A partial commit surfaces as
    /// [`AccessError::Indeterminate`] for every write — the honest
    /// answer, since the one fanout carried them all.
    ///
    /// Returns one result per value, in order; `Ok` carries the
    /// committed ⟨o, v, P⟩ entry for that write.
    pub fn write_batch(
        &mut self,
        origin: SiteId,
        values: Vec<T>,
    ) -> Vec<Result<CommittedOp, AccessError>> {
        let count = values.len();
        if count == 0 {
            return Vec::new();
        }
        let refuse_all = |this: &mut Self, err: AccessError| {
            this.stats.writes_refused += count as u64;
            (0..count).map(|_| Err(err.clone())).collect()
        };
        let group = match self.origin_group(origin, AccessKind::Write) {
            Ok(group) => group,
            Err(err) => return refuse_all(self, err),
        };
        let Some(rule) = self.rule.clone() else {
            // MCV quorums count static votes, not a partition lineage:
            // there is no per-batch poll to amortize. Serve serially.
            return values
                .into_iter()
                .map(|value| {
                    self.write(origin, value).map(|()| {
                        self.history
                            .last()
                            .copied()
                            .expect("a granted write records its history entry")
                    })
                })
                .collect();
        };
        let ticket = self.next_ticket();
        let poll = self.poll_phase(origin, group, ticket, true);
        if !poll.origin_alive {
            self.release_pending(ticket, SiteSet::EMPTY);
            return refuse_all(self, AccessError::OriginUnavailable { origin });
        }
        let p = match plan_with_witnesses(
            OpKind::Write,
            poll.heard,
            self.copies,
            self.witnesses,
            &poll.table,
            &rule,
            Some(&self.network),
        ) {
            Ok(p) => p,
            Err(refusal) => {
                self.release_pending(ticket, SiteSet::EMPTY);
                let err = self.timeout_or(refusal, AccessKind::Write, origin, &poll);
                return refuse_all(self, err);
            }
        };
        // The plan grants the first write ⟨o+1, v+1⟩; the batch's K-th
        // lands at ⟨o+K, v+K⟩. Only the final state and the final value
        // ride the COMMIT — the intermediate values are overwritten
        // before any reader could be served, exactly as under K serial
        // writes back to back.
        let steps = (count - 1) as u64;
        let final_op = p.new_op + steps;
        let final_version = p.new_version + steps;
        let last = values
            .last()
            .cloned()
            .expect("batch verified non-empty above");
        let outcome = self.commit_phase(
            origin,
            ticket,
            p.participants,
            final_op,
            final_version,
            Some(&last),
        );
        if !outcome.applied.is_empty() {
            for i in 0..count as u64 {
                self.checker.note_commit(p.new_op + i, p.participants);
            }
        }
        self.release_pending(ticket, outcome.missing);
        if outcome.missing.is_empty() {
            self.stats.writes_ok += count as u64;
            (0..count as u64)
                .map(|i| {
                    self.checker.note_write(p.new_version + i);
                    let entry = CommittedOp {
                        kind: AccessKind::Write,
                        origin,
                        op: p.new_op + i,
                        version: p.new_version + i,
                        participants: p.participants,
                    };
                    self.record_op(entry);
                    Ok(entry)
                })
                .collect()
        } else {
            refuse_all(
                self,
                AccessError::Indeterminate {
                    kind: AccessKind::Write,
                    origin,
                    applied: outcome.applied,
                    missing: outcome.missing,
                },
            )
        }
    }

    fn dynamic_write(
        &mut self,
        origin: SiteId,
        group: SiteSet,
        value: T,
        rule: &Rule,
    ) -> Result<(), AccessError> {
        let ticket = self.next_ticket();
        let poll = self.poll_phase(origin, group, ticket, true);
        if !poll.origin_alive {
            self.release_pending(ticket, SiteSet::EMPTY);
            return Err(AccessError::OriginUnavailable { origin });
        }
        let p = match plan_with_witnesses(
            OpKind::Write,
            poll.heard,
            self.copies,
            self.witnesses,
            &poll.table,
            rule,
            Some(&self.network),
        ) {
            Ok(p) => p,
            Err(refusal) => {
                self.release_pending(ticket, SiteSet::EMPTY);
                return Err(self.timeout_or(refusal, AccessKind::Write, origin, &poll));
            }
        };
        // The value rides the COMMIT: a copy that never receives the
        // commit keeps its old data — that is the partial-commit
        // divergence this layer exists to exercise.
        let outcome = self.commit_phase(
            origin,
            ticket,
            p.participants,
            p.new_op,
            p.new_version,
            Some(&value),
        );
        if !outcome.applied.is_empty() {
            self.checker.note_commit(p.new_op, p.participants);
        }
        self.release_pending(ticket, outcome.missing);
        if outcome.missing.is_empty() {
            self.checker.note_write(p.new_version);
            self.record_op(CommittedOp {
                kind: AccessKind::Write,
                origin,
                op: p.new_op,
                version: p.new_version,
                participants: p.participants,
            });
            Ok(())
        } else {
            Err(AccessError::Indeterminate {
                kind: AccessKind::Write,
                origin,
                applied: outcome.applied,
                missing: outcome.missing,
            })
        }
    }

    /// RECOVER (Figure 3 / Figure 7): reintegrates the (repaired)
    /// `site`, copying the file first when its copy is stale. One
    /// attempt; the paper's "repeat until successful" loop is the
    /// caller's retry policy.
    ///
    /// # Errors
    ///
    /// Returns the ABORT reason when the site's group is not the
    /// majority partition, and [`AccessError::OriginUnavailable`] when
    /// the site is down (or MCV is in use — MCV has no recovery step;
    /// a repaired copy is simply consulted again).
    pub fn recover(&mut self, site: SiteId) -> Result<(), AccessError> {
        let result = self.recover_inner(site);
        match &result {
            Ok(()) => self.stats.recovers_ok += 1,
            Err(_) => self.stats.recovers_refused += 1,
        }
        result
    }

    fn recover_inner(&mut self, site: SiteId) -> Result<(), AccessError> {
        let Some(rule) = self.rule.clone() else {
            // MCV: version numbers already tell readers what is stale;
            // there is no partition set to rejoin.
            return Ok(());
        };
        let group = self.origin_group(site, AccessKind::Recover)?;
        let ticket = self.next_ticket();
        let was_wedged = self.participant_pending(site).is_some_and(|t| t != ticket);
        let mut poll = self.poll_phase(site, group, ticket, true);
        if !poll.origin_alive {
            self.release_pending(ticket, SiteSet::EMPTY);
            return Err(AccessError::OriginUnavailable { origin: site });
        }
        if was_wedged {
            // A recovering site with an outstanding vote cannot trust
            // its own stored state: its vote may have elected a
            // partition it never saw committed. It needs at least one
            // real reply, and joins the plan as a blank slate — op 0
            // never enters the quorum computation, version 0 forces a
            // data copy.
            if poll.heard.is_empty() {
                self.release_pending(ticket, SiteSet::EMPTY);
                return Err(self.timeout_or(
                    AccessError::NoQuorum {
                        kind: AccessKind::Recover,
                        reachable: poll.heard,
                        counted: 0,
                        against: self.participant_state(site).partition,
                    },
                    AccessKind::Recover,
                    site,
                    &poll,
                ));
            }
            poll.table.set(
                site,
                ReplicaState {
                    op: 0,
                    version: 0,
                    partition: SiteSet::EMPTY,
                },
            );
            poll.heard.insert(site);
        }
        let p = match plan_with_witnesses(
            OpKind::Recover(site),
            poll.heard,
            self.copies,
            self.witnesses,
            &poll.table,
            &rule,
            Some(&self.network),
        ) {
            Ok(p) => p,
            Err(refusal) => {
                self.release_pending(ticket, SiteSet::EMPTY);
                return Err(self.timeout_or(refusal, AccessKind::Recover, site, &poll));
            }
        };
        if p.copy_needed {
            match self.transfer_copy(site, p.data_source) {
                Ok((value, _version)) => self.node_mut(site).store(value),
                Err(failure) => {
                    self.release_pending(ticket, SiteSet::EMPTY);
                    return Err(match failure {
                        CopyFailure::RequesterDown => {
                            AccessError::OriginUnavailable { origin: site }
                        }
                        CopyFailure::Timeout => AccessError::Timeout {
                            kind: AccessKind::Recover,
                            origin: site,
                            attempts: self.max_attempts,
                        },
                    });
                }
            }
        }
        // A granted RECOVER absorbs the site into the current lineage:
        // installing the commit locally (the origin is always a
        // participant of its own recovery) also releases any older
        // outstanding vote it was wedged on.
        let outcome =
            self.commit_phase(site, ticket, p.participants, p.new_op, p.new_version, None);
        if !outcome.applied.is_empty() {
            self.checker.note_commit(p.new_op, p.participants);
        }
        self.release_pending(ticket, outcome.missing);
        if outcome.missing.is_empty() {
            self.record_op(CommittedOp {
                kind: AccessKind::Recover,
                origin: site,
                op: p.new_op,
                version: p.new_version,
                participants: p.participants,
            });
            Ok(())
        } else {
            Err(AccessError::Indeterminate {
                kind: AccessKind::Recover,
                origin: site,
                applied: outcome.applied,
                missing: outcome.missing,
            })
        }
    }

    // ---- the MCV paths -----------------------------------------------------

    /// The static-quorum test, with the paper-calibrated tie vote for
    /// even copy counts (see `dynvote_core::policy::McvPolicy`): an
    /// exact half wins iff it holds the top-ranked copy.
    fn mcv_grants(&self, reachable: SiteSet) -> bool {
        let n = self.copies.len();
        if 2 * reachable.len() > n {
            return true;
        }
        2 * reachable.len() == n
            && Lexicon::default()
                .max_of(self.copies)
                .is_some_and(|max| reachable.contains(max))
    }

    /// MCV polling: static quorums need no outstanding-vote wedging —
    /// a partial write can never shrink anyone's quorum, so repliers
    /// are free the moment they answer.
    fn mcv_view(&mut self, origin: SiteId, group: SiteSet) -> (Poll, SiteSet, u64) {
        let ticket = self.next_ticket();
        let poll = self.poll_phase(origin, group, ticket, false);
        let reachable = poll.heard & self.copies;
        let (version, _) = poll
            .table
            .max_version(reachable)
            .unwrap_or((0, SiteSet::EMPTY));
        (poll, reachable, version)
    }

    fn mcv_read(&mut self, origin: SiteId, group: SiteSet) -> Result<T, AccessError> {
        let (poll, reachable, version) = self.mcv_view(origin, group);
        if !poll.origin_alive {
            return Err(AccessError::OriginUnavailable { origin });
        }
        if !self.mcv_grants(reachable) {
            return Err(self.timeout_or(
                AccessError::NoQuorum {
                    kind: AccessKind::Read,
                    reachable,
                    counted: reachable.len(),
                    against: self.copies,
                },
                AccessKind::Read,
                origin,
                &poll,
            ));
        }
        // Source selection from the *poll's* view, not local node
        // state: on a real network the replies are all there is.
        let source = reachable
            .iter()
            .find(|&s| poll.table.get(s).version == version)
            .expect("a max-version copy exists");
        match self.transfer_copy(origin, source) {
            Ok((value, _served)) => {
                self.checker.note_read(version);
                Ok(value)
            }
            Err(CopyFailure::RequesterDown) => Err(AccessError::OriginUnavailable { origin }),
            Err(CopyFailure::Timeout) => Err(AccessError::Timeout {
                kind: AccessKind::Read,
                origin,
                attempts: self.max_attempts,
            }),
        }
    }

    fn mcv_write(&mut self, origin: SiteId, group: SiteSet, value: T) -> Result<(), AccessError> {
        let (poll, reachable, version) = self.mcv_view(origin, group);
        if !poll.origin_alive {
            return Err(AccessError::OriginUnavailable { origin });
        }
        if !self.mcv_grants(reachable) {
            return Err(self.timeout_or(
                AccessError::NoQuorum {
                    kind: AccessKind::Write,
                    reachable,
                    counted: reachable.len(),
                    against: self.copies,
                },
                AccessKind::Write,
                origin,
                &poll,
            ));
        }
        let new_version = version + 1;
        let copies = self.copies;
        let mut applied = SiteSet::EMPTY;
        let mut missing = SiteSet::EMPTY;
        // Gifford: the write goes to every reachable representative,
        // each keeping its own operation number. The value and the
        // version stamp ride each site's commit.
        if reachable.contains(origin) {
            let op = self.node(origin).state().op;
            let node = self.node_mut(origin);
            node.store(value.clone());
            node.apply_commit(op, new_version, copies);
            applied.insert(origin);
        }
        for site in reachable.without(origin).iter() {
            if !self.up.contains(origin) {
                missing.insert(site);
                continue;
            }
            // Each site keeps its own operation number under Gifford's
            // scheme — read from the poll's view, as a real
            // coordinator must.
            let op = poll.table.get(site).op;
            let mut delivered = false;
            for _ in 0..self.max_attempts {
                let commit = Message {
                    from: origin,
                    to: site,
                    kind: MessageKind::Commit {
                        op,
                        version: new_version,
                        partition: copies,
                    },
                };
                if !self.up.contains(site) {
                    self.trace.record(commit);
                    break;
                }
                let carried = self.exchange(commit, Some(&value), 0, false);
                if carried.response.is_some() {
                    delivered = true;
                    break;
                }
                if matches!(carried.request, Verdict::Delay) {
                    // A delayed commit still lands within the
                    // operation — identical final state. Delay is an
                    // in-memory bus verdict; the recipient is local.
                    self.apply_commit_at(site, op, new_version, copies, Some(&value));
                    delivered = true;
                    break;
                }
            }
            if delivered {
                applied.insert(site);
            } else {
                missing.insert(site);
            }
        }
        if missing.is_empty() {
            self.checker.note_write(new_version);
            self.record_op(CommittedOp {
                kind: AccessKind::Write,
                origin,
                op: 0, // MCV keeps no operation numbers
                version: new_version,
                participants: reachable,
            });
            Ok(())
        } else {
            // The write quorum never fully acknowledged: the client
            // must not treat the write as done (nor as undone).
            Err(AccessError::Indeterminate {
                kind: AccessKind::Write,
                origin,
                applied,
                missing,
            })
        }
    }
}

impl<T: Clone> Cluster<T> {
    /// The message-fault bus: injected rules and delivery statistics.
    /// Only the in-memory [`BusTransport`] has one; a networked
    /// cluster's fault surface is its transport's link rules
    /// ([`Cluster::transport_mut`]).
    #[must_use]
    pub fn bus(&self) -> &Bus {
        self.transport.bus()
    }

    /// Mutable access to the bus (inject/clear rules directly).
    pub fn bus_mut(&mut self) -> &mut Bus {
        self.transport.bus_mut()
    }

    /// Injects a message-fault rule (see [`FaultRule`]).
    pub fn inject_fault(&mut self, rule: FaultRule) {
        self.transport.bus_mut().inject(rule);
    }

    /// Removes every message-fault rule; delivery is perfect again.
    /// Sites already wedged by an outstanding vote stay wedged until
    /// the interrupted operation resolves (commit retry by a later
    /// operation, or [`Cluster::recover`] at the site).
    pub fn clear_message_faults(&mut self) {
        self.transport.bus_mut().clear();
    }
}

impl<T: Clone + std::hash::Hash, X: Transport<T>> Cluster<T, X> {
    /// A deterministic 64-bit fingerprint of the cluster's
    /// protocol-visible state, for frontier deduplication in exhaustive
    /// exploration.
    ///
    /// Covered: the up-set, any forced partition, every participant's
    /// control state, the data at every copy, whether each participant
    /// holds an outstanding vote, and the invariant monitor's
    /// [`Checker::digest`] (lineage-fork and duplicate-version
    /// detection depend on commit *history*, so states may only be
    /// merged when their detection-relevant histories also match).
    ///
    /// Excluded: message-count statistics, the history log, and the
    /// operation ticket counter — none of them influence future
    /// grant/refuse decisions. Outstanding votes are hashed by
    /// *presence* only, not ticket number: tickets come from a global
    /// counter, so two states reached by different-length paths could
    /// never merge if the raw numbers were hashed, yet the protocol
    /// only ever asks whether a vote is outstanding. In fault-free
    /// exploration no vote stays outstanding between operations.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        use std::hash::{Hash, Hasher};

        let mut h = dynvote_core::Fnv64::new();
        self.up.bits().hash(&mut h);
        match &self.forced_groups {
            None => 0u8.hash(&mut h),
            Some(groups) => {
                1u8.hash(&mut h);
                groups.len().hash(&mut h);
                for g in groups {
                    g.bits().hash(&mut h);
                }
            }
        }
        for node in &self.nodes {
            node.id().hash(&mut h);
            node.is_up().hash(&mut h);
            node.state().hash(&mut h);
            node.peek().hash(&mut h);
            node.pending().is_some().hash(&mut h);
        }
        for witness in &self.witness_nodes {
            witness.id().hash(&mut h);
            witness.is_up().hash(&mut h);
            witness.state().hash(&mut h);
            witness.pending().is_some().hash(&mut h);
        }
        h.finish() ^ self.checker.digest()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(protocol: Protocol) -> Cluster<String> {
        ClusterBuilder::new()
            .copies([0, 1, 2])
            .protocol(protocol)
            .build_with_value("v1".to_string())
    }

    #[test]
    fn quickstart_flow() {
        let mut c = cluster(Protocol::Odv);
        assert_eq!(c.read(SiteId::new(1)).unwrap(), "v1");
        c.write(SiteId::new(0), "v2".to_string()).unwrap();
        assert_eq!(c.read(SiteId::new(2)).unwrap(), "v2");
        assert!(c.checker().violations().is_empty());
        let s = c.stats();
        assert_eq!((s.reads_ok, s.writes_ok), (2, 1));
    }

    #[test]
    fn history_records_committed_operations() {
        let mut c = cluster(Protocol::Odv);
        c.read(SiteId::new(1)).unwrap();
        c.write(SiteId::new(0), "v2".to_string()).unwrap();
        c.fail_site(SiteId::new(2));
        let _ = c.read(SiteId::new(2)); // refused: must NOT appear
        c.repair_site(SiteId::new(2));
        c.recover(SiteId::new(2)).unwrap();
        let history = c.history();
        let kinds: Vec<AccessKind> = history.iter().map(|h| h.kind).collect();
        assert_eq!(
            kinds,
            vec![AccessKind::Read, AccessKind::Write, AccessKind::Recover]
        );
        // Operation numbers are strictly increasing along the lineage.
        for w in history.windows(2) {
            assert!(w[0].op < w[1].op);
        }
        assert_eq!(history[1].version, 2);
        assert_eq!(history[2].participants, SiteSet::first_n(3));
    }

    #[test]
    fn survives_one_failure_and_recovers() {
        let mut c = cluster(Protocol::Odv);
        c.fail_site(SiteId::new(1));
        c.write(SiteId::new(0), "v2".to_string()).unwrap();
        assert_eq!(
            c.state_at(SiteId::new(0)).partition,
            SiteSet::from_indices([0, 2])
        );
        c.repair_site(SiteId::new(1));
        // Before RECOVER the repaired copy is stale…
        assert_eq!(c.value_at(SiteId::new(1)), "v1");
        c.recover(SiteId::new(1)).unwrap();
        // …after RECOVER it holds the data and is back in the partition.
        assert_eq!(c.value_at(SiteId::new(1)), "v2");
        assert_eq!(c.state_at(SiteId::new(1)).partition, SiteSet::first_n(3));
        assert!(c.checker().violations().is_empty());
    }

    #[test]
    fn minority_side_is_refused() {
        let mut c = cluster(Protocol::Odv);
        c.force_partition(vec![
            SiteSet::from_indices([0, 1]),
            SiteSet::from_indices([2]),
        ]);
        // Majority side proceeds; minority side aborts.
        c.write(SiteId::new(0), "v2".to_string()).unwrap();
        let err = c.read(SiteId::new(2)).unwrap_err();
        assert!(matches!(err, AccessError::NoQuorum { .. }));
        // Healing restores service everywhere (stale copy rejoins via
        // the version-current read-absorption or RECOVER).
        c.heal_partition();
        c.recover(SiteId::new(2)).unwrap();
        assert_eq!(c.read(SiteId::new(2)).unwrap(), "v2");
        assert!(c.checker().violations().is_empty());
    }

    #[test]
    fn down_origin_is_rejected() {
        let mut c = cluster(Protocol::Ldv);
        c.fail_site(SiteId::new(0));
        let err = c.read(SiteId::new(0)).unwrap_err();
        assert_eq!(
            err,
            AccessError::OriginUnavailable {
                origin: SiteId::new(0)
            }
        );
    }

    #[test]
    fn dv_freezes_on_tie_ldv_does_not() {
        for (protocol, should_grant) in [(Protocol::Dv, false), (Protocol::Ldv, true)] {
            let mut c = cluster(protocol);
            c.fail_site(SiteId::new(2)); // P shrinks on next op
            c.write(SiteId::new(0), "v2".to_string()).unwrap();
            c.fail_site(SiteId::new(1)); // 1 of {0,1}: a tie
            let r = c.read(SiteId::new(0));
            assert_eq!(r.is_ok(), should_grant, "{}", protocol.name());
        }
    }

    #[test]
    fn mcv_static_quorum() {
        let mut c = cluster(Protocol::Mcv);
        c.fail_site(SiteId::new(2));
        c.write(SiteId::new(0), "v2".to_string()).unwrap();
        c.fail_site(SiteId::new(1));
        // One copy left: MCV refuses (LDV would have adapted).
        assert!(c.read(SiteId::new(0)).is_err());
        // Repair restores the quorum with no recovery protocol at all;
        // version numbers route the read to the fresh copy.
        c.repair_site(SiteId::new(1));
        assert_eq!(c.read(SiteId::new(0)).unwrap(), "v2");
        assert!(c.checker().violations().is_empty());
    }

    #[test]
    fn mcv_stale_copy_never_served() {
        let mut c = cluster(Protocol::Mcv);
        c.fail_site(SiteId::new(2));
        c.write(SiteId::new(0), "v2".to_string()).unwrap();
        c.repair_site(SiteId::new(2));
        // Site 2 still holds v1, but every read quorum includes a v2
        // copy and the read picks the max version.
        for origin in [0, 1, 2] {
            assert_eq!(c.read(SiteId::new(origin)).unwrap(), "v2");
        }
        assert!(c.checker().violations().is_empty());
    }

    #[test]
    fn message_counts_read() {
        // ODV read, all three up, origin S0: 2 START + 2 STATE + 2
        // COMMIT and no data transfer (origin holds a current copy).
        let mut c = cluster(Protocol::Odv);
        c.clear_trace();
        c.read(SiteId::new(0)).unwrap();
        assert_eq!(c.trace().count_of(&MessageKind::StartRequest), 2);
        assert_eq!(c.trace().total(), 6);
    }

    #[test]
    fn recover_after_reads_needs_no_copy() {
        let mut c = cluster(Protocol::Odv);
        c.fail_site(SiteId::new(2));
        c.read(SiteId::new(0)).unwrap();
        c.read(SiteId::new(1)).unwrap();
        c.repair_site(SiteId::new(2));
        c.clear_trace();
        c.recover(SiteId::new(2)).unwrap();
        assert_eq!(
            c.trace().count_of(&MessageKind::CopyRequest),
            0,
            "only reads happened: no data transfer on recovery"
        );
        assert!(c.checker().violations().is_empty());
    }

    #[test]
    fn forced_partition_respects_liveness() {
        let mut c = cluster(Protocol::Ldv);
        c.force_partition(vec![SiteSet::from_indices([0, 1, 2])]);
        c.fail_site(SiteId::new(1));
        let g = c.group_of(SiteId::new(0)).unwrap();
        assert_eq!(g, SiteSet::from_indices([0, 2]), "down sites drop out");
    }

    #[test]
    #[should_panic(expected = "pairwise disjoint")]
    fn overlapping_forced_groups_rejected() {
        let mut c = cluster(Protocol::Ldv);
        c.force_partition(vec![
            SiteSet::from_indices([0, 1]),
            SiteSet::from_indices([1, 2]),
        ]);
    }

    fn witness_cluster() -> Cluster<String> {
        ClusterBuilder::new()
            .copies([0, 1])
            .witnesses([2])
            .protocol(Protocol::Odv)
            .build_with_value("v1".to_string())
    }

    #[test]
    fn witness_breaks_the_two_copy_tie_at_message_level() {
        let mut c = witness_cluster();
        assert_eq!(c.participants(), SiteSet::first_n(3));
        // Copy S1 fails: {S0, witness} is 2 of 3 — the write proceeds,
        // and the witness's state stamp advances with the commit.
        c.fail_site(SiteId::new(1));
        c.write(SiteId::new(0), "v2".to_string()).unwrap();
        assert_eq!(c.state_at(SiteId::new(2)).version, 2);
        assert_eq!(
            c.state_at(SiteId::new(2)).partition,
            SiteSet::from_indices([0, 2])
        );
        // Fail S0 instead (the lexicographic max): the witness is what
        // keeps the other side alive.
        let mut c = witness_cluster();
        c.fail_site(SiteId::new(0));
        assert!(c.write(SiteId::new(1), "v2".to_string()).is_ok());
        assert!(c.checker().violations().is_empty());
    }

    #[test]
    fn witness_cannot_serve_reads() {
        // The witness (S0) is the lexicographic max so it can win ties:
        // the setup where a quorum can exist with no data behind it.
        let mut c: Cluster<String> = ClusterBuilder::new()
            .copies([1, 2])
            .witnesses([0])
            .protocol(Protocol::Odv)
            .build_with_value("v1".to_string());
        // Write at S2 while S1 is down: P := {witness, S2}.
        c.fail_site(SiteId::new(1));
        c.write(SiteId::new(2), "v2".to_string()).unwrap();
        // The data holder S2 dies; stale S1 returns beside the witness.
        // The witness wins the tie — but holds no data: reads abort.
        c.fail_site(SiteId::new(2));
        c.repair_site(SiteId::new(1));
        let err = c.read(SiteId::new(0)).unwrap_err();
        assert!(matches!(err, AccessError::NoCurrentCopy { .. }), "{err:?}");
        // S2 (the data holder) returning restores service.
        c.repair_site(SiteId::new(2));
        assert_eq!(c.read(SiteId::new(2)).unwrap(), "v2");
        assert!(c.checker().violations().is_empty());
    }

    #[test]
    fn witness_recovery_is_data_free() {
        let mut c = witness_cluster();
        c.fail_site(SiteId::new(2));
        c.write(SiteId::new(0), "v2".to_string()).unwrap();
        c.repair_site(SiteId::new(2));
        c.clear_trace();
        c.recover(SiteId::new(2)).unwrap();
        assert_eq!(
            c.trace().count_of(&MessageKind::CopyRequest),
            0,
            "witnesses never transfer data"
        );
        assert_eq!(c.state_at(SiteId::new(2)).version, 2);
        assert!(c.checker().violations().is_empty());
    }

    #[test]
    #[should_panic(expected = "witnesses require a dynamic-voting protocol")]
    fn mcv_with_witnesses_rejected() {
        let _ = ClusterBuilder::new()
            .copies([0, 1])
            .witnesses([2])
            .protocol(Protocol::Mcv)
            .build_with_value(0u8);
    }

    #[test]
    #[should_panic(expected = "cannot be both")]
    fn overlapping_copy_and_witness_rejected() {
        let _ = ClusterBuilder::new()
            .copies([0, 1])
            .witnesses([1])
            .build_with_value(0u8);
    }

    #[test]
    #[should_panic(expected = "needs copies")]
    fn empty_cluster_rejected() {
        let _ = ClusterBuilder::new().build_with_value(0u8);
    }

    #[test]
    fn builder_validates_copies_on_network() {
        let net = Network::single_segment(2);
        let result = std::panic::catch_unwind(|| {
            ClusterBuilder::new()
                .network(net)
                .copies([0, 5])
                .build_with_value(0u8)
        });
        assert!(result.is_err());
    }
}
