//! Stable storage: snapshot and restart a whole cluster.
//!
//! The paper's model keeps each copy's `(o, v, P)` on stable storage —
//! a site that crashes and restarts still holds the state it last
//! committed. [`crate::Cluster::fail_site`]/[`crate::Cluster::repair_site`] already
//! model per-site crashes; a [`Snapshot`] models the *whole service*
//! stopping and restarting (deploys, migrations, disaster recovery):
//! it captures every participant's durable state and data, and
//! [`crate::ClusterBuilder::build_from_snapshot`] brings up a new
//! cluster that continues exactly where the old one stopped.
//!
//! The invariant monitor starts fresh after a restore (its ground truth
//! is process state, not protocol state) — the protocol itself needs no
//! such memory, which is rather the point of keeping `(o, v, P)`
//! durable.

use dynvote_core::state::ReplicaState;
use dynvote_types::{SiteId, SiteSet};

/// A durable image of one cluster: per-participant control state, and
/// data for the full copies.
#[derive(Clone, Debug)]
pub struct Snapshot<T> {
    pub(crate) copies: Vec<(SiteId, ReplicaState, T)>,
    pub(crate) witnesses: Vec<(SiteId, ReplicaState)>,
}

impl<T> Snapshot<T> {
    /// The copy sites captured.
    #[must_use]
    pub fn copy_sites(&self) -> SiteSet {
        self.copies.iter().map(|(site, _, _)| *site).collect()
    }

    /// The witness sites captured.
    #[must_use]
    pub fn witness_sites(&self) -> SiteSet {
        self.witnesses.iter().map(|(site, _)| *site).collect()
    }

    /// The control state captured for one participant.
    #[must_use]
    pub fn state_of(&self, site: SiteId) -> Option<ReplicaState> {
        self.copies
            .iter()
            .find(|(s, _, _)| *s == site)
            .map(|(_, state, _)| *state)
            .or_else(|| {
                self.witnesses
                    .iter()
                    .find(|(s, _)| *s == site)
                    .map(|(_, state)| *state)
            })
    }
}

#[cfg(test)]
mod tests {
    use crate::cluster::{ClusterBuilder, Protocol};
    use dynvote_types::{SiteId, SiteSet};

    #[test]
    fn snapshot_restore_round_trip() {
        let mut cluster = ClusterBuilder::new()
            .copies([0, 1, 2])
            .witnesses([3])
            .protocol(Protocol::Odv)
            .build_with_value("v1".to_string());
        cluster.fail_site(SiteId::new(2));
        cluster.write(SiteId::new(0), "v2".to_string()).unwrap();
        cluster.write(SiteId::new(1), "v3".to_string()).unwrap();

        let snapshot = cluster.snapshot();
        assert_eq!(snapshot.copy_sites(), SiteSet::from_indices([0, 1, 2]));
        assert_eq!(snapshot.witness_sites(), SiteSet::from_indices([3]));

        // Bring up a fresh cluster from the image: everyone starts up
        // (a restart), holding their durable state.
        let mut revived = ClusterBuilder::new()
            .copies([0, 1, 2])
            .witnesses([3])
            .protocol(Protocol::Odv)
            .build_from_snapshot(&snapshot);
        assert_eq!(revived.read(SiteId::new(0)).unwrap(), "v3");
        // The stale copy (S2 was down at snapshot time) is still stale
        // and still outside the partition set — exactly as durable
        // state requires — until it RECOVERs.
        assert_eq!(revived.value_at(SiteId::new(2)), "v1");
        assert_eq!(
            revived.state_at(SiteId::new(2)).partition,
            SiteSet::first_n(4)
        );
        revived.recover(SiteId::new(2)).unwrap();
        assert_eq!(revived.value_at(SiteId::new(2)), "v3");
        assert!(revived.checker().violations().is_empty());
    }

    #[test]
    fn restored_cluster_continues_the_lineage() {
        let mut cluster = ClusterBuilder::new()
            .copies([0, 1, 2])
            .protocol(Protocol::Ldv)
            .build_with_value(0u64);
        for i in 1..=5u64 {
            cluster.write(SiteId::new(0), i).unwrap();
        }
        let op_before = cluster.state_at(SiteId::new(0)).op;
        let snapshot = cluster.snapshot();
        let mut revived = ClusterBuilder::new()
            .copies([0, 1, 2])
            .protocol(Protocol::Ldv)
            .build_from_snapshot(&snapshot);
        revived.write(SiteId::new(1), 6).unwrap();
        assert_eq!(revived.state_at(SiteId::new(1)).op, op_before + 1);
        assert_eq!(revived.read(SiteId::new(2)).unwrap(), 6);
    }

    #[test]
    fn state_of_accessor() {
        let mut cluster = ClusterBuilder::new()
            .copies([0, 1])
            .protocol(Protocol::Odv)
            .build_with_value(0u8);
        cluster.write(SiteId::new(0), 1).unwrap();
        let snap = cluster.snapshot();
        assert_eq!(snap.state_of(SiteId::new(0)).unwrap().version, 2);
        assert!(snap.state_of(SiteId::new(9)).is_none());
    }

    #[test]
    #[should_panic(expected = "snapshot does not match")]
    fn mismatched_restore_rejected() {
        let cluster = ClusterBuilder::new()
            .copies([0, 1])
            .protocol(Protocol::Odv)
            .build_with_value(0u8);
        let snapshot = cluster.snapshot();
        let _ = ClusterBuilder::new()
            .copies([0, 1, 2]) // different placement
            .protocol(Protocol::Odv)
            .build_from_snapshot(&snapshot);
    }
}
