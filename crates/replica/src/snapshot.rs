//! Stable storage: snapshot and restart a whole cluster.
//!
//! The paper's model keeps each copy's `(o, v, P)` on stable storage —
//! a site that crashes and restarts still holds the state it last
//! committed. [`crate::Cluster::fail_site`]/[`crate::Cluster::repair_site`] already
//! model per-site crashes; a [`Snapshot`] models the *whole service*
//! stopping and restarting (deploys, migrations, disaster recovery):
//! it captures every participant's durable state and data, and
//! [`crate::ClusterBuilder::build_from_snapshot`] brings up a new
//! cluster that continues exactly where the old one stopped.
//!
//! The invariant monitor starts fresh after a restore (its ground truth
//! is process state, not protocol state) — the protocol itself needs no
//! such memory, which is rather the point of keeping `(o, v, P)`
//! durable.

use std::io::{self, Write as _};
use std::path::Path;

use dynvote_core::state::ReplicaState;
use dynvote_core::wire::{put_state, put_u32, put_u64, put_u8, Reader};
use dynvote_types::{SiteId, SiteSet};

/// A durable image of one cluster: per-participant control state, and
/// data for the full copies.
#[derive(Clone, Debug)]
pub struct Snapshot<T> {
    pub(crate) copies: Vec<(SiteId, ReplicaState, T)>,
    pub(crate) witnesses: Vec<(SiteId, ReplicaState)>,
}

impl<T> Snapshot<T> {
    /// The copy sites captured.
    #[must_use]
    pub fn copy_sites(&self) -> SiteSet {
        self.copies.iter().map(|(site, _, _)| *site).collect()
    }

    /// The witness sites captured.
    #[must_use]
    pub fn witness_sites(&self) -> SiteSet {
        self.witnesses.iter().map(|(site, _)| *site).collect()
    }

    /// The control state captured for one participant.
    #[must_use]
    pub fn state_of(&self, site: SiteId) -> Option<ReplicaState> {
        self.copies
            .iter()
            .find(|(s, _, _)| *s == site)
            .map(|(_, state, _)| *state)
            .or_else(|| {
                self.witnesses
                    .iter()
                    .find(|(s, _)| *s == site)
                    .map(|(_, state)| *state)
            })
    }
}

/// Magic + version tag opening every on-disk site snapshot.
const SNAPSHOT_MAGIC: &[u8; 8] = b"DVSNAP01";

/// One *site's* durable image: the last WAL sequence folded in, the
/// consistency-control state ⟨o, v, P⟩, any outstanding vote, and — for
/// full copies — the data bytes.
///
/// Where [`Snapshot`] captures a whole in-process cluster for tests and
/// migrations, `DurableSiteState` is what a single persistent daemon
/// writes to its own disk: the snapshot half of the
/// [`crate::wal::SiteStore`] snapshot + write-ahead-log pair. Values
/// are raw bytes because that is what crosses a disk boundary — the
/// networked store already speaks `Vec<u8>`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DurableSiteState {
    /// The WAL sequence number of the last record this image covers;
    /// replay skips log records at or below it.
    pub seq: u64,
    /// The consistency-control state ⟨o, v, P⟩.
    pub state: ReplicaState,
    /// The outstanding-vote ticket, when the site persisted while
    /// wedged on a vote whose outcome it had not yet seen.
    pub pending: Option<u64>,
    /// The data bytes — `None` for witnesses, which hold no data.
    pub value: Option<Vec<u8>>,
}

/// Outcome of [`DurableSiteState::load`].
#[derive(Clone, Debug)]
pub enum SnapshotLoad {
    /// No snapshot file on disk (a fresh data directory).
    Missing,
    /// The file exists but failed validation (the reason is carried);
    /// the caller falls back to WAL-only replay and should move the
    /// file aside for forensics.
    Corrupt(String),
    /// A validated image.
    Loaded(DurableSiteState),
}

impl DurableSiteState {
    /// The blank pre-history image log replay folds into when no
    /// snapshot exists: everything zero, no vote, no value.
    #[must_use]
    pub(crate) fn blank() -> Self {
        DurableSiteState {
            seq: 0,
            state: ReplicaState {
                op: 0,
                version: 0,
                partition: SiteSet::EMPTY,
            },
            pending: None,
            value: None,
        }
    }

    /// Encodes the image: magic, fixed-width fields, then a trailing
    /// FNV-1a checksum over everything before it (the same wire
    /// primitives and checksum the WAL records use).
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.value.as_ref().map_or(0, Vec::len));
        out.extend_from_slice(SNAPSHOT_MAGIC);
        put_u64(&mut out, self.seq);
        put_state(&mut out, &self.state);
        match self.pending {
            Some(ticket) => {
                put_u8(&mut out, 1);
                put_u64(&mut out, ticket);
            }
            None => put_u8(&mut out, 0),
        }
        match &self.value {
            Some(bytes) => {
                put_u8(&mut out, 1);
                put_u32(
                    &mut out,
                    u32::try_from(bytes.len()).expect("value exceeds u32"),
                );
                out.extend_from_slice(bytes);
            }
            None => put_u8(&mut out, 0),
        }
        let sum = crate::wal::checksum(&out);
        put_u64(&mut out, sum);
        out
    }

    /// Decodes and validates an encoded image.
    ///
    /// # Errors
    ///
    /// A human-readable reason: short input, checksum mismatch, bad
    /// magic, or trailing bytes. Never panics on hostile input.
    pub fn decode(bytes: &[u8]) -> Result<Self, String> {
        if bytes.len() < SNAPSHOT_MAGIC.len() + 8 {
            return Err(format!("snapshot too short ({} bytes)", bytes.len()));
        }
        let (body, sum_bytes) = bytes.split_at(bytes.len() - 8);
        let sum = u64::from_be_bytes(sum_bytes.try_into().expect("8 bytes"));
        if crate::wal::checksum(body) != sum {
            return Err("snapshot checksum mismatch".to_string());
        }
        if &body[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
            return Err("bad snapshot magic".to_string());
        }
        let mut r = Reader::new(&body[SNAPSHOT_MAGIC.len()..]);
        let parse = |r: &mut Reader<'_>| -> Option<DurableSiteState> {
            let seq = r.u64().ok()?;
            let state = r.state().ok()?;
            let pending = match r.u8().ok()? {
                0 => None,
                1 => Some(r.u64().ok()?),
                _ => return None,
            };
            let value = match r.u8().ok()? {
                0 => None,
                1 => {
                    let len = r.u32().ok()? as usize;
                    Some(r.bytes(len).ok()?.to_vec())
                }
                _ => return None,
            };
            Some(DurableSiteState {
                seq,
                state,
                pending,
                value,
            })
        };
        let decoded = parse(&mut r).ok_or_else(|| "malformed snapshot body".to_string())?;
        if !r.is_exhausted() {
            return Err("trailing bytes in snapshot".to_string());
        }
        Ok(decoded)
    }

    /// Writes the image atomically: encode to `<path>.tmp`, fsync the
    /// file, rename over `path`, fsync the directory. A crash at any
    /// point leaves either the old snapshot or the new one — never a
    /// torn mixture.
    ///
    /// # Errors
    ///
    /// Any I/O error along the write/fsync/rename path.
    pub fn write_atomic(&self, path: &Path) -> io::Result<()> {
        let file_name = path.file_name().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                "snapshot path has no file name",
            )
        })?;
        let mut tmp_name = file_name.to_os_string();
        tmp_name.push(".tmp");
        let tmp = path.with_file_name(tmp_name);
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(&self.encode())?;
        file.sync_all()?;
        drop(file);
        std::fs::rename(&tmp, path)?;
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::File::open(dir)?.sync_all()?;
            }
        }
        Ok(())
    }

    /// Loads and validates the snapshot at `path`.
    ///
    /// # Errors
    ///
    /// Only real I/O errors; a missing file is [`SnapshotLoad::Missing`]
    /// and a file that fails validation is [`SnapshotLoad::Corrupt`].
    pub fn load(path: &Path) -> io::Result<SnapshotLoad> {
        let bytes = match std::fs::read(path) {
            Ok(bytes) => bytes,
            Err(error) if error.kind() == io::ErrorKind::NotFound => {
                return Ok(SnapshotLoad::Missing)
            }
            Err(error) => return Err(error),
        };
        Ok(match Self::decode(&bytes) {
            Ok(image) => SnapshotLoad::Loaded(image),
            Err(why) => SnapshotLoad::Corrupt(why),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::{DurableSiteState, SnapshotLoad};
    use crate::cluster::{ClusterBuilder, Protocol};
    use dynvote_core::state::ReplicaState;
    use dynvote_types::{SiteId, SiteSet};

    #[test]
    fn snapshot_restore_round_trip() {
        let mut cluster = ClusterBuilder::new()
            .copies([0, 1, 2])
            .witnesses([3])
            .protocol(Protocol::Odv)
            .build_with_value("v1".to_string());
        cluster.fail_site(SiteId::new(2));
        cluster.write(SiteId::new(0), "v2".to_string()).unwrap();
        cluster.write(SiteId::new(1), "v3".to_string()).unwrap();

        let snapshot = cluster.snapshot();
        assert_eq!(snapshot.copy_sites(), SiteSet::from_indices([0, 1, 2]));
        assert_eq!(snapshot.witness_sites(), SiteSet::from_indices([3]));

        // Bring up a fresh cluster from the image: everyone starts up
        // (a restart), holding their durable state.
        let mut revived = ClusterBuilder::new()
            .copies([0, 1, 2])
            .witnesses([3])
            .protocol(Protocol::Odv)
            .build_from_snapshot(&snapshot);
        assert_eq!(revived.read(SiteId::new(0)).unwrap(), "v3");
        // The stale copy (S2 was down at snapshot time) is still stale
        // and still outside the partition set — exactly as durable
        // state requires — until it RECOVERs.
        assert_eq!(revived.value_at(SiteId::new(2)), "v1");
        assert_eq!(
            revived.state_at(SiteId::new(2)).partition,
            SiteSet::first_n(4)
        );
        revived.recover(SiteId::new(2)).unwrap();
        assert_eq!(revived.value_at(SiteId::new(2)), "v3");
        assert!(revived.checker().violations().is_empty());
    }

    #[test]
    fn restored_cluster_continues_the_lineage() {
        let mut cluster = ClusterBuilder::new()
            .copies([0, 1, 2])
            .protocol(Protocol::Ldv)
            .build_with_value(0u64);
        for i in 1..=5u64 {
            cluster.write(SiteId::new(0), i).unwrap();
        }
        let op_before = cluster.state_at(SiteId::new(0)).op;
        let snapshot = cluster.snapshot();
        let mut revived = ClusterBuilder::new()
            .copies([0, 1, 2])
            .protocol(Protocol::Ldv)
            .build_from_snapshot(&snapshot);
        revived.write(SiteId::new(1), 6).unwrap();
        assert_eq!(revived.state_at(SiteId::new(1)).op, op_before + 1);
        assert_eq!(revived.read(SiteId::new(2)).unwrap(), 6);
    }

    #[test]
    fn state_of_accessor() {
        let mut cluster = ClusterBuilder::new()
            .copies([0, 1])
            .protocol(Protocol::Odv)
            .build_with_value(0u8);
        cluster.write(SiteId::new(0), 1).unwrap();
        let snap = cluster.snapshot();
        assert_eq!(snap.state_of(SiteId::new(0)).unwrap().version, 2);
        assert!(snap.state_of(SiteId::new(9)).is_none());
    }

    #[test]
    #[should_panic(expected = "snapshot does not match")]
    fn mismatched_restore_rejected() {
        let cluster = ClusterBuilder::new()
            .copies([0, 1])
            .protocol(Protocol::Odv)
            .build_with_value(0u8);
        let snapshot = cluster.snapshot();
        let _ = ClusterBuilder::new()
            .copies([0, 1, 2]) // different placement
            .protocol(Protocol::Odv)
            .build_from_snapshot(&snapshot);
    }

    fn durable_fixture() -> DurableSiteState {
        DurableSiteState {
            seq: 9,
            state: ReplicaState {
                op: 4,
                version: 3,
                partition: SiteSet::from_indices([0, 2]),
            },
            pending: Some(0xBEEF),
            value: Some(b"payload".to_vec()),
        }
    }

    #[test]
    fn durable_site_state_round_trips() {
        let image = durable_fixture();
        assert_eq!(DurableSiteState::decode(&image.encode()).unwrap(), image);
        let witness = DurableSiteState {
            pending: None,
            value: None,
            ..image
        };
        assert_eq!(
            DurableSiteState::decode(&witness.encode()).unwrap(),
            witness
        );
    }

    #[test]
    fn durable_site_state_rejects_tampering() {
        let mut bytes = durable_fixture().encode();
        bytes[10] ^= 0x01;
        assert!(DurableSiteState::decode(&bytes).is_err());
        let short = &durable_fixture().encode()[..7];
        assert!(DurableSiteState::decode(short).is_err());
        let mut trailing = durable_fixture().encode();
        trailing.push(0);
        assert!(DurableSiteState::decode(&trailing).is_err());
    }

    #[test]
    fn durable_site_state_atomic_write_and_load() {
        let dir = std::env::temp_dir().join(format!("dynvote-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot.bin");
        let image = durable_fixture();
        image.write_atomic(&path).unwrap();
        match DurableSiteState::load(&path).unwrap() {
            SnapshotLoad::Loaded(loaded) => assert_eq!(loaded, image),
            other => panic!("expected a loaded image, got {other:?}"),
        }
        assert!(matches!(
            DurableSiteState::load(&dir.join("missing.bin")).unwrap(),
            SnapshotLoad::Missing
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
