//! The deterministic step API: one event type driving every way a
//! [`Cluster`](crate::Cluster) can change.
//!
//! The cluster's mutating surface — fail/repair, RECOVER, forced
//! partitions, READ/WRITE — is a set of named methods, convenient for
//! hand-written tests but awkward for tools that must *enumerate*,
//! *replay*, and *shrink* event sequences. [`StepEvent`] reifies that
//! surface as data, and [`Cluster::step`](crate::Cluster::step) applies
//! any event through one entry point.
//!
//! # Determinism contract
//!
//! With no message faults injected, `Cluster` contains no randomness and
//! reads no clocks: applying the same event sequence to a freshly built
//! cluster always produces the same state, the same grant/refuse
//! outcomes, and the same [`Cluster::fingerprint`](crate::Cluster::fingerprint).
//! That contract is what makes exhaustive exploration (branch by
//! cloning, dedupe by fingerprint) and delta-debugging shrinks (replay
//! a candidate subsequence from scratch) sound. The `dynvote-check`
//! crate is the consumer; `tests/` in this crate pin the contract.

use dynvote_types::{SiteId, SiteSet};

/// One atomic cluster transition, as data.
///
/// Operations (`Recover`, `Read`, `Write`) may be *refused* by the
/// protocol — a refusal is a legitimate outcome, not an error in the
/// event: replaying a trace through [`Cluster::step`](crate::Cluster::step)
/// surfaces the refusal in the step result and the cluster state is
/// unchanged, exactly as a live coordinator would experience it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StepEvent<T> {
    /// Site crash (fail-stop; state and data survive on stable storage).
    FailSite(SiteId),
    /// Site repair: liveness only — the protocol-level rejoin is an
    /// explicit [`StepEvent::Recover`].
    RepairSite(SiteId),
    /// The RECOVER operation (Figure 3 / Figure 7) coordinated at the
    /// recovering site.
    Recover(SiteId),
    /// Force an explicit partition (groups of mutually-communicating
    /// sites), overriding topology-derived reachability.
    ForcePartition(Vec<SiteSet>),
    /// Remove the forced partition; reachability follows topology again.
    HealPartition,
    /// The READ operation (Figure 1 / Figure 5) coordinated at a site.
    Read(SiteId),
    /// The WRITE operation (Figure 2 / Figure 6) coordinated at a site.
    Write(SiteId, T),
}

impl<T> StepEvent<T> {
    /// Short label for progress reports and traces.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            StepEvent::FailSite(_) => "crash",
            StepEvent::RepairSite(_) => "repair",
            StepEvent::Recover(_) => "recover",
            StepEvent::ForcePartition(_) => "partition",
            StepEvent::HealPartition => "heal",
            StepEvent::Read(_) => "read",
            StepEvent::Write(_, _) => "write",
        }
    }
}

#[cfg(test)]
mod tests {
    use dynvote_types::SiteId;

    use super::*;
    use crate::cluster::{ClusterBuilder, Protocol};

    fn build() -> crate::Cluster<u64> {
        ClusterBuilder::new()
            .copies([0, 1, 2, 3])
            .protocol(Protocol::Ldv)
            .build_with_value(0)
    }

    #[test]
    fn step_matches_named_methods() {
        let mut by_step = build();
        let mut by_hand = build();

        let s1 = SiteId::new(1);
        let s2 = SiteId::new(2);
        by_step.step(StepEvent::FailSite(s1)).unwrap();
        by_hand.fail_site(s1);
        assert!(by_step.step(StepEvent::Write(s2, 7)).unwrap().is_none());
        by_hand.write(s2, 7).unwrap();
        by_step.step(StepEvent::RepairSite(s1)).unwrap();
        by_hand.repair_site(s1);
        by_step.step(StepEvent::Recover(s1)).unwrap();
        by_hand.recover(s1).unwrap();
        assert_eq!(by_step.step(StepEvent::Read(s1)).unwrap(), Some(7));
        assert_eq!(by_hand.read(s1).unwrap(), 7);

        assert_eq!(by_step.fingerprint(), by_hand.fingerprint());
    }

    #[test]
    fn refused_operation_leaves_state_unchanged() {
        let mut cluster = build();
        for site in [0, 2, 3] {
            cluster
                .step(StepEvent::FailSite(SiteId::new(site)))
                .unwrap();
        }
        let before = cluster.fingerprint();
        // S1 alone: 1 of 4, refused; state (and fingerprint) unchanged.
        assert!(cluster.step(StepEvent::Read(SiteId::new(1))).is_err());
        assert_eq!(cluster.fingerprint(), before);
    }

    #[test]
    fn replay_is_deterministic_and_clone_independent() {
        let events: Vec<StepEvent<u64>> = vec![
            StepEvent::FailSite(SiteId::new(3)),
            StepEvent::Write(SiteId::new(0), 1),
            StepEvent::FailSite(SiteId::new(2)),
            StepEvent::Write(SiteId::new(1), 2),
            StepEvent::RepairSite(SiteId::new(2)),
            StepEvent::Recover(SiteId::new(2)),
            StepEvent::Read(SiteId::new(2)),
        ];
        let mut a = build();
        let mut b = build();
        for e in &events {
            let ra = a.step(e.clone());
            let rb = b.step(e.clone());
            assert_eq!(ra.is_ok(), rb.is_ok());
        }
        assert_eq!(a.fingerprint(), b.fingerprint());

        // A clone branches independently: stepping the clone does not
        // disturb the original.
        let fork = a.clone();
        let before = a.fingerprint();
        let mut fork = fork;
        fork.step(StepEvent::FailSite(SiteId::new(0))).unwrap();
        assert_eq!(a.fingerprint(), before);
        assert_ne!(fork.fingerprint(), before);
    }

    #[test]
    fn fingerprint_reflects_data_not_just_counters() {
        let mut a = build();
        let mut b = build();
        a.step(StepEvent::Write(SiteId::new(0), 10)).unwrap();
        b.step(StepEvent::Write(SiteId::new(0), 11)).unwrap();
        assert_ne!(a.fingerprint(), b.fingerprint());
    }
}
