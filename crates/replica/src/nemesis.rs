//! Randomized nemesis campaigns: seeded, replayable message-fault and
//! site-fault schedules driven against a live [`Cluster`].
//!
//! The randomness comes from [`dynvote_sim::SimRng`] — the same
//! deterministic generator the availability simulator uses — so a
//! campaign is fully reproducible from its seed: the property tests
//! print the seed of a failing run, and replaying it replays the exact
//! schedule, message by message.
//!
//! A campaign interleaves three kinds of adversity with ordinary
//! client traffic:
//!
//! * **site churn** — random fail/repair (with a RECOVER attempt after
//!   each repair, the paper's "repeat until successful" loop);
//! * **message faults** — random single-shot [`FaultRule`]s armed on
//!   the bus: drops, duplicates, delays and mid-operation crashes,
//!   including the partial-commit hazard (crash-on-`COMMIT`-receipt);
//! * **client operations** — reads, writes and recoveries from random
//!   origins, whose outcomes are tallied but never allowed to panic.
//!
//! The cluster's [`Checker`](crate::Checker) stays armed throughout;
//! callers assert on `cluster.checker().violations()` afterwards.

use dynvote_sim::SimRng;
use dynvote_types::{AccessError, SiteId, SiteSet};

use crate::bus::{FaultAction, FaultRule, MessageClass};
use crate::cluster::Cluster;
use crate::fault::{FaultInjector, FaultOp};

/// Tunable probabilities for one nemesis campaign. All probabilities
/// are per client operation.
#[derive(Clone, Copy, Debug)]
pub struct NemesisProfile {
    /// Chance of arming one random message-fault rule before an
    /// operation.
    pub fault_rule_p: f64,
    /// Chance that an armed rule is a crash action (recipient or
    /// sender) rather than drop/duplicate/delay.
    pub crash_p: f64,
    /// Chance of failing one random up participant first.
    pub site_fail_p: f64,
    /// Chance of repairing one random down participant first (followed
    /// by a RECOVER attempt at it).
    pub site_repair_p: f64,
    /// Client operations in the campaign.
    pub steps: u32,
}

impl Default for NemesisProfile {
    fn default() -> Self {
        NemesisProfile {
            fault_rule_p: 0.5,
            crash_p: 0.25,
            site_fail_p: 0.15,
            site_repair_p: 0.3,
            steps: 40,
        }
    }
}

/// Outcome tallies of one campaign. Every operation lands in exactly
/// one bucket; none may panic or hang.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NemesisReport {
    /// Operations that succeeded.
    pub granted: u64,
    /// Quorum refusals (`NoQuorum`, `TieLost`, `NoCurrentCopy`).
    pub refused: u64,
    /// Bounded-retry give-ups ([`AccessError::Timeout`]).
    pub timeouts: u64,
    /// Partially-committed operations ([`AccessError::Indeterminate`]).
    pub indeterminate: u64,
    /// Operations whose coordinator was (or died) down.
    pub origin_unavailable: u64,
}

impl NemesisReport {
    fn tally(&mut self, result: Result<(), AccessError>) {
        match result {
            Ok(()) => self.granted += 1,
            Err(AccessError::Timeout { .. }) => self.timeouts += 1,
            Err(AccessError::Indeterminate { .. }) => self.indeterminate += 1,
            Err(AccessError::OriginUnavailable { .. }) => self.origin_unavailable += 1,
            Err(_) => self.refused += 1,
        }
    }

    /// Total operations tallied.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.granted + self.refused + self.timeouts + self.indeterminate + self.origin_unavailable
    }
}

/// Picks the `n`-th site of a set, uniformly at random.
fn pick(rng: &mut SimRng, set: SiteSet) -> Option<SiteId> {
    if set.is_empty() {
        return None;
    }
    set.iter().nth(rng.below(set.len()))
}

/// One random single-shot message-fault rule aimed at `sites`.
#[must_use]
pub fn random_rule(rng: &mut SimRng, sites: SiteSet, crash_p: f64) -> FaultRule {
    const CLASSES: [MessageClass; 5] = [
        MessageClass::Start,
        MessageClass::State,
        MessageClass::Commit,
        MessageClass::CopyRequest,
        MessageClass::CopyReply,
    ];
    let action = if rng.bernoulli(crash_p) {
        if rng.bernoulli(0.5) {
            FaultAction::CrashRecipient
        } else {
            FaultAction::CrashSender
        }
    } else {
        match rng.below(3) {
            0 => FaultAction::Drop,
            1 => FaultAction::Duplicate,
            _ => FaultAction::Delay,
        }
    };
    FaultRule {
        class: Some(CLASSES[rng.below(CLASSES.len())]),
        from: None,
        to: pick(rng, sites),
        action,
        remaining: 1,
    }
}

/// A standalone random message-fault schedule: `n` single-shot
/// injections with an occasional `DeliverAll`, suitable for
/// [`FaultInjector::run_script`].
#[must_use]
pub fn random_schedule(rng: &mut SimRng, sites: SiteSet, n: usize, crash_p: f64) -> Vec<FaultOp> {
    let mut script = Vec::with_capacity(n);
    for _ in 0..n {
        if rng.bernoulli(0.1) {
            script.push(FaultOp::DeliverAll);
        } else {
            script.push(FaultOp::Inject(random_rule(rng, sites, crash_p)));
        }
    }
    script
}

/// Runs one full nemesis campaign against `cluster`, returning the
/// outcome tallies. The injector's history (site churn and armed
/// rules) plus the seed make every run replayable.
pub fn run_nemesis(
    cluster: &mut Cluster<u64>,
    rng: &mut SimRng,
    profile: &NemesisProfile,
) -> NemesisReport {
    let mut injector = FaultInjector::new();
    let mut report = NemesisReport::default();
    let participants = cluster.participants();
    for step in 0..profile.steps {
        // Site churn first: the poll that follows sees the new world.
        if rng.bernoulli(profile.site_fail_p) {
            if let Some(site) = pick(rng, cluster.up_sites() & participants) {
                injector.apply(cluster, FaultOp::Fail(site));
            }
        }
        if rng.bernoulli(profile.site_repair_p) {
            if let Some(site) = pick(rng, participants - cluster.up_sites()) {
                injector.apply(cluster, FaultOp::Repair(site));
                report.tally(cluster.recover(site));
            }
        }
        // Then the adversary arms the bus for whatever comes next.
        if rng.bernoulli(profile.fault_rule_p) {
            injector.apply(
                cluster,
                FaultOp::Inject(random_rule(rng, participants, profile.crash_p)),
            );
        }
        // One client operation from a random live origin.
        let Some(origin) = pick(rng, cluster.up_sites() & participants) else {
            continue;
        };
        match rng.below(3) {
            0 => report.tally(cluster.read(origin).map(|_| ())),
            1 => report.tally(cluster.write(origin, u64::from(step) + 2)),
            _ => report.tally(cluster.recover(origin)),
        }
    }
    // Lingering single-shot rules must not leak into later campaigns.
    injector.apply(cluster, FaultOp::DeliverAll);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{ClusterBuilder, Protocol};

    fn cluster(protocol: Protocol) -> Cluster<u64> {
        ClusterBuilder::new()
            .copies([0, 1, 2, 3, 4])
            .protocol(protocol)
            .build_with_value(1)
    }

    #[test]
    fn campaign_is_replayable_from_seed() {
        let profile = NemesisProfile::default();
        let mut first = cluster(Protocol::Odv);
        let mut second = cluster(Protocol::Odv);
        let a = run_nemesis(&mut first, &mut SimRng::new(42), &profile);
        let b = run_nemesis(&mut second, &mut SimRng::new(42), &profile);
        assert_eq!(a, b, "same seed, same campaign");
        assert_eq!(first.trace().total(), second.trace().total());
        assert!(a.total() > 0);
    }

    #[test]
    fn campaign_never_violates_ldv_invariants() {
        let mut c = cluster(Protocol::Ldv);
        let report = run_nemesis(&mut c, &mut SimRng::new(7), &NemesisProfile::default());
        assert!(report.total() > 0);
        assert!(
            c.checker().violations().is_empty(),
            "violations: {:?}",
            c.checker().violations()
        );
    }

    #[test]
    fn random_schedule_is_deterministic() {
        let sites = SiteSet::first_n(3);
        let a = random_schedule(&mut SimRng::new(9), sites, 16, 0.3);
        let b = random_schedule(&mut SimRng::new(9), sites, 16, 0.3);
        assert_eq!(a, b);
        assert_eq!(a.len(), 16);
    }
}
