//! One replica node: state + data + liveness.

use dynvote_core::state::ReplicaState;
use dynvote_types::{SiteId, SiteSet};

/// One site's replica of the file: the consistency-control state that
/// the protocol reads and writes, the current data value, and the
/// site's up/down status.
///
/// A node is deliberately passive — all protocol logic lives in
/// [`crate::Cluster`], which plays the coordinator role of whichever
/// site an operation originates at. The node only answers the messages
/// a real remote replica would answer: *report your state*, *apply this
/// commit*, *serve/accept a copy of the file*.
#[derive(Clone, Debug)]
pub struct Node<T> {
    id: SiteId,
    up: bool,
    state: ReplicaState,
    data: T,
    pending: Option<u64>,
}

impl<T: Clone> Node<T> {
    /// A fresh node holding the initial value, with the paper's initial
    /// state (`o = v = 1`, partition set = all copies).
    #[must_use]
    pub fn new(id: SiteId, all_copies: SiteSet, initial: T) -> Self {
        Node {
            id,
            up: true,
            state: ReplicaState::initial(all_copies),
            data: initial,
            pending: None,
        }
    }

    /// This node's site identifier.
    #[must_use]
    pub fn id(&self) -> SiteId {
        self.id
    }

    /// Whether the site is currently up.
    #[must_use]
    pub fn is_up(&self) -> bool {
        self.up
    }

    /// Fails the site. Its state and data persist (fail-stop, stable
    /// storage) but it answers no messages until repaired.
    pub fn fail(&mut self) {
        self.up = false;
    }

    /// Repairs the site. The *protocol*-level reintegration (RECOVER)
    /// is a separate, explicit operation — a freshly repaired site holds
    /// whatever state it crashed with.
    pub fn repair(&mut self) {
        self.up = true;
    }

    /// The node's consistency-control state (a state-reply message).
    #[must_use]
    pub fn state(&self) -> ReplicaState {
        self.state
    }

    /// Applies a commit: adopts the new control state.
    pub fn apply_commit(&mut self, op: u64, version: u64, partition: SiteSet) {
        self.state = ReplicaState {
            op,
            version,
            partition,
        };
    }

    /// Overwrites the data (a write commit or an incoming copy).
    pub fn store(&mut self, value: T) {
        self.data = value;
    }

    /// Serves the current data (a read, or an outgoing copy).
    #[must_use]
    pub fn fetch(&self) -> T {
        self.data.clone()
    }

    /// Borrows the current data without cloning — for observers
    /// (fingerprinting, assertions) rather than protocol traffic.
    #[must_use]
    pub fn peek(&self) -> &T {
        &self.data
    }

    /// The operation ticket this node has voted for but not yet seen
    /// resolved, if any. A pending node abstains from other operations
    /// — its earlier vote may still be binding. Pending survives
    /// fail/repair (stable storage), like the rest of the state.
    #[must_use]
    pub fn pending(&self) -> Option<u64> {
        self.pending
    }

    /// Marks the node as holding an outstanding vote for `ticket`.
    pub fn set_pending(&mut self, ticket: u64) {
        self.pending = Some(ticket);
    }

    /// Releases the outstanding vote (commit delivered, operation
    /// aborted, or the vote was proven non-binding).
    pub fn clear_pending(&mut self) {
        self.pending = None;
    }
}

/// A witness replica: consistency-control state and liveness, **no
/// data** (Pâris 1986 — the paper's §5 "witness copies" extension).
///
/// Witnesses vote and receive commits like full copies; they can break
/// ties and regenerate quorums, but can never serve a read or seed a
/// recovery.
#[derive(Clone, Debug)]
pub struct WitnessNode {
    id: SiteId,
    up: bool,
    state: ReplicaState,
    pending: Option<u64>,
}

impl WitnessNode {
    /// A fresh witness with the paper's initial state.
    #[must_use]
    pub fn new(id: SiteId, all_participants: SiteSet) -> Self {
        WitnessNode {
            id,
            up: true,
            state: ReplicaState::initial(all_participants),
            pending: None,
        }
    }

    /// This witness's site identifier.
    #[must_use]
    pub fn id(&self) -> SiteId {
        self.id
    }

    /// Whether the site is currently up.
    #[must_use]
    pub fn is_up(&self) -> bool {
        self.up
    }

    /// Fails the site (state persists on stable storage).
    pub fn fail(&mut self) {
        self.up = false;
    }

    /// Repairs the site.
    pub fn repair(&mut self) {
        self.up = true;
    }

    /// The witness's consistency-control state.
    #[must_use]
    pub fn state(&self) -> ReplicaState {
        self.state
    }

    /// Applies a commit: adopts the new control state.
    pub fn apply_commit(&mut self, op: u64, version: u64, partition: SiteSet) {
        self.state = ReplicaState {
            op,
            version,
            partition,
        };
    }

    /// The operation ticket this witness has voted for but not yet
    /// seen resolved, if any (see [`Node::pending`]).
    #[must_use]
    pub fn pending(&self) -> Option<u64> {
        self.pending
    }

    /// Marks the witness as holding an outstanding vote for `ticket`.
    pub fn set_pending(&mut self, ticket: u64) {
        self.pending = Some(ticket);
    }

    /// Releases the outstanding vote.
    pub fn clear_pending(&mut self) {
        self.pending = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn witness_tracks_state_without_data() {
        let all = SiteSet::first_n(3);
        let mut w = WitnessNode::new(SiteId::new(2), all);
        assert_eq!(w.id(), SiteId::new(2));
        assert!(w.is_up());
        assert_eq!(w.state().partition, all);
        w.apply_commit(4, 3, SiteSet::from_indices([0, 2]));
        w.fail();
        w.repair();
        assert_eq!(w.state().version, 3, "state survives the crash");
    }

    #[test]
    fn fresh_node_matches_paper_initial_state() {
        let all = SiteSet::first_n(3);
        let n = Node::new(SiteId::new(1), all, 42u32);
        assert_eq!(n.id(), SiteId::new(1));
        assert!(n.is_up());
        assert_eq!(n.state().op, 1);
        assert_eq!(n.state().version, 1);
        assert_eq!(n.state().partition, all);
        assert_eq!(n.fetch(), 42);
    }

    #[test]
    fn fail_preserves_state_and_data() {
        let mut n = Node::new(SiteId::new(0), SiteSet::first_n(2), "x".to_string());
        n.apply_commit(5, 3, SiteSet::from_indices([0]));
        n.store("y".to_string());
        n.fail();
        assert!(!n.is_up());
        n.repair();
        assert!(n.is_up());
        assert_eq!(n.state().op, 5, "stable storage survives the crash");
        assert_eq!(n.fetch(), "y");
    }

    #[test]
    fn pending_survives_fail_repair() {
        let mut n = Node::new(SiteId::new(0), SiteSet::first_n(3), 0u8);
        assert_eq!(n.pending(), None);
        n.set_pending(7);
        n.fail();
        n.repair();
        assert_eq!(
            n.pending(),
            Some(7),
            "outstanding votes are on stable storage"
        );
        n.clear_pending();
        assert_eq!(n.pending(), None);

        let mut w = WitnessNode::new(SiteId::new(1), SiteSet::first_n(3));
        w.set_pending(9);
        w.fail();
        w.repair();
        assert_eq!(w.pending(), Some(9));
    }

    #[test]
    fn commit_overwrites_control_state() {
        let mut n = Node::new(SiteId::new(0), SiteSet::first_n(2), 0u8);
        n.apply_commit(7, 4, SiteSet::from_indices([0, 1]));
        assert_eq!(n.state().op, 7);
        assert_eq!(n.state().version, 4);
        assert_eq!(n.state().partition, SiteSet::from_indices([0, 1]));
    }
}
