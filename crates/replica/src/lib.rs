#![warn(missing_docs)]

//! A message-level replicated store managed by dynamic voting.
//!
//! Where `dynvote-availability` measures *whether* the protocols would
//! grant accesses, this crate actually *runs* them: a [`Cluster`] hosts
//! one replica [`Node`] per site, routes explicit `START` / state-reply
//! / `COMMIT` / data-copy [`Message`]s between nodes that can currently
//! communicate, stores real values at each replica, and exposes the
//! READ / WRITE / RECOVER operations of Figures 1–3 (and their
//! topological variants, Figures 5–7) as a public API.
//!
//! Three supporting pieces make it a test bed as well as a library:
//!
//! * [`fault`] — fail/repair sites and force partitions, by script or
//!   randomly;
//! * [`checker`] — an always-on invariant monitor (no stale reads,
//!   unique versions, no lineage forks) that records [`Violation`]s
//!   instead of panicking, so tests can also *demonstrate* the
//!   published protocols' edge cases;
//! * [`message::Trace`] — per-operation message counting, used to
//!   verify the paper's claim that the optimistic protocols cost "much
//!   the same message traffic overhead as majority consensus voting".
//!
//! For exhaustive exploration, [`step::StepEvent`] reifies the whole
//! mutating surface as one event type ([`Cluster::step`]), and
//! [`Cluster::fingerprint`] gives each protocol-visible state a
//! deterministic 64-bit hash for frontier deduplication.
//!
//! # Quick example
//!
//! ```
//! use dynvote_replica::{ClusterBuilder, Protocol};
//! use dynvote_types::SiteId;
//!
//! let mut cluster = ClusterBuilder::new()
//!     .copies([0, 1, 2])
//!     .protocol(Protocol::Odv)
//!     .build_with_value("v1".to_string());
//!
//! cluster.write(SiteId::new(0), "v2".to_string()).unwrap();
//! cluster.fail_site(SiteId::new(1));
//! assert_eq!(cluster.read(SiteId::new(0)).unwrap(), "v2");
//! assert!(cluster.checker().violations().is_empty());
//! ```

pub mod bus;
pub mod checker;
pub mod cluster;
pub mod directory;
pub mod fault;
pub mod message;
pub mod nemesis;
pub mod node;
pub mod scenario;
pub mod snapshot;
pub mod step;
pub mod transport;
pub mod wal;

pub use bus::{Bus, BusStats, FaultAction, FaultRule, MessageClass, Verdict};
pub use checker::{Checker, Violation};
pub use cluster::{Cluster, ClusterBuilder, CommittedOp, OpStats, Protocol};
pub use directory::{Directory, DirectoryError};
pub use fault::{FaultInjector, FaultOp};
pub use message::{Message, MessageKind, Trace};
pub use nemesis::{run_nemesis, NemesisProfile, NemesisReport};
pub use node::{Node, WitnessNode};
pub use scenario::{Command, ScenarioError};
pub use snapshot::{DurableSiteState, Snapshot, SnapshotLoad};
pub use step::StepEvent;
pub use transport::{BusTransport, Carried, LocalServe, Reply, Response, Transport, WireRequest};
pub use wal::{FsyncOutcome, Restored, SiteStore, Wal, WalEntry, WalRecord, WalReplay, WalTail};
