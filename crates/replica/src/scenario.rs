//! A tiny scenario language for driving a cluster through scripted
//! histories.
//!
//! Scenarios make protocol walkthroughs — the paper's worked examples,
//! bug reports, classroom exercises — *executable*. A script is a list
//! of commands, one per line:
//!
//! ```text
//! # comments and blank lines are ignored
//! write 0 v2          # WRITE at site 0
//! fail 1              # site S1 crashes
//! read 2              # READ at site 2 (outcome logged)
//! partition 0 | 2     # force a partition: {S0} vs {S2}
//! expect read 0 v2    # assert the read is granted and returns v2
//! expect refused read 2   # assert the read aborts
//! heal                # remove the forced partition
//! repair 1
//! recover 1
//! state 1             # log S1's (o, v, P)
//! ```
//!
//! Message faults arm rules on the cluster's [`Bus`](crate::Bus), so
//! a script can stage the partial-commit hazard line by line:
//!
//! ```text
//! drop commit@2       # lose the next COMMIT sent to S2
//! dup state@1 3       # duplicate the next three state replies to S1
//! delay commit@0      # reorder: deliver S0's next COMMIT late
//! crash-on-commit 2   # S2 crashes on receipt of its next COMMIT
//! deliver-all         # disarm every message-fault rule
//! ```
//!
//! [`parse`] turns a script into commands; [`run`] executes them
//! against a cluster, returning a transcript and failing fast on a
//! violated `expect`.

use dynvote_types::{SiteId, SiteSet};

use crate::bus::{FaultAction, FaultRule, MessageClass};
use crate::cluster::Cluster;

/// One scripted action.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Command {
    /// `fail N` — crash site N.
    Fail(usize),
    /// `repair N` — bring site N back up (liveness only).
    Repair(usize),
    /// `recover N` — run the RECOVER protocol at site N.
    Recover(usize),
    /// `write N VALUE` — WRITE at origin N.
    Write(usize, String),
    /// `read N` — READ at origin N.
    Read(usize),
    /// `partition A,B | C …` — force groups.
    Partition(Vec<Vec<usize>>),
    /// `heal` — drop the forced partition.
    Heal,
    /// `state N` — log site N's control state.
    State(usize),
    /// `explain N` — log Algorithm 1's full decision trace for a read
    /// probe at site N.
    Explain(usize),
    /// `expect read N VALUE` — READ must succeed with VALUE.
    ExpectRead(usize, String),
    /// `expect refused read N` / `expect refused write N` /
    /// `expect refused recover N` — the operation must abort.
    ExpectRefused(OpName, usize),
    /// `drop KIND@N [COUNT]` / `dup KIND@N [COUNT]` /
    /// `delay KIND@N [COUNT]` / `crash-on-commit N` — arm a
    /// message-fault rule on the bus.
    Inject(FaultRule),
    /// `deliver-all` — disarm every message-fault rule.
    DeliverAll,
}

/// The operation named in an `expect refused` command.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpName {
    /// A READ operation.
    Read,
    /// A WRITE operation.
    Write,
    /// A RECOVER operation.
    Recover,
}

/// A script error with its 1-based line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScenarioError {
    /// 1-based line in the script (0 for runtime errors without one).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl core::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ScenarioError {}

fn err(line: usize, message: impl Into<String>) -> ScenarioError {
    ScenarioError {
        line,
        message: message.into(),
    }
}

fn parse_site(line: usize, token: Option<&str>) -> Result<usize, ScenarioError> {
    token
        .ok_or_else(|| err(line, "missing site number"))?
        .parse::<usize>()
        .map_err(|e| err(line, format!("bad site number: {e}")))
}

/// Parses the `KIND@N [COUNT]` tail of a `drop`/`dup`/`delay` command
/// into a fault rule with the given action.
fn parse_fault(
    line: usize,
    action: FaultAction,
    target: Option<&str>,
    count: Option<&str>,
) -> Result<FaultRule, ScenarioError> {
    let target = target.ok_or_else(|| err(line, format!("{action} needs a KIND@SITE target")))?;
    let (kind, site) = target.split_once('@').ok_or_else(|| {
        err(
            line,
            format!("{action} target must be KIND@SITE, got {target:?}"),
        )
    })?;
    let class = MessageClass::parse(kind)
        .ok_or_else(|| err(line, format!("unknown message kind {kind:?}")))?;
    let site = parse_site(line, Some(site))?;
    let times = match count {
        None => 1,
        Some(tok) => tok
            .parse::<u32>()
            .map_err(|e| err(line, format!("bad count: {e}")))?,
    };
    Ok(FaultRule::once(class, SiteId::new(site), action).times(times))
}

/// Parses a scenario script.
///
/// # Errors
///
/// Returns the first syntax error with its line number.
pub fn parse(script: &str) -> Result<Vec<(usize, Command)>, ScenarioError> {
    let mut commands = Vec::new();
    for (idx, raw) in script.lines().enumerate() {
        let line = idx + 1;
        let text = raw.split('#').next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        let mut words = text.split_whitespace();
        let command = match words.next().expect("non-empty line") {
            "fail" => Command::Fail(parse_site(line, words.next())?),
            "repair" => Command::Repair(parse_site(line, words.next())?),
            "recover" => Command::Recover(parse_site(line, words.next())?),
            "read" => Command::Read(parse_site(line, words.next())?),
            "state" => Command::State(parse_site(line, words.next())?),
            "explain" => Command::Explain(parse_site(line, words.next())?),
            "heal" => Command::Heal,
            "deliver-all" => Command::DeliverAll,
            verb @ ("drop" | "dup" | "delay") => {
                let action = match verb {
                    "drop" => FaultAction::Drop,
                    "dup" => FaultAction::Duplicate,
                    _ => FaultAction::Delay,
                };
                Command::Inject(parse_fault(line, action, words.next(), words.next())?)
            }
            "crash-on-commit" => {
                let site = parse_site(line, words.next())?;
                Command::Inject(FaultRule::once(
                    MessageClass::Commit,
                    SiteId::new(site),
                    FaultAction::CrashRecipient,
                ))
            }
            "write" => {
                let site = parse_site(line, words.next())?;
                let value: Vec<&str> = words.collect();
                if value.is_empty() {
                    return Err(err(line, "write needs a value"));
                }
                Command::Write(site, value.join(" "))
            }
            "partition" => {
                let rest = text["partition".len()..].trim();
                if rest.is_empty() {
                    return Err(err(line, "partition needs groups"));
                }
                let mut groups = Vec::new();
                for group_text in rest.split('|') {
                    let mut group = Vec::new();
                    for tok in group_text.split(',') {
                        let tok = tok.trim();
                        if tok.is_empty() {
                            continue;
                        }
                        group.push(
                            tok.parse::<usize>()
                                .map_err(|e| err(line, format!("bad site in group: {e}")))?,
                        );
                    }
                    if !group.is_empty() {
                        groups.push(group);
                    }
                }
                if groups.is_empty() {
                    return Err(err(line, "partition needs at least one group"));
                }
                Command::Partition(groups)
            }
            "expect" => match words.next() {
                Some("read") => {
                    let site = parse_site(line, words.next())?;
                    let value: Vec<&str> = words.collect();
                    if value.is_empty() {
                        return Err(err(line, "expect read needs a value"));
                    }
                    Command::ExpectRead(site, value.join(" "))
                }
                Some("refused") => {
                    let op = match words.next() {
                        Some("read") => OpName::Read,
                        Some("write") => OpName::Write,
                        Some("recover") => OpName::Recover,
                        other => {
                            return Err(err(
                                line,
                                format!("expect refused needs read/write/recover, got {other:?}"),
                            ))
                        }
                    };
                    Command::ExpectRefused(op, parse_site(line, words.next())?)
                }
                other => return Err(err(line, format!("unknown expectation {other:?}"))),
            },
            other => return Err(err(line, format!("unknown command {other:?}"))),
        };
        commands.push((line, command));
    }
    Ok(commands)
}

/// Executes parsed commands against a cluster, returning the
/// transcript.
///
/// # Errors
///
/// Returns a [`ScenarioError`] when an `expect` fails (with the line it
/// came from).
pub fn run(
    cluster: &mut Cluster<String>,
    commands: &[(usize, Command)],
) -> Result<Vec<String>, ScenarioError> {
    let mut log = Vec::new();
    for (line, command) in commands {
        let line = *line;
        match command {
            Command::Fail(site) => {
                cluster.fail_site(SiteId::new(*site));
                log.push(format!("fail S{site}"));
            }
            Command::Repair(site) => {
                cluster.repair_site(SiteId::new(*site));
                log.push(format!("repair S{site}"));
            }
            Command::Recover(site) => match cluster.recover(SiteId::new(*site)) {
                Ok(()) => log.push(format!("recover S{site}: ok")),
                Err(e) => log.push(format!("recover S{site}: refused ({e})")),
            },
            Command::Write(site, value) => match cluster.write(SiteId::new(*site), value.clone()) {
                Ok(()) => log.push(format!("write S{site} {value:?}: ok")),
                Err(e) => log.push(format!("write S{site}: refused ({e})")),
            },
            Command::Read(site) => match cluster.read(SiteId::new(*site)) {
                Ok(v) => log.push(format!("read S{site}: {v:?}")),
                Err(e) => log.push(format!("read S{site}: refused ({e})")),
            },
            Command::Partition(groups) => {
                let sets: Vec<SiteSet> = groups
                    .iter()
                    .map(|g| SiteSet::from_indices(g.iter().copied()))
                    .collect();
                cluster.heal_partition();
                cluster.force_partition(sets);
                log.push(format!("partition {groups:?}"));
            }
            Command::Heal => {
                cluster.heal_partition();
                log.push("heal".to_string());
            }
            Command::Inject(rule) => {
                cluster.inject_fault(rule.clone());
                log.push(format!("inject {rule}"));
            }
            Command::DeliverAll => {
                cluster.clear_message_faults();
                log.push("deliver-all".to_string());
            }
            Command::State(site) => {
                let s = cluster.state_at(SiteId::new(*site));
                log.push(format!("state S{site}: {s:?}"));
            }
            Command::Explain(site) => match cluster.explain(SiteId::new(*site)) {
                Some(text) => {
                    log.push(format!("explain S{site}:"));
                    for line in text.lines() {
                        log.push(format!("    {line}"));
                    }
                }
                None => log.push(format!("explain S{site}: site is down")),
            },
            Command::ExpectRead(site, want) => match cluster.read(SiteId::new(*site)) {
                Ok(got) if got == *want => log.push(format!("expect read S{site} {want:?}: ok")),
                Ok(got) => {
                    return Err(err(
                        line,
                        format!("expected read of {want:?} at S{site}, got {got:?}"),
                    ))
                }
                Err(e) => {
                    return Err(err(
                        line,
                        format!("expected read of {want:?} at S{site}, but it was refused: {e}"),
                    ))
                }
            },
            Command::ExpectRefused(op, site) => {
                let outcome = match op {
                    OpName::Read => cluster.read(SiteId::new(*site)).map(|_| ()),
                    OpName::Write => cluster.write(SiteId::new(*site), "<probe>".to_string()),
                    OpName::Recover => cluster.recover(SiteId::new(*site)),
                };
                match outcome {
                    Err(e) => log.push(format!("expect refused {op:?} S{site}: ok ({e})")),
                    Ok(()) => {
                        return Err(err(
                            line,
                            format!("expected {op:?} at S{site} to be refused, but it succeeded"),
                        ))
                    }
                }
            }
        }
    }
    Ok(log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{ClusterBuilder, Protocol};

    fn cluster() -> Cluster<String> {
        ClusterBuilder::new()
            .copies([0, 1, 2])
            .protocol(Protocol::Odv)
            .build_with_value("v1".to_string())
    }

    #[test]
    fn parses_all_commands() {
        let script = "
            # a comment
            fail 1
            repair 1
            recover 1
            write 0 hello world
            read 2
            partition 0,1 | 2
            heal
            state 0
            expect read 0 hello world
            expect refused write 2
            explain 0
        ";
        let cmds = parse(script).unwrap();
        assert_eq!(cmds.len(), 11);
        assert_eq!(cmds[10].1, Command::Explain(0));
        assert_eq!(cmds[0].1, Command::Fail(1));
        assert_eq!(cmds[3].1, Command::Write(0, "hello world".into()));
        assert_eq!(cmds[5].1, Command::Partition(vec![vec![0, 1], vec![2]]));
        assert_eq!(cmds[8].1, Command::ExpectRead(0, "hello world".into()));
        assert_eq!(cmds[9].1, Command::ExpectRefused(OpName::Write, 2));
    }

    #[test]
    fn parses_message_fault_commands() {
        let script = "
            drop commit@2
            dup state@1 3
            delay commit@0
            crash-on-commit 2
            deliver-all
        ";
        let cmds = parse(script).unwrap();
        assert_eq!(cmds.len(), 5);
        assert_eq!(
            cmds[0].1,
            Command::Inject(FaultRule::once(
                MessageClass::Commit,
                SiteId::new(2),
                FaultAction::Drop
            ))
        );
        assert_eq!(
            cmds[1].1,
            Command::Inject(
                FaultRule::once(MessageClass::State, SiteId::new(1), FaultAction::Duplicate)
                    .times(3)
            )
        );
        assert_eq!(
            cmds[3].1,
            Command::Inject(FaultRule::once(
                MessageClass::Commit,
                SiteId::new(2),
                FaultAction::CrashRecipient
            ))
        );
        assert_eq!(cmds[4].1, Command::DeliverAll);
    }

    #[test]
    fn message_fault_parse_errors_carry_line_numbers() {
        let e = parse("heal\ndrop bogus@2").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("unknown message kind"), "{e}");
        let e = parse("dup commit").unwrap_err();
        assert!(e.message.contains("KIND@SITE"), "{e}");
        let e = parse("delay commit@x").unwrap_err();
        assert!(e.message.contains("bad site number"), "{e}");
        let e = parse("drop commit@2 zz").unwrap_err();
        assert!(e.message.contains("bad count"), "{e}");
    }

    #[test]
    fn scripted_partial_commit_wedges_then_reconciles() {
        let script = "
            drop commit@2 3     # beyond the retry budget: all resends lost
            write 0 v2          # COMMIT never reaches S2: indeterminate
            state 2             # still shows the pre-write control state
            recover 2           # the wedged site rejoins and copies v2
            expect read 2 v2
        ";
        let cmds = parse(script).unwrap();
        let mut c = cluster();
        let log = run(&mut c, &cmds).unwrap();
        assert!(
            log.iter().any(|l| l.contains("indeterminate")),
            "partial commit must surface in the transcript: {log:?}"
        );
        assert!(c.checker().violations().is_empty());
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let e = parse("fail 0\nbogus 1").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));
        let e = parse("write 0").unwrap_err();
        assert!(e.message.contains("needs a value"));
        let e = parse("expect refused flush 0").unwrap_err();
        assert!(e.message.contains("read/write/recover"));
        let e = parse("fail x").unwrap_err();
        assert!(e.message.contains("bad site number"));
    }

    #[test]
    fn runs_the_paper_walkthrough() {
        let script = "
            write 0 v2
            fail 1
            write 0 v3            # 2 of 3 still a majority
            partition 0 | 2
            expect read 0 v3      # S0 wins the 1-1 tie
            expect refused read 2
            heal
            repair 1
            recover 1
            expect read 1 v3
        ";
        let cmds = parse(script).unwrap();
        let mut c = cluster();
        let log = run(&mut c, &cmds).unwrap();
        assert!(log.iter().any(|l| l.contains("expect refused")));
        assert!(c.checker().violations().is_empty());
    }

    #[test]
    fn explain_command_logs_the_decision_trace() {
        let cmds = parse("fail 2\nfail 1\nexplain 0\nfail 0\nexplain 0").unwrap();
        let mut c = cluster();
        let log = run(&mut c, &cmds).unwrap();
        let text = log.join("\n");
        assert!(text.contains("P_m"), "{text}");
        assert!(
            text.contains("REFUSED") || text.contains("GRANTED"),
            "{text}"
        );
        assert!(text.contains("site is down"), "{text}");
    }

    #[test]
    fn failed_expectation_reports_line() {
        let cmds = parse("fail 1\nfail 2\nexpect read 0 nope").unwrap();
        let mut c = cluster();
        let e = run(&mut c, &cmds).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("nope"));
    }

    #[test]
    fn expected_refusal_that_succeeds_fails_the_run() {
        let cmds = parse("expect refused read 0").unwrap();
        let mut c = cluster();
        let e = run(&mut c, &cmds).unwrap_err();
        assert!(e.message.contains("succeeded"));
    }

    #[test]
    fn transcript_logs_refusals_without_failing() {
        // Plain `read`/`write` log refusals; only `expect` fails runs.
        let cmds = parse("fail 1\nfail 2\nread 0\nwrite 0 x").unwrap();
        let mut c = cluster();
        let log = run(&mut c, &cmds).unwrap();
        assert!(log[2].contains("refused"));
        assert!(log[3].contains("refused"));
    }
}
