//! Scripted and randomized fault injection.

use dynvote_types::{SiteId, SiteSet};

use crate::bus::FaultRule;
use crate::cluster::Cluster;

/// One fault-surface action.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultOp {
    /// Fail a site.
    Fail(SiteId),
    /// Repair a site (liveness only; RECOVER is a protocol operation).
    Repair(SiteId),
    /// Force an explicit partition.
    Partition(Vec<SiteSet>),
    /// Remove a forced partition.
    Heal,
    /// Arm a message-fault rule on the cluster's bus.
    Inject(FaultRule),
    /// Disarm every message-fault rule (wedged sites stay wedged —
    /// only the interrupted operation's resolution frees them).
    DeliverAll,
}

/// Drives a [`Cluster`] through fault schedules.
///
/// The injector is deliberately free of randomness itself — the property
/// tests generate `FaultOp` sequences from `proptest` strategies, and
/// deterministic tests write literal scripts — so every schedule is
/// replayable from its value alone.
#[derive(Clone, Debug, Default)]
pub struct FaultInjector {
    applied: Vec<FaultOp>,
}

impl FaultInjector {
    /// A fresh injector.
    #[must_use]
    pub fn new() -> Self {
        FaultInjector::default()
    }

    /// Applies one action to the cluster and records it.
    pub fn apply<T: Clone>(&mut self, cluster: &mut Cluster<T>, op: FaultOp) {
        match &op {
            FaultOp::Fail(site) => cluster.fail_site(*site),
            FaultOp::Repair(site) => cluster.repair_site(*site),
            FaultOp::Partition(groups) => cluster.force_partition(groups.clone()),
            FaultOp::Heal => cluster.heal_partition(),
            FaultOp::Inject(rule) => cluster.inject_fault(rule.clone()),
            FaultOp::DeliverAll => cluster.clear_message_faults(),
        }
        self.applied.push(op);
    }

    /// Applies a whole schedule in order.
    pub fn run_script<T: Clone>(
        &mut self,
        cluster: &mut Cluster<T>,
        script: impl IntoIterator<Item = FaultOp>,
    ) {
        for op in script {
            self.apply(cluster, op);
        }
    }

    /// Everything applied so far, in order (for failure reports).
    #[must_use]
    pub fn history(&self) -> &[FaultOp] {
        &self.applied
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{ClusterBuilder, Protocol};

    #[test]
    fn script_is_applied_in_order() {
        let mut cluster = ClusterBuilder::new()
            .copies([0, 1, 2])
            .protocol(Protocol::Ldv)
            .build_with_value(0u32);
        let mut inj = FaultInjector::new();
        inj.run_script(
            &mut cluster,
            vec![
                FaultOp::Fail(SiteId::new(2)),
                FaultOp::Fail(SiteId::new(1)),
                FaultOp::Repair(SiteId::new(1)),
            ],
        );
        assert_eq!(cluster.up_sites(), SiteSet::from_indices([0, 1]));
        assert_eq!(inj.history().len(), 3);
    }

    #[test]
    fn script_accepts_any_iterator() {
        let mut cluster = ClusterBuilder::new()
            .copies([0, 1, 2])
            .protocol(Protocol::Ldv)
            .build_with_value(0u32);
        let mut inj = FaultInjector::new();
        // An array and a mapped iterator, not just Vec.
        inj.run_script(&mut cluster, [FaultOp::Fail(SiteId::new(2))]);
        inj.run_script(
            &mut cluster,
            (0..2).map(|i| FaultOp::Repair(SiteId::new(i))),
        );
        assert_eq!(cluster.up_sites(), SiteSet::from_indices([0, 1]));
    }

    #[test]
    fn inject_and_deliver_all_reach_the_bus() {
        use crate::bus::{FaultAction, MessageClass};

        let mut cluster = ClusterBuilder::new()
            .copies([0, 1, 2])
            .protocol(Protocol::Ldv)
            .build_with_value(0u32);
        let mut inj = FaultInjector::new();
        inj.apply(
            &mut cluster,
            FaultOp::Inject(FaultRule::once(
                MessageClass::Commit,
                SiteId::new(2),
                FaultAction::Drop,
            )),
        );
        assert_eq!(cluster.bus().rules().len(), 1);
        inj.apply(&mut cluster, FaultOp::DeliverAll);
        assert!(cluster.bus().rules().is_empty());
        assert_eq!(inj.history().len(), 2);
    }

    #[test]
    fn partition_and_heal() {
        let mut cluster = ClusterBuilder::new()
            .copies([0, 1, 2])
            .protocol(Protocol::Ldv)
            .build_with_value(0u32);
        let mut inj = FaultInjector::new();
        inj.apply(
            &mut cluster,
            FaultOp::Partition(vec![
                SiteSet::from_indices([0]),
                SiteSet::from_indices([1, 2]),
            ]),
        );
        assert_eq!(
            cluster.group_of(SiteId::new(1)),
            Some(SiteSet::from_indices([1, 2]))
        );
        inj.apply(&mut cluster, FaultOp::Heal);
        assert_eq!(
            cluster.group_of(SiteId::new(1)),
            Some(SiteSet::from_indices([0, 1, 2]))
        );
    }
}
