//! The transport seam: how a coordinator's messages reach other sites.
//!
//! The cluster's poll/plan/copy/commit phases are transport-agnostic:
//! they hand each outgoing [`Message`] to a [`Transport`] and get back
//! what the exchange produced — did the request arrive, and if so, what
//! did the recipient reply. Two implementations exist:
//!
//! * [`BusTransport`] — the in-process nemesis [`Bus`]: every
//!   participant lives in the same [`Cluster`](crate::Cluster), the
//!   transport asks the bus for a fault [`Verdict`] and, on delivery,
//!   invokes the recipient's handler *directly* (the `serve` callback).
//! * `TcpTransport` (crate `dynvote-store`) — real sockets: the request
//!   is framed onto a TCP connection, the remote daemon runs the same
//!   handler ([`Cluster::serve_at`](crate::Cluster::serve_at)) on its
//!   own node, and the framed reply (or its absence, on loss/timeout)
//!   comes back as the [`Carried`] result.
//!
//! Because the protocol code only ever talks to the trait, the nemesis
//! campaigns, the exhaustive checker, and a live loopback cluster all
//! exercise the *identical* implementation of Figures 1–3/5–7.

use dynvote_core::state::ReplicaState;
use dynvote_types::SiteSet;

use crate::bus::{Bus, Verdict};
use crate::message::{Message, MessageKind};

/// One outgoing protocol request, with everything a remote recipient
/// needs to process it.
///
/// `ticket` and `mark_pending` are coordination metadata that ride the
/// `START` frame on a real wire (the in-memory transport's `serve`
/// callback already closes over them); `payload` is the data value a
/// write's `COMMIT` carries.
pub struct WireRequest<'a, T> {
    /// The protocol message (addressing + kind).
    pub message: &'a Message,
    /// The data value riding a write `COMMIT`, if any.
    pub payload: Option<&'a T>,
    /// The coordinator's operation ticket.
    pub ticket: u64,
    /// Whether answering this `START` records an outstanding vote.
    pub mark_pending: bool,
}

/// What a recipient's handler produced for one request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Reply<T> {
    /// Answer to `START`: the replier's consistency-control state.
    State {
        /// The replier's operation number.
        op: u64,
        /// The replier's version number.
        version: u64,
        /// The replier's partition set.
        partition: SiteSet,
    },
    /// Answer to `COMMIT`: installed.
    Ack,
    /// Answer to a copy request: the file, with the version it carries.
    Copy {
        /// The version number of the served copy.
        version: u64,
        /// The file contents.
        value: T,
    },
}

/// A reply that made it back onto the wire.
pub struct Response<T> {
    /// The reply as a wire message, for tracing — `None` when the reply
    /// is a bare commit acknowledgement, which the paper's message
    /// accounting does not count.
    pub wire: Option<Message>,
    /// What the fault surface did to the reply on its way back.
    pub verdict: Verdict,
    /// The reply body.
    pub body: Reply<T>,
}

impl<T> Response<T> {
    /// Whether the reply actually reached the coordinator.
    /// `CrashSender` delivers (the replier dies *after* sending).
    #[must_use]
    pub fn arrived(&self) -> bool {
        matches!(
            self.verdict,
            Verdict::Deliver | Verdict::Duplicate | Verdict::CrashSender
        )
    }
}

/// The complete outcome of one request/reply exchange.
pub struct Carried<T> {
    /// What the fault surface did to the request.
    pub request: Verdict,
    /// The reply, when the recipient processed the request and
    /// answered. `None` covers every silent outcome: the request was
    /// lost, the recipient is wedged on an outstanding vote and
    /// abstained, or (on a real network) the peer is unreachable.
    pub response: Option<Response<T>>,
}

impl<T> Carried<T> {
    /// A silent exchange: the request got verdict `request`, no reply.
    #[must_use]
    pub fn silent(request: Verdict) -> Self {
        Carried {
            request,
            response: None,
        }
    }
}

/// The recipient-side handler a transport invokes on delivery.
///
/// Returns `None` when the recipient abstains (outstanding vote for a
/// different ticket) or cannot answer (witness asked for data).
pub type LocalServe<'a, T> = &'a mut dyn FnMut(&Message, Option<&T>) -> Option<Reply<T>>;

/// Carries protocol messages between sites.
///
/// This is the *only* delivery API the cluster's operation phases use —
/// swapping the implementation swaps the network under the protocol
/// without touching the protocol.
pub trait Transport<T> {
    /// Performs one request/reply exchange.
    ///
    /// `serve` is the handler for recipients hosted in *this* process;
    /// an in-memory transport calls it for every delivered request,
    /// a networked transport never does (its recipients are remote).
    /// The caller applies all verdict side effects (trace records,
    /// crash faults) — the transport only reports them.
    fn carry(&mut self, request: WireRequest<'_, T>, serve: LocalServe<'_, T>) -> Carried<T>;

    /// The commit point of operation `ticket`: the decision is made and
    /// `state` = `⟨o, v, P⟩` (with `value` riding a write) is about to
    /// take effect. Called strictly *before* the coordinator applies
    /// the commit locally and before any `COMMIT` frame is sent, so a
    /// durable transport can record the outcome where a crashed
    /// coordinator's successor will find it (the vote-probe ledger).
    /// In-memory clusters need no such record; the default is a no-op.
    fn commit_point(&mut self, ticket: u64, state: ReplicaState, value: Option<&T>) {
        let _ = (ticket, state, value);
    }

    /// Best-effort broadcast of the abort oracle: sites holding an
    /// outstanding vote for `ticket` and not in `keep` may release it.
    /// In-memory clusters release their nodes directly, so the default
    /// is a no-op; a networked transport forwards it to its peers.
    fn release(&mut self, ticket: u64, keep: SiteSet) {
        let _ = (ticket, keep);
    }
}

/// The in-process transport: the nemesis [`Bus`] decides each
/// message's fate, and delivered requests are served by the local
/// handler.
///
/// Faithful to the original in-line dispatch, with the fault timing the
/// partial-commit tests pin down:
///
/// * `CrashRecipient` kills the recipient *before* it processes the
///   request — no handler effects, no reply.
/// * `CrashSender` on `START` or a copy request kills the coordinator
///   before the recipient's handler runs (the coordinator's loop breaks
///   the instant it learns of its own death, so the recipient's vote is
///   never recorded and no phantom reply hits the trace).
/// * `CrashSender` on `COMMIT` delivers first: the commit *is*
///   installed, then the coordinator dies — the ordering that creates
///   the paper's partial-commit divergence.
#[derive(Clone, Debug, Default)]
pub struct BusTransport {
    bus: Bus,
}

impl BusTransport {
    /// A transport with a fault-free bus.
    #[must_use]
    pub fn new() -> Self {
        BusTransport { bus: Bus::new() }
    }

    /// The fault surface: injected rules and delivery statistics.
    #[must_use]
    pub fn bus(&self) -> &Bus {
        &self.bus
    }

    /// Mutable access to the fault surface.
    pub fn bus_mut(&mut self) -> &mut Bus {
        &mut self.bus
    }
}

impl<T> Transport<T> for BusTransport {
    fn carry(&mut self, request: WireRequest<'_, T>, serve: LocalServe<'_, T>) -> Carried<T> {
        let message = request.message;
        let verdict = self.bus.decide(message);
        let delivered = match verdict {
            Verdict::Deliver | Verdict::Duplicate => true,
            // The sender dies in the act: a commit still lands (the
            // partial-commit ordering), but a poll or copy request is
            // moot — the coordinator that would consume the answer is
            // gone before the recipient acts.
            Verdict::CrashSender => matches!(message.kind, MessageKind::Commit { .. }),
            Verdict::Drop | Verdict::Delay | Verdict::CrashRecipient => false,
        };
        if !delivered {
            return Carried::silent(verdict);
        }
        let Some(body) = serve(message, request.payload) else {
            return Carried::silent(verdict);
        };
        let wire = match &body {
            Reply::State {
                op,
                version,
                partition,
            } => Some(Message {
                from: message.to,
                to: message.from,
                kind: MessageKind::StateReply {
                    op: *op,
                    version: *version,
                    partition: *partition,
                },
            }),
            Reply::Copy { .. } => Some(Message {
                from: message.to,
                to: message.from,
                kind: MessageKind::CopyReply,
            }),
            // Commit acknowledgements are implicit in-process; the
            // paper counts no ACK message and neither do we.
            Reply::Ack => None,
        };
        let reply_verdict = match &wire {
            Some(reply) => self.bus.decide(reply),
            None => Verdict::Deliver,
        };
        Carried {
            request: verdict,
            response: Some(Response {
                wire,
                verdict: reply_verdict,
                body,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::{FaultAction, FaultRule, MessageClass};
    use dynvote_types::SiteId;

    fn start(from: usize, to: usize) -> Message {
        Message {
            from: SiteId::new(from),
            to: SiteId::new(to),
            kind: MessageKind::StartRequest,
        }
    }

    fn commit(from: usize, to: usize) -> Message {
        Message {
            from: SiteId::new(from),
            to: SiteId::new(to),
            kind: MessageKind::Commit {
                op: 2,
                version: 2,
                partition: SiteSet::first_n(2),
            },
        }
    }

    fn carry_one(
        transport: &mut BusTransport,
        message: &Message,
        reply: Option<Reply<u64>>,
    ) -> (Carried<u64>, u32) {
        let mut served = 0;
        let mut serve = |_: &Message, _: Option<&u64>| {
            served += 1;
            reply.clone()
        };
        let carried = transport.carry(
            WireRequest {
                message,
                payload: None,
                ticket: 1,
                mark_pending: true,
            },
            &mut serve,
        );
        (carried, served)
    }

    #[test]
    fn fault_free_request_serves_and_replies() {
        let mut t = BusTransport::new();
        let msg = start(0, 1);
        let state = Reply::State {
            op: 1,
            version: 1,
            partition: SiteSet::first_n(2),
        };
        let (carried, served) = carry_one(&mut t, &msg, Some(state.clone()));
        assert_eq!(served, 1);
        assert_eq!(carried.request, Verdict::Deliver);
        let resp = carried.response.unwrap();
        assert!(resp.arrived());
        assert_eq!(resp.body, state);
        let wire = resp.wire.unwrap();
        assert_eq!((wire.from, wire.to), (msg.to, msg.from));
        assert!(matches!(wire.kind, MessageKind::StateReply { .. }));
    }

    #[test]
    fn dropped_request_never_reaches_the_handler() {
        let mut t = BusTransport::new();
        t.bus_mut().inject(FaultRule::once(
            MessageClass::Start,
            SiteId::new(1),
            FaultAction::Drop,
        ));
        let (carried, served) = carry_one(&mut t, &start(0, 1), None);
        assert_eq!(served, 0);
        assert_eq!(carried.request, Verdict::Drop);
        assert!(carried.response.is_none());
    }

    #[test]
    fn sender_crash_on_start_suppresses_the_handler() {
        let mut t = BusTransport::new();
        t.bus_mut().inject(FaultRule::once(
            MessageClass::Start,
            SiteId::new(1),
            FaultAction::CrashSender,
        ));
        let (carried, served) = carry_one(&mut t, &start(0, 1), None);
        assert_eq!(served, 0, "the coordinator died before the vote counted");
        assert_eq!(carried.request, Verdict::CrashSender);
        assert!(carried.response.is_none());
    }

    #[test]
    fn sender_crash_on_commit_still_installs() {
        let mut t = BusTransport::new();
        t.bus_mut().inject(FaultRule::once(
            MessageClass::Commit,
            SiteId::new(1),
            FaultAction::CrashSender,
        ));
        let (carried, served) = carry_one(&mut t, &commit(0, 1), Some(Reply::Ack));
        assert_eq!(served, 1, "the commit lands, then the sender dies");
        assert_eq!(carried.request, Verdict::CrashSender);
        let resp = carried.response.unwrap();
        assert!(resp.wire.is_none(), "commit acks are not wire messages");
        assert!(resp.arrived());
    }

    #[test]
    fn abstention_is_a_silent_delivery() {
        let mut t = BusTransport::new();
        let (carried, served) = carry_one(&mut t, &start(0, 1), None);
        assert_eq!(served, 1);
        assert_eq!(carried.request, Verdict::Deliver);
        assert!(carried.response.is_none());
    }

    #[test]
    fn release_defaults_to_noop() {
        let mut t = BusTransport::new();
        Transport::<u64>::release(&mut t, 7, SiteSet::EMPTY);
    }
}
