//! The message bus every protocol message crosses — and the place
//! faults are injected into it.
//!
//! The cluster never hands a [`Message`](crate::message::Message)
//! directly to a node: each one is first submitted to the [`Bus`],
//! which consults its injected [`FaultRule`]s and returns a
//! [`Verdict`] telling the cluster what the network actually did.
//! Absent any matching rule the bus is a perfect network ([`Verdict::
//! Deliver`]), so clean-path behaviour and message counts are exactly
//! those of the pre-nemesis implementation.
//!
//! Rules are matched **first-match-wins** in injection order; a rule
//! with `remaining == 0` is spent and skipped (and pruned). Matching
//! is by optional message class, sender and recipient — `None` fields
//! are wildcards — so `drop commit@S2` or "crash S1 whenever it
//! receives any message from S0" are both one rule.

use core::fmt;

use dynvote_types::SiteId;

use crate::message::{Message, MessageKind};

/// Message kinds as a payload-free classification, for fault matching
/// and the scenario DSL.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MessageClass {
    /// `START` broadcasts opening an operation.
    Start,
    /// `STATE` replies carrying `(o_i, v_i, P_i)`.
    State,
    /// `COMMIT` messages closing a granted operation.
    Commit,
    /// Requests for a full data copy.
    CopyRequest,
    /// Full-copy transfers.
    CopyReply,
}

impl MessageClass {
    /// The class of a concrete wire message.
    #[must_use]
    pub fn of(kind: &MessageKind) -> Self {
        match kind {
            MessageKind::StartRequest => MessageClass::Start,
            MessageKind::StateReply { .. } => MessageClass::State,
            MessageKind::Commit { .. } => MessageClass::Commit,
            MessageKind::CopyRequest => MessageClass::CopyRequest,
            MessageKind::CopyReply => MessageClass::CopyReply,
        }
    }

    /// Parses the scenario-DSL spelling (`start`, `state`, `commit`,
    /// `copy-request`/`copy?`, `copy-reply`/`copy!`), case-insensitive.
    #[must_use]
    pub fn parse(text: &str) -> Option<Self> {
        match text.to_ascii_lowercase().as_str() {
            "start" => Some(MessageClass::Start),
            "state" => Some(MessageClass::State),
            "commit" => Some(MessageClass::Commit),
            "copy-request" | "copy?" => Some(MessageClass::CopyRequest),
            "copy-reply" | "copy!" => Some(MessageClass::CopyReply),
            _ => None,
        }
    }

    /// Short label, matching [`MessageKind::label`].
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            MessageClass::Start => "START",
            MessageClass::State => "STATE",
            MessageClass::Commit => "COMMIT",
            MessageClass::CopyRequest => "COPY?",
            MessageClass::CopyReply => "COPY!",
        }
    }
}

impl fmt::Display for MessageClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// What a matching fault rule does to a message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// The message is lost in transit.
    Drop,
    /// The message arrives twice (the duplicate is recorded on the
    /// trace; protocol handling is idempotent per operation ticket).
    Duplicate,
    /// The message is delayed past the operation's patience. For
    /// `START`/`STATE`/copy traffic that is indistinguishable from a
    /// drop; a delayed `COMMIT` is delivered late, after every on-time
    /// commit — the reordering case.
    Delay,
    /// The recipient crashes *before* processing the message: it is
    /// counted as sent, never applied, and the site goes down. This is
    /// the partial-commit hazard in one rule.
    CrashRecipient,
    /// The message is delivered normally, then the *sender* crashes —
    /// a coordinator dying mid-commit-fanout.
    CrashSender,
}

impl fmt::Display for FaultAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FaultAction::Drop => "drop",
            FaultAction::Duplicate => "dup",
            FaultAction::Delay => "delay",
            FaultAction::CrashRecipient => "crash-recipient",
            FaultAction::CrashSender => "crash-sender",
        })
    }
}

/// One injected message fault: a match pattern, an action, and a
/// budget of how many messages it may still affect.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultRule {
    /// Match only this message class (`None` = any).
    pub class: Option<MessageClass>,
    /// Match only messages from this site (`None` = any).
    pub from: Option<SiteId>,
    /// Match only messages to this site (`None` = any).
    pub to: Option<SiteId>,
    /// What happens to a matched message.
    pub action: FaultAction,
    /// How many more messages this rule may affect; decremented on
    /// each match, and the rule is skipped (then pruned) at zero.
    pub remaining: u32,
}

impl FaultRule {
    /// A rule affecting every message of `class` sent to `to`, once.
    #[must_use]
    pub fn once(class: MessageClass, to: SiteId, action: FaultAction) -> Self {
        FaultRule {
            class: Some(class),
            from: None,
            to: Some(to),
            action,
            remaining: 1,
        }
    }

    /// Widens the budget to `n` messages.
    #[must_use]
    pub fn times(mut self, n: u32) -> Self {
        self.remaining = n;
        self
    }

    fn matches(&self, message: &Message) -> bool {
        self.remaining > 0
            && self
                .class
                .is_none_or(|c| c == MessageClass::of(&message.kind))
            && self.from.is_none_or(|s| s == message.from)
            && self.to.is_none_or(|s| s == message.to)
    }
}

impl fmt::Display for FaultRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ", self.action)?;
        match self.class {
            Some(class) => write!(f, "{class}")?,
            None => f.write_str("*")?,
        }
        if let Some(from) = self.from {
            write!(f, " from {from}")?;
        }
        if let Some(to) = self.to {
            write!(f, " to {to}")?;
        }
        write!(f, " x{}", self.remaining)
    }
}

/// The bus's answer for one submitted message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// No rule matched: deliver normally.
    Deliver,
    /// The message is lost.
    Drop,
    /// Delivered, plus one extra wire copy.
    Duplicate,
    /// Delayed past patience (late delivery for `COMMIT`, effectively
    /// lost for everything else).
    Delay,
    /// The recipient crashes before processing.
    CrashRecipient,
    /// Delivered, then the sender crashes.
    CrashSender,
}

/// Counters of what the bus did, across all operations.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BusStats {
    /// Messages delivered normally (including the original of a
    /// duplicated message and a crash-sender delivery).
    pub delivered: u64,
    /// Messages dropped.
    pub dropped: u64,
    /// Duplicate wire copies created.
    pub duplicated: u64,
    /// Messages delayed.
    pub delayed: u64,
    /// Crash-on-receipt faults fired.
    pub crashed_recipients: u64,
    /// Crash-after-send faults fired.
    pub crashed_senders: u64,
}

/// The fault surface between the coordinator and the nodes.
///
/// Starts empty — a perfect network. Inject [`FaultRule`]s to make it
/// lossy; [`Bus::clear`] restores perfection (stats are kept).
#[derive(Clone, Debug, Default)]
pub struct Bus {
    rules: Vec<FaultRule>,
    stats: BusStats,
}

impl Bus {
    /// A perfect bus with no fault rules.
    #[must_use]
    pub fn new() -> Self {
        Bus::default()
    }

    /// Adds a fault rule (consulted after all earlier ones).
    pub fn inject(&mut self, rule: FaultRule) {
        self.rules.push(rule);
    }

    /// Removes every fault rule; the bus delivers perfectly again.
    pub fn clear(&mut self) {
        self.rules.clear();
    }

    /// The rules still armed (spent rules are pruned on decide).
    #[must_use]
    pub fn rules(&self) -> &[FaultRule] {
        &self.rules
    }

    /// What the bus has done so far.
    #[must_use]
    pub fn stats(&self) -> &BusStats {
        &self.stats
    }

    /// Decides the fate of one message. First armed matching rule
    /// wins and has its budget decremented; no match means delivery.
    pub fn decide(&mut self, message: &Message) -> Verdict {
        let verdict = match self.rules.iter_mut().find(|r| r.matches(message)) {
            Some(rule) => {
                rule.remaining -= 1;
                match rule.action {
                    FaultAction::Drop => Verdict::Drop,
                    FaultAction::Duplicate => Verdict::Duplicate,
                    FaultAction::Delay => Verdict::Delay,
                    FaultAction::CrashRecipient => Verdict::CrashRecipient,
                    FaultAction::CrashSender => Verdict::CrashSender,
                }
            }
            None => Verdict::Deliver,
        };
        self.rules.retain(|r| r.remaining > 0);
        match verdict {
            Verdict::Deliver => self.stats.delivered += 1,
            Verdict::Drop => self.stats.dropped += 1,
            Verdict::Duplicate => {
                self.stats.delivered += 1;
                self.stats.duplicated += 1;
            }
            Verdict::Delay => self.stats.delayed += 1,
            Verdict::CrashRecipient => self.stats.crashed_recipients += 1,
            Verdict::CrashSender => {
                self.stats.delivered += 1;
                self.stats.crashed_senders += 1;
            }
        }
        verdict
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn commit(from: usize, to: usize) -> Message {
        Message {
            from: SiteId::new(from),
            to: SiteId::new(to),
            kind: MessageKind::Commit {
                op: 2,
                version: 2,
                partition: dynvote_types::SiteSet::from_indices([0, 1, 2]),
            },
        }
    }

    fn start(from: usize, to: usize) -> Message {
        Message {
            from: SiteId::new(from),
            to: SiteId::new(to),
            kind: MessageKind::StartRequest,
        }
    }

    #[test]
    fn empty_bus_delivers_everything() {
        let mut bus = Bus::new();
        for i in 0..5 {
            assert_eq!(bus.decide(&start(0, i)), Verdict::Deliver);
        }
        assert_eq!(bus.stats().delivered, 5);
        assert_eq!(bus.stats().dropped, 0);
    }

    #[test]
    fn rule_matches_class_and_recipient() {
        let mut bus = Bus::new();
        bus.inject(FaultRule::once(
            MessageClass::Commit,
            SiteId::new(2),
            FaultAction::Drop,
        ));
        // Wrong class and wrong recipient pass through.
        assert_eq!(bus.decide(&start(0, 2)), Verdict::Deliver);
        assert_eq!(bus.decide(&commit(0, 1)), Verdict::Deliver);
        // The targeted message is dropped, exactly once.
        assert_eq!(bus.decide(&commit(0, 2)), Verdict::Drop);
        assert_eq!(bus.decide(&commit(0, 2)), Verdict::Deliver);
        assert!(bus.rules().is_empty(), "spent rule should be pruned");
    }

    #[test]
    fn budget_counts_matches() {
        let mut bus = Bus::new();
        bus.inject(
            FaultRule {
                class: Some(MessageClass::Start),
                from: None,
                to: None,
                action: FaultAction::Drop,
                remaining: 0,
            }
            .times(2),
        );
        assert_eq!(bus.decide(&start(0, 1)), Verdict::Drop);
        assert_eq!(bus.decide(&start(0, 2)), Verdict::Drop);
        assert_eq!(bus.decide(&start(0, 3)), Verdict::Deliver);
        assert_eq!(bus.stats().dropped, 2);
    }

    #[test]
    fn first_match_wins_in_injection_order() {
        let mut bus = Bus::new();
        bus.inject(FaultRule::once(
            MessageClass::Commit,
            SiteId::new(1),
            FaultAction::CrashRecipient,
        ));
        bus.inject(FaultRule::once(
            MessageClass::Commit,
            SiteId::new(1),
            FaultAction::Drop,
        ));
        assert_eq!(bus.decide(&commit(0, 1)), Verdict::CrashRecipient);
        // First rule spent; the second now fires.
        assert_eq!(bus.decide(&commit(0, 1)), Verdict::Drop);
        assert_eq!(bus.decide(&commit(0, 1)), Verdict::Deliver);
    }

    #[test]
    fn wildcard_fields_match_anything() {
        let mut bus = Bus::new();
        bus.inject(FaultRule {
            class: None,
            from: Some(SiteId::new(3)),
            to: None,
            action: FaultAction::Delay,
            remaining: 10,
        });
        assert_eq!(bus.decide(&start(3, 0)), Verdict::Delay);
        assert_eq!(bus.decide(&commit(3, 1)), Verdict::Delay);
        assert_eq!(bus.decide(&commit(0, 3)), Verdict::Deliver);
    }

    #[test]
    fn clear_restores_perfect_delivery() {
        let mut bus = Bus::new();
        bus.inject(FaultRule {
            class: None,
            from: None,
            to: None,
            action: FaultAction::Drop,
            remaining: u32::MAX,
        });
        assert_eq!(bus.decide(&start(0, 1)), Verdict::Drop);
        bus.clear();
        assert_eq!(bus.decide(&start(0, 1)), Verdict::Deliver);
    }

    #[test]
    fn duplicate_and_crash_sender_still_deliver() {
        let mut bus = Bus::new();
        bus.inject(FaultRule::once(
            MessageClass::State,
            SiteId::new(0),
            FaultAction::Duplicate,
        ));
        let state = Message {
            from: SiteId::new(1),
            to: SiteId::new(0),
            kind: MessageKind::StateReply {
                op: 1,
                version: 1,
                partition: dynvote_types::SiteSet::from_indices([0, 1]),
            },
        };
        assert_eq!(bus.decide(&state), Verdict::Duplicate);
        assert_eq!(bus.stats().delivered, 1);
        assert_eq!(bus.stats().duplicated, 1);
    }

    #[test]
    fn class_parse_round_trips() {
        for class in [
            MessageClass::Start,
            MessageClass::State,
            MessageClass::Commit,
            MessageClass::CopyRequest,
            MessageClass::CopyReply,
        ] {
            assert_eq!(
                MessageClass::parse(&class.label().to_lowercase()),
                Some(class)
            );
        }
        assert_eq!(
            MessageClass::parse("copy-request"),
            Some(MessageClass::CopyRequest)
        );
        assert_eq!(
            MessageClass::parse("copy-reply"),
            Some(MessageClass::CopyReply)
        );
        assert_eq!(MessageClass::parse("gossip"), None);
    }
}
