//! The protocol's wire vocabulary and per-operation message accounting.

use dynvote_types::{SiteId, SiteSet};

/// One protocol message, as it would appear on the network.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Message {
    /// Sending site.
    pub from: SiteId,
    /// Receiving site.
    pub to: SiteId,
    /// Payload.
    pub kind: MessageKind,
}

/// The message kinds of the paper's operation structure.
///
/// `START` broadcasts a request; reachable sites answer with their
/// consistency-control state; the coordinator decides; `COMMIT` (or
/// nothing, on abort) closes the round, with an optional data copy for
/// recovering or stale sites.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MessageKind {
    /// The broadcast opening an operation ("a message is broadcast to
    /// all sites; those that send replies are considered to be in the
    /// current partition").
    StartRequest,
    /// A reachable site's reply: its operation number, version number
    /// and partition set.
    StateReply {
        /// The replier's operation number.
        op: u64,
        /// The replier's version number.
        version: u64,
        /// The replier's partition set.
        partition: SiteSet,
    },
    /// The commit closing a successful operation: the new consistency
    /// control information for every participant.
    Commit {
        /// New operation number.
        op: u64,
        /// New version number.
        version: u64,
        /// New partition set.
        partition: SiteSet,
    },
    /// Request for a full copy of the file (recovery of a stale site).
    CopyRequest,
    /// The full copy (we count it as one message; real systems stream).
    CopyReply,
}

impl MessageKind {
    /// Short label for traces.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            MessageKind::StartRequest => "START",
            MessageKind::StateReply { .. } => "STATE",
            MessageKind::Commit { .. } => "COMMIT",
            MessageKind::CopyRequest => "COPY?",
            MessageKind::CopyReply => "COPY!",
        }
    }
}

/// A bounded log of protocol messages with total counters.
///
/// Counting is always on; the message *bodies* are retained only up to a
/// configurable capacity so long property-test runs stay cheap.
#[derive(Clone, Debug)]
pub struct Trace {
    kept: Vec<Message>,
    capacity: usize,
    total: u64,
    by_kind: [u64; 5],
}

impl Default for Trace {
    fn default() -> Self {
        Trace::with_capacity(1024)
    }
}

impl Trace {
    /// A trace retaining at most `capacity` message bodies.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Trace {
            kept: Vec::new(),
            capacity,
            total: 0,
            by_kind: [0; 5],
        }
    }

    fn kind_index(kind: &MessageKind) -> usize {
        match kind {
            MessageKind::StartRequest => 0,
            MessageKind::StateReply { .. } => 1,
            MessageKind::Commit { .. } => 2,
            MessageKind::CopyRequest => 3,
            MessageKind::CopyReply => 4,
        }
    }

    /// Records one message.
    pub fn record(&mut self, message: Message) {
        self.total += 1;
        self.by_kind[Self::kind_index(&message.kind)] += 1;
        if self.kept.len() < self.capacity {
            self.kept.push(message);
        }
    }

    /// Total messages recorded since the last [`Trace::clear`].
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Messages of one kind (matched by label index).
    #[must_use]
    pub fn count_of(&self, kind: &MessageKind) -> u64 {
        self.by_kind[Self::kind_index(kind)]
    }

    /// The retained message bodies (up to capacity).
    #[must_use]
    pub fn messages(&self) -> &[Message] {
        &self.kept
    }

    /// Clears counters and retained messages.
    pub fn clear(&mut self) {
        self.kept.clear();
        self.total = 0;
        self.by_kind = [0; 5];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(kind: MessageKind) -> Message {
        Message {
            from: SiteId::new(0),
            to: SiteId::new(1),
            kind,
        }
    }

    #[test]
    fn counts_by_kind() {
        let mut t = Trace::default();
        t.record(msg(MessageKind::StartRequest));
        t.record(msg(MessageKind::StartRequest));
        t.record(msg(MessageKind::CopyReply));
        assert_eq!(t.total(), 3);
        assert_eq!(t.count_of(&MessageKind::StartRequest), 2);
        assert_eq!(t.count_of(&MessageKind::CopyReply), 1);
        assert_eq!(t.count_of(&MessageKind::CopyRequest), 0);
    }

    #[test]
    fn capacity_bounds_retention_not_counting() {
        let mut t = Trace::with_capacity(2);
        for _ in 0..10 {
            t.record(msg(MessageKind::StartRequest));
        }
        assert_eq!(t.total(), 10);
        assert_eq!(t.messages().len(), 2);
    }

    #[test]
    fn clear_resets() {
        let mut t = Trace::default();
        t.record(msg(MessageKind::StartRequest));
        t.clear();
        assert_eq!(t.total(), 0);
        assert!(t.messages().is_empty());
    }

    #[test]
    fn labels() {
        assert_eq!(MessageKind::StartRequest.label(), "START");
        assert_eq!(
            MessageKind::Commit {
                op: 1,
                version: 1,
                partition: SiteSet::EMPTY
            }
            .label(),
            "COMMIT"
        );
    }
}
