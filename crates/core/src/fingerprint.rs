//! Deterministic state fingerprinting for exhaustive exploration.
//!
//! A model checker deduplicates its frontier by hashing each explored
//! state. `std`'s default hasher is randomly keyed per process, which
//! would make explored-state counts (and trace files keyed by
//! fingerprint) differ run to run — useless for a tool whose whole
//! output must be reproducible. [`Fnv64`] is a fixed-key FNV-1a
//! implementation of [`std::hash::Hasher`]: the same state hashes to
//! the same 64-bit fingerprint on every run, every platform.
//!
//! The collision risk of 64-bit fingerprinting is the standard
//! small-scope trade: at 10⁶ states the birthday bound puts a collision
//! below 3 · 10⁻⁸, and a collision can only *hide* a state, never
//! invent a violation.

use std::hash::{Hash, Hasher};

use dynvote_types::SiteSet;

use crate::state::StateTable;

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// Fixed-key FNV-1a 64-bit [`Hasher`]: deterministic across processes,
/// platforms, and runs.
#[derive(Clone, Debug)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64(FNV_OFFSET)
    }
}

impl Fnv64 {
    /// A fresh hasher at the FNV offset basis.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Hasher for Fnv64 {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
}

/// The deterministic fingerprint of any hashable value.
#[must_use]
pub fn fingerprint_of<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut hasher = Fnv64::new();
    value.hash(&mut hasher);
    hasher.finish()
}

impl StateTable {
    /// Fingerprints the `(op, version, partition)` triples of `sites`.
    ///
    /// Only the listed sites participate — a [`StateTable`] physically
    /// holds `MAX_SITES` slots, and hashing the unused tail would make
    /// fingerprints depend on dead memory the protocol never reads.
    #[must_use]
    pub fn fingerprint(&self, sites: SiteSet) -> u64 {
        let mut hasher = Fnv64::new();
        sites.bits().hash(&mut hasher);
        for site in sites.iter() {
            self.get(site).hash(&mut hasher);
        }
        hasher.finish()
    }
}

#[cfg(test)]
mod tests {
    use dynvote_types::{SiteId, SiteSet};

    use super::*;
    use crate::state::ReplicaState;

    #[test]
    fn deterministic_and_value_sensitive() {
        let copies = SiteSet::first_n(3);
        let table = StateTable::fresh(copies);
        assert_eq!(table.fingerprint(copies), table.fingerprint(copies));

        let mut changed = table.clone();
        changed.set(
            SiteId::new(1),
            ReplicaState {
                op: 2,
                version: 1,
                partition: copies,
            },
        );
        assert_ne!(table.fingerprint(copies), changed.fingerprint(copies));
    }

    #[test]
    fn ignores_sites_outside_the_mask() {
        let copies = SiteSet::first_n(3);
        let mut a = StateTable::fresh(copies);
        let mut b = StateTable::fresh(copies);
        // Scribble different junk on a site outside the mask.
        a.set(
            SiteId::new(7),
            ReplicaState {
                op: 9,
                version: 9,
                partition: copies,
            },
        );
        b.set(
            SiteId::new(7),
            ReplicaState {
                op: 3,
                version: 3,
                partition: SiteSet::EMPTY,
            },
        );
        assert_eq!(a.fingerprint(copies), b.fingerprint(copies));
    }

    #[test]
    fn known_vector() {
        // FNV-1a of the empty input is the offset basis; pins the
        // constants against accidental edits.
        assert_eq!(Fnv64::new().finish(), 0xCBF2_9CE4_8422_2325);
        let mut h = Fnv64::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xAF63_DC4C_8601_EC8C);
    }
}
