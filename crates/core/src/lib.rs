#![warn(missing_docs)]

//! Dynamic voting protocols for replicated data.
//!
//! This crate implements the consistency protocols of *"Efficient Dynamic
//! Voting Algorithms"* (Jehan-François Pâris and Darrell D. E. Long,
//! ICDE 1988), plus the baselines they are evaluated against and the
//! extensions the paper points to:
//!
//! | Protocol | Module | Paper section |
//! |----------|--------|---------------|
//! | Majority Consensus Voting (MCV) | [`policy::mcv`] | §1, baseline |
//! | Dynamic Voting (DV) | [`policy::dynamic`] | §2 (Davčev–Burkhard) |
//! | Lexicographic Dynamic Voting (LDV) | [`policy::dynamic`] | §2 (Jajodia) |
//! | **Optimistic Dynamic Voting (ODV)** | [`policy::dynamic`], [`ops`] | §2.1, Figs 1–3 |
//! | **Topological Dynamic Voting (TDV)** | [`policy::dynamic`] | §3 |
//! | **Optimistic Topological DV (OTDV)** | [`policy::dynamic`], [`ops`] | §3, Figs 5–7 |
//! | Available Copy | [`policy::available_copy`] | §3 (degenerate case) |
//! | Weighted voting (Gifford) | [`policy::weighted`] | §5 (future work) |
//! | Voting with witnesses | [`policy::witness`] | §5 (future work) |
//!
//! # Architecture
//!
//! The protocol state each physical copy maintains — an *operation
//! number*, a *version number*, and a *partition set* — lives in
//! [`state::ReplicaState`]. The heart of every protocol is Algorithm 1,
//! the **majority-partition decision**, implemented once as a pure
//! function in [`decision`] and parameterized by a [`decision::Rule`]
//! (plain strict majority, lexicographic tie-break, or topological vote
//! claiming). The READ / WRITE / RECOVER procedures of Figures 1–3 and
//! 5–7 are implemented in [`ops`] as *planners*: they take a view of the
//! reachable states and return either a [`ops::Plan`] describing exactly
//! what to commit where, or the [`AccessError`] explaining the abort.
//!
//! On top of the planners, [`policy`] packages each protocol as an
//! [`policy::AvailabilityPolicy`] — the state machine the discrete-event
//! availability simulator (crate `dynvote-availability`) drives, and the
//! message-level replicated store (crate `dynvote-replica`) executes.
//!
//! # Quick example
//!
//! ```
//! use dynvote_core::decision::{decide, Rule};
//! use dynvote_core::state::StateTable;
//! use dynvote_types::{SiteId, SiteSet};
//!
//! // Three copies on sites S0, S1, S2; everyone current.
//! let copies = SiteSet::first_n(3);
//! let states = StateTable::fresh(copies);
//!
//! // S1 is down: can {S0, S2} proceed?
//! let group = SiteSet::from_indices([0, 2]);
//! let d = decide(group, copies, &states, &Rule::lexicographic(), None);
//! assert!(d.granted().is_ok(), "2 of 3 is a strict majority");
//! ```

pub mod check;
pub mod decision;
pub mod fingerprint;
pub mod lexicon;
pub mod ops;
pub mod policy;
pub mod state;
pub mod wire;

pub use check::{ProtocolSnapshot, StateInvariant};
pub use decision::{decide, explain, Decision, Rule};
pub use dynvote_types::{AccessError, AccessKind, SiteId, SiteSet, VoteMap};
pub use fingerprint::{fingerprint_of, Fnv64};
pub use lexicon::Lexicon;
pub use ops::{plan, plan_with_witnesses, OpKind, Plan};
pub use policy::{AvailabilityPolicy, PolicyKind};
pub use state::{ReplicaState, StateTable};
