//! Byte-level wire views of the protocol's control state.
//!
//! The policy state each site exchanges at access time — the operation
//! number `o_i`, the version number `v_i`, and the partition set `P_i`
//! of [`ReplicaState`] — is all a real transport ever needs to move, so
//! this module pins one canonical encoding for it: fixed-width
//! big-endian integers, with a `SiteSet` travelling as its raw 64-bit
//! membership mask. `dynvote-store` frames are built from these
//! primitives; keeping them here (next to the state they serialize)
//! means a change to [`ReplicaState`] breaks the codec at compile time
//! instead of on the wire.
//!
//! Decoding is *total*: every function returns [`WireError`] on short
//! input and never panics or over-reads, which is what lets the frame
//! decoder feed it untrusted bytes.

use core::fmt;

use dynvote_types::SiteSet;

use crate::state::ReplicaState;

/// Why a wire view failed to decode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value did.
    Truncated,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => f.write_str("truncated wire value"),
        }
    }
}

impl std::error::Error for WireError {}

/// A bounds-checked forward-only reader over a byte slice.
#[derive(Clone, Copy, Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader starting at the beginning of `buf`.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// `true` when every byte has been consumed — frame decoders use
    /// this to reject trailing garbage.
    #[must_use]
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Reads `n` raw bytes.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] when fewer than `n` bytes remain.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] on empty input.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.bytes(1)?[0])
    }

    /// Reads a big-endian `u16`.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] when fewer than two bytes remain.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.bytes(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    /// Reads a big-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] when fewer than four bytes remain.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.bytes(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a big-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] when fewer than eight bytes remain.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.bytes(8)?;
        Ok(u64::from_be_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a [`SiteSet`] (its raw membership mask).
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] when fewer than eight bytes remain.
    pub fn site_set(&mut self) -> Result<SiteSet, WireError> {
        Ok(SiteSet::from_bits(self.u64()?))
    }

    /// Reads a [`ReplicaState`] wire view (see [`put_state`]).
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] when fewer than 24 bytes remain.
    pub fn state(&mut self) -> Result<ReplicaState, WireError> {
        Ok(ReplicaState {
            op: self.u64()?,
            version: self.u64()?,
            partition: self.site_set()?,
        })
    }
}

/// Appends one byte.
pub fn put_u8(out: &mut Vec<u8>, value: u8) {
    out.push(value);
}

/// Appends a big-endian `u16`.
pub fn put_u16(out: &mut Vec<u8>, value: u16) {
    out.extend_from_slice(&value.to_be_bytes());
}

/// Appends a big-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, value: u32) {
    out.extend_from_slice(&value.to_be_bytes());
}

/// Appends a big-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, value: u64) {
    out.extend_from_slice(&value.to_be_bytes());
}

/// Appends a [`SiteSet`] as its raw membership mask.
pub fn put_site_set(out: &mut Vec<u8>, set: SiteSet) {
    put_u64(out, set.bits());
}

/// Appends a [`ReplicaState`]: `o_i`, `v_i`, `P_i` — 24 bytes, the
/// paper's complete per-copy consistency-control record.
pub fn put_state(out: &mut Vec<u8>, state: &ReplicaState) {
    put_u64(out, state.op);
    put_u64(out, state.version);
    put_site_set(out, state.partition);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_round_trips() {
        let state = ReplicaState {
            op: 7,
            version: 3,
            partition: SiteSet::from_indices([0, 2, 5]),
        };
        let mut buf = Vec::new();
        put_state(&mut buf, &state);
        assert_eq!(buf.len(), 24);
        let mut r = Reader::new(&buf);
        assert_eq!(r.state().unwrap(), state);
        assert!(r.is_exhausted());
    }

    #[test]
    fn integers_round_trip() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 0xAB);
        put_u16(&mut buf, 0xBEEF);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 1);
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncated_reads_error_without_panicking() {
        let buf = [1u8, 2, 3];
        let mut r = Reader::new(&buf);
        assert_eq!(r.u32(), Err(WireError::Truncated));
        // A failed read consumes nothing.
        assert_eq!(r.remaining(), 3);
        assert_eq!(r.u16().unwrap(), 0x0102);
        assert_eq!(r.u64(), Err(WireError::Truncated));
        assert_eq!(r.u8().unwrap(), 3);
        assert!(r.is_exhausted());
        assert_eq!(r.u8(), Err(WireError::Truncated));
    }
}
