//! The static linear site ordering used to break ties.

use dynvote_types::{SiteId, SiteSet, MAX_SITES};

/// The static linear ordering of sites used by the lexicographic
/// tie-breaking rule.
///
/// When a group holds *exactly half* of the previous majority partition,
/// Lexicographic Dynamic Voting grants the access iff the group contains
/// the **maximum** element of that partition under this ordering
/// (Jajodia's rule). The ordering must be agreed on ahead of time and
/// never change — it is configuration, not state.
///
/// The paper's worked example orders sites `A > B > C`; mapping `A, B, C`
/// to sites `S0, S1, S2`, the *default* lexicon ranks **lower indices
/// higher**, so `max({S0, S2}) = S0`. Custom priorities (e.g. ranking the
/// most reliable site highest) are supported via [`Lexicon::from_priority`]
/// and are exercised by the ablation benchmarks.
///
/// # Examples
///
/// ```
/// use dynvote_core::Lexicon;
/// use dynvote_types::{SiteId, SiteSet};
///
/// let lex = Lexicon::default();
/// let p = SiteSet::from_indices([0, 2]);
/// assert_eq!(lex.max_of(p), Some(SiteId::new(0)), "S0 outranks S2");
///
/// // Rank S2 highest instead.
/// let lex = Lexicon::from_priority([2, 0, 1]);
/// assert_eq!(lex.max_of(p), Some(SiteId::new(2)));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Lexicon {
    /// `rank[i]` = priority of site `i`; higher rank wins.
    rank: [u8; MAX_SITES],
}

impl Default for Lexicon {
    /// Lower site index ⇒ higher rank (the paper's `A > B > C`).
    fn default() -> Self {
        let mut rank = [0u8; MAX_SITES];
        for (i, r) in rank.iter_mut().enumerate() {
            *r = (MAX_SITES - 1 - i) as u8;
        }
        Lexicon { rank }
    }
}

impl Lexicon {
    /// Builds a lexicon from an explicit priority list: the first site
    /// listed ranks highest. Sites not listed rank below all listed
    /// sites, ordered by ascending index among themselves.
    #[must_use]
    pub fn from_priority<I: IntoIterator<Item = usize>>(priority: I) -> Self {
        let mut rank = [0u8; MAX_SITES];
        // Unlisted sites get low ranks by descending index distance.
        let mut listed = [false; MAX_SITES];
        let order: Vec<usize> = priority.into_iter().collect();
        let mut next_rank = MAX_SITES as u8;
        for &site in &order {
            assert!(site < MAX_SITES, "site index out of range");
            assert!(!listed[site], "site listed twice in priority order");
            next_rank -= 1;
            rank[site] = next_rank;
            listed[site] = true;
        }
        for i in 0..MAX_SITES {
            if !listed[i] {
                next_rank -= 1;
                rank[i] = next_rank;
            }
        }
        Lexicon { rank }
    }

    /// A lexicon where *higher* site index ranks higher (the reverse of
    /// the default), used by ablations to test sensitivity to the
    /// ordering choice.
    #[must_use]
    pub fn ascending() -> Self {
        let mut rank = [0u8; MAX_SITES];
        for (i, r) in rank.iter_mut().enumerate() {
            *r = i as u8;
        }
        Lexicon { rank }
    }

    /// The priority rank of a site (higher wins ties).
    #[inline]
    #[must_use]
    pub fn rank(&self, site: SiteId) -> u8 {
        self.rank[site.index()]
    }

    /// The maximum element of `set` under this ordering — the paper's
    /// `max(P_m)`.
    #[must_use]
    pub fn max_of(&self, set: SiteSet) -> Option<SiteId> {
        set.iter().max_by_key(|s| self.rank[s.index()])
    }
}

impl core::fmt::Debug for Lexicon {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Print only the first few ranks; full 64-entry dumps are noise.
        write!(f, "Lexicon(top8: ")?;
        let mut sites: Vec<usize> = (0..8).collect();
        sites.sort_by_key(|&i| core::cmp::Reverse(self.rank[i]));
        for (n, i) in sites.iter().enumerate() {
            if n > 0 {
                write!(f, " > ")?;
            }
            write!(f, "S{i}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_ranks_lower_index_higher() {
        let lex = Lexicon::default();
        assert!(lex.rank(SiteId::new(0)) > lex.rank(SiteId::new(1)));
        assert_eq!(
            lex.max_of(SiteSet::from_indices([3, 5, 7])),
            Some(SiteId::new(3))
        );
        assert_eq!(lex.max_of(SiteSet::EMPTY), None);
    }

    #[test]
    fn ascending_ranks_higher_index_higher() {
        let lex = Lexicon::ascending();
        assert_eq!(
            lex.max_of(SiteSet::from_indices([3, 5, 7])),
            Some(SiteId::new(7))
        );
    }

    #[test]
    fn explicit_priority_respected() {
        let lex = Lexicon::from_priority([4, 2, 6]);
        assert_eq!(
            lex.max_of(SiteSet::from_indices([2, 4, 6])),
            Some(SiteId::new(4))
        );
        assert_eq!(
            lex.max_of(SiteSet::from_indices([2, 6])),
            Some(SiteId::new(2))
        );
        // Unlisted sites rank below all listed ones.
        assert_eq!(
            lex.max_of(SiteSet::from_indices([0, 6])),
            Some(SiteId::new(6))
        );
    }

    #[test]
    #[should_panic(expected = "listed twice")]
    fn duplicate_priority_panics() {
        let _ = Lexicon::from_priority([1, 1]);
    }

    #[test]
    fn paper_worked_example_ordering() {
        // "Suppose the sites are ordered so that A > B > C" with
        // A=S0, B=S1, C=S2: after the A–C link fails, A alone is the
        // majority partition because max({A, C}) = A.
        let lex = Lexicon::default();
        let prev_partition = SiteSet::from_indices([0, 2]); // {A, C}
        assert_eq!(lex.max_of(prev_partition), Some(SiteId::new(0)));
    }
}
