//! Pluggable protocol invariants for model checking.
//!
//! The paper's safety argument (Section 3) rests on two claims: at any
//! instant *at most one* group of communicating sites can win the
//! majority-partition decision, and the consistency-control counters
//! only ever move forward. This module states those claims as
//! [`StateInvariant`]s — pure checks over a [`ProtocolSnapshot`] — so
//! an exhaustive explorer (crate `dynvote-check`) can evaluate them at
//! every reachable state, and so new invariants can be plugged in
//! without touching the explorer.
//!
//! The invariants here are *table-level*: they see the per-site
//! `(op, version, partition)` state and the communication groups, and
//! they re-run the real Algorithm 1 ([`crate::decision::decide`] /
//! [`crate::ops::plan_with_witnesses`]) — not a re-model of it.
//! History-dependent oracles (operation numbers minted at most once, no
//! read older than the last committed write, cross-policy differentials)
//! need per-path ground truth and live with the explorer.

use dynvote_topology::Network;
use dynvote_types::SiteSet;

use crate::decision::Rule;
use crate::lexicon::Lexicon;
use crate::ops::{plan_with_witnesses, OpKind};
use crate::state::StateTable;

/// One observed invariant violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Name of the invariant that failed ([`StateInvariant::name`]).
    pub invariant: &'static str,
    /// Human-readable description of what went wrong.
    pub detail: String,
}

impl core::fmt::Display for Violation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}: {}", self.invariant, self.detail)
    }
}

/// Everything a table-level invariant may inspect about one state.
///
/// Borrowed, not owned: the explorer assembles it per state from the
/// live cluster without copying tables.
pub struct ProtocolSnapshot<'a> {
    /// Sites holding full data copies.
    pub copies: SiteSet,
    /// Sites holding witness (state-only) replicas.
    pub witnesses: SiteSet,
    /// Per-site consistency-control state.
    pub states: &'a StateTable,
    /// The maximal communication groups of *up* sites, pairwise
    /// disjoint. Down sites appear in no group.
    pub groups: &'a [SiteSet],
    /// The decision rule, or `None` for static-quorum MCV.
    pub rule: Option<&'a Rule>,
    /// The topology (required by topological rules).
    pub network: Option<&'a Network>,
}

impl ProtocolSnapshot<'_> {
    /// Would Algorithm 1 grant a READ coordinated from inside `group`?
    ///
    /// Runs the real planner (or the static MCV quorum test with the
    /// paper-calibrated half-plus-top-copy tie) — the same decision the
    /// message-level cluster takes, minus the messages.
    #[must_use]
    pub fn granted(&self, group: SiteSet) -> bool {
        match self.rule {
            Some(rule) => plan_with_witnesses(
                OpKind::Read,
                group,
                self.copies,
                self.witnesses,
                self.states,
                rule,
                self.network,
            )
            .is_ok(),
            None => {
                let reachable = group & self.copies;
                let n = self.copies.len();
                2 * reachable.len() > n
                    || (2 * reachable.len() == n
                        && Lexicon::default()
                            .max_of(self.copies)
                            .is_some_and(|top| reachable.contains(top)))
            }
        }
    }
}

/// A pluggable invariant over protocol states and transitions.
///
/// Implementations should be pure: both hooks may be called on any
/// state in any order (the explorer memoizes and backtracks), so no
/// internal mutable bookkeeping is allowed.
pub trait StateInvariant: Send + Sync {
    /// Short stable name, used in reports and trace files.
    fn name(&self) -> &'static str;

    /// Checks a single state. Default: nothing to check.
    ///
    /// # Errors
    ///
    /// Returns the [`Violation`] when the state breaks the invariant.
    fn check_state(&self, snapshot: &ProtocolSnapshot<'_>) -> Result<(), Violation> {
        let _ = snapshot;
        Ok(())
    }

    /// Checks one transition between consecutive states. Default:
    /// nothing to check.
    ///
    /// # Errors
    ///
    /// Returns the [`Violation`] when the transition breaks the
    /// invariant.
    fn check_step(
        &self,
        prev: &StateTable,
        next: &StateTable,
        sites: SiteSet,
    ) -> Result<(), Violation> {
        let _ = (prev, next, sites);
        Ok(())
    }
}

/// *At most one* communication group may win the majority-partition
/// decision in any state (the paper's mutual-exclusion claim).
///
/// Under the topological rules this can genuinely fail after a
/// sequential claim (DESIGN.md, "the sequential-claim hazard") — the
/// explorer reports those as known hazards rather than errors, but the
/// invariant itself stays strict: it *detects*, classification is the
/// caller's policy.
pub struct AtMostOneMajority;

impl StateInvariant for AtMostOneMajority {
    fn name(&self) -> &'static str {
        "at-most-one-majority"
    }

    fn check_state(&self, snapshot: &ProtocolSnapshot<'_>) -> Result<(), Violation> {
        let mut winner: Option<SiteSet> = None;
        for &group in snapshot.groups {
            if group.is_empty() || !snapshot.granted(group) {
                continue;
            }
            if let Some(first) = winner {
                return Err(Violation {
                    invariant: self.name(),
                    detail: format!("rival majority partitions: {first} and {group}"),
                });
            }
            winner = Some(group);
        }
        Ok(())
    }
}

/// Per-site operation and version numbers never decrease.
///
/// Commits only ever install `max + 1` counters, so any decrease means
/// a site adopted state from a forked or stale lineage.
pub struct MonotoneCounters;

impl StateInvariant for MonotoneCounters {
    fn name(&self) -> &'static str {
        "monotone-counters"
    }

    fn check_step(
        &self,
        prev: &StateTable,
        next: &StateTable,
        sites: SiteSet,
    ) -> Result<(), Violation> {
        for site in sites.iter() {
            let before = prev.get(site);
            let after = next.get(site);
            if after.op < before.op || after.version < before.version {
                return Err(Violation {
                    invariant: self.name(),
                    detail: format!(
                        "{site} went from (o={}, v={}) to (o={}, v={})",
                        before.op, before.version, after.op, after.version
                    ),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use dynvote_types::SiteId;

    use super::*;
    use crate::state::ReplicaState;

    fn snapshot_with<'a>(
        states: &'a StateTable,
        groups: &'a [SiteSet],
        rule: Option<&'a Rule>,
    ) -> ProtocolSnapshot<'a> {
        ProtocolSnapshot {
            copies: SiteSet::first_n(4),
            witnesses: SiteSet::EMPTY,
            states,
            groups,
            rule,
            network: None,
        }
    }

    #[test]
    fn healthy_partition_passes() {
        let states = StateTable::fresh(SiteSet::first_n(4));
        let rule = Rule::lexicographic();
        let groups = [SiteSet::from_indices([0, 1, 2]), SiteSet::from_indices([3])];
        let snap = snapshot_with(&states, &groups, Some(&rule));
        assert!(AtMostOneMajority.check_state(&snap).is_ok());
    }

    #[test]
    fn rival_majorities_detected() {
        // Two groups that each believe they are the full partition:
        // forge forked partition sets, the fingerprint of a sequential
        // claim gone wrong.
        let copies = SiteSet::first_n(4);
        let mut states = StateTable::fresh(copies);
        let left = SiteSet::from_indices([0, 1]);
        let right = SiteSet::from_indices([2, 3]);
        for site in left.iter() {
            states.set(
                site,
                ReplicaState {
                    op: 2,
                    version: 1,
                    partition: left,
                },
            );
        }
        for site in right.iter() {
            states.set(
                site,
                ReplicaState {
                    op: 2,
                    version: 1,
                    partition: right,
                },
            );
        }
        let rule = Rule::lexicographic();
        let groups = [left, right];
        let snap = snapshot_with(&states, &groups, Some(&rule));
        let err = AtMostOneMajority.check_state(&snap).unwrap_err();
        assert_eq!(err.invariant, "at-most-one-majority");
    }

    #[test]
    fn mcv_half_with_top_copy_is_single_winner() {
        let states = StateTable::fresh(SiteSet::first_n(4));
        let groups = [SiteSet::from_indices([0, 1]), SiteSet::from_indices([2, 3])];
        let snap = snapshot_with(&states, &groups, None);
        // {S0,S1} wins the calibrated tie, {S2,S3} loses it: one winner.
        assert!(snap.granted(SiteSet::from_indices([0, 1])));
        assert!(!snap.granted(SiteSet::from_indices([2, 3])));
        assert!(AtMostOneMajority.check_state(&snap).is_ok());
    }

    #[test]
    fn counter_regression_detected() {
        let copies = SiteSet::first_n(2);
        let prev = StateTable::fresh(copies);
        let mut next = prev.clone();
        next.set(
            SiteId::new(1),
            ReplicaState {
                op: 0,
                version: 1,
                partition: copies,
            },
        );
        let err = MonotoneCounters
            .check_step(&prev, &next, copies)
            .unwrap_err();
        assert_eq!(err.invariant, "monotone-counters");
        assert!(MonotoneCounters.check_step(&prev, &prev, copies).is_ok());
    }
}
