//! Per-copy protocol state: operation number, version number, partition set.

use core::fmt;

use dynvote_types::{SiteId, SiteSet, MAX_SITES};

/// The consistency-control state attached to one physical copy.
///
/// Quoting the paper (§2.1): *"Every physical copy of a replicated file
/// will maintain some state information. This information will include a
/// operation number, a version number and a partition set."*
///
/// * `op` — incremented at every successful operation the copy takes part
///   in; the set of reachable copies with the **maximum** operation
///   number is the quorum set `Q`.
/// * `version` — identifies the last successful **write** the copy has
///   seen; reads bump `op` but not `version`, which is exactly what lets
///   recovering copies skip a data transfer when only reads happened
///   while they were away.
/// * `partition` — the set of sites that participated in the most recent
///   operation (the paper's `P_i`); the majority test is run against the
///   partition set of any maximal-`op` copy.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReplicaState {
    /// Operation number `o_i` (≥ 1).
    pub op: u64,
    /// Version number `v_i` (≥ 1).
    pub version: u64,
    /// Partition set `P_i`.
    pub partition: SiteSet,
}

impl ReplicaState {
    /// The state every copy starts with: `o = v = 1` and the partition
    /// set containing all copies (the paper's initial configuration).
    #[must_use]
    pub fn initial(all_copies: SiteSet) -> Self {
        ReplicaState {
            op: 1,
            version: 1,
            partition: all_copies,
        }
    }
}

impl fmt::Debug for ReplicaState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "o={}, v={}, P={}", self.op, self.version, self.partition)
    }
}

/// The collection of every copy's [`ReplicaState`], indexed by site.
///
/// In a deployment each site stores its own entry on stable storage; the
/// simulator and the in-process replicated store keep them side by side.
/// A `StateTable` holds a slot for *all* addressable sites — slots of
/// sites that hold no copy are simply never read.
#[derive(Clone, PartialEq, Eq)]
pub struct StateTable {
    states: Box<[ReplicaState; MAX_SITES]>,
}

impl StateTable {
    /// A table where every copy in `copies` carries the initial state.
    #[must_use]
    pub fn fresh(copies: SiteSet) -> Self {
        StateTable {
            states: Box::new([ReplicaState::initial(copies); MAX_SITES]),
        }
    }

    /// The state stored at `site`.
    #[inline]
    #[must_use]
    pub fn get(&self, site: SiteId) -> &ReplicaState {
        &self.states[site.index()]
    }

    /// Mutable access to the state stored at `site`.
    #[inline]
    pub fn get_mut(&mut self, site: SiteId) -> &mut ReplicaState {
        &mut self.states[site.index()]
    }

    /// Overwrites the state at `site`.
    #[inline]
    pub fn set(&mut self, site: SiteId, state: ReplicaState) {
        self.states[site.index()] = state;
    }

    /// The highest operation number among `group`, with the set of
    /// holders — the paper's `Q ⊆ R`. Returns `None` for an empty group.
    #[must_use]
    pub fn max_op(&self, group: SiteSet) -> Option<(u64, SiteSet)> {
        let mut best: Option<(u64, SiteSet)> = None;
        for site in group.iter() {
            let op = self.states[site.index()].op;
            match &mut best {
                None => best = Some((op, SiteSet::singleton(site))),
                Some((max, holders)) => {
                    if op > *max {
                        *max = op;
                        *holders = SiteSet::singleton(site);
                    } else if op == *max {
                        holders.insert(site);
                    }
                }
            }
        }
        best
    }

    /// The highest version number among `group`, with the set of holders
    /// — the paper's `S ⊆ R`. Returns `None` for an empty group.
    #[must_use]
    pub fn max_version(&self, group: SiteSet) -> Option<(u64, SiteSet)> {
        let mut best: Option<(u64, SiteSet)> = None;
        for site in group.iter() {
            let v = self.states[site.index()].version;
            match &mut best {
                None => best = Some((v, SiteSet::singleton(site))),
                Some((max, holders)) => {
                    if v > *max {
                        *max = v;
                        *holders = SiteSet::singleton(site);
                    } else if v == *max {
                        holders.insert(site);
                    }
                }
            }
        }
        best
    }

    /// Applies a commit: every `participant` adopts the given operation
    /// number, version number, and partition set (the paper's `COMMIT`).
    pub fn commit(&mut self, participants: SiteSet, op: u64, version: u64, partition: SiteSet) {
        for site in participants.iter() {
            self.states[site.index()] = ReplicaState {
                op,
                version,
                partition,
            };
        }
    }
}

impl fmt::Debug for StateTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut map = f.debug_map();
        for i in 0..MAX_SITES {
            let s = &self.states[i];
            // Only print slots that differ from the zero pattern of a
            // never-touched default — fresh() initializes all slots, so
            // print the first 16 to keep output bounded.
            if i < 16 {
                map.entry(&SiteId::new(i), s);
            }
        }
        map.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(indices: &[usize]) -> SiteSet {
        SiteSet::from_indices(indices.iter().copied())
    }

    #[test]
    fn fresh_matches_paper_initial_state() {
        // "the initial operation numbers o_i and version numbers v_i are 1
        //  and the partition vector P_i are {A, B, C} for all three copies"
        let copies = s(&[0, 1, 2]);
        let t = StateTable::fresh(copies);
        for site in copies.iter() {
            assert_eq!(t.get(site).op, 1);
            assert_eq!(t.get(site).version, 1);
            assert_eq!(t.get(site).partition, copies);
        }
    }

    #[test]
    fn max_op_groups_holders() {
        let mut t = StateTable::fresh(s(&[0, 1, 2]));
        t.get_mut(SiteId::new(0)).op = 5;
        t.get_mut(SiteId::new(1)).op = 5;
        t.get_mut(SiteId::new(2)).op = 3;
        let (max, holders) = t.max_op(s(&[0, 1, 2])).unwrap();
        assert_eq!(max, 5);
        assert_eq!(holders, s(&[0, 1]));
        assert_eq!(t.max_op(SiteSet::EMPTY), None);
    }

    #[test]
    fn max_version_groups_holders() {
        let mut t = StateTable::fresh(s(&[0, 1, 2]));
        t.get_mut(SiteId::new(2)).version = 9;
        let (max, holders) = t.max_version(s(&[0, 1, 2])).unwrap();
        assert_eq!(max, 9);
        assert_eq!(holders, s(&[2]));
    }

    #[test]
    fn commit_updates_only_participants() {
        let copies = s(&[0, 1, 2]);
        let mut t = StateTable::fresh(copies);
        t.commit(s(&[0, 2]), 4, 2, s(&[0, 2]));
        assert_eq!(t.get(SiteId::new(0)).op, 4);
        assert_eq!(t.get(SiteId::new(2)).partition, s(&[0, 2]));
        // Non-participant untouched.
        assert_eq!(t.get(SiteId::new(1)).op, 1);
        assert_eq!(t.get(SiteId::new(1)).partition, copies);
    }

    #[test]
    fn subset_restricted_maxima() {
        let mut t = StateTable::fresh(s(&[0, 1, 2]));
        t.get_mut(SiteId::new(0)).op = 10;
        // Restricting the group to {1, 2} ignores site 0's higher op.
        let (max, holders) = t.max_op(s(&[1, 2])).unwrap();
        assert_eq!(max, 1);
        assert_eq!(holders, s(&[1, 2]));
    }
}
