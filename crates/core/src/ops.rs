//! The READ / WRITE / RECOVER procedures (Figures 1–3 and 5–7).
//!
//! Each procedure is implemented as a *planner*: given the states
//! gathered by `START` (a group of mutually communicating sites and
//! their `(o, v, P)` triples), it either returns a [`Plan`] — exactly
//! which sites participate, what state they commit, and where data must
//! be copied from — or the [`AccessError`] describing the `ABORT`.
//! Executing the plan (actually moving bytes, actually sending `COMMIT`
//! messages) is the caller's job; the `dynvote-replica` crate does it at
//! message level, and the availability simulator applies plans directly
//! to a [`StateTable`].
//!
//! Keeping the planners pure makes the protocol logic trivially testable
//! and lets both executors share one implementation, so the simulation
//! results are produced by the *same code* a real deployment would run.

use dynvote_topology::Network;
use dynvote_types::{AccessError, AccessKind, SiteId, SiteSet};

use crate::decision::{decide, Decision, Refusal, Rule};
use crate::state::StateTable;

/// The operation being planned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpKind {
    /// READ (Figure 1 / Figure 5): bumps the operation number only.
    Read,
    /// WRITE (Figure 2 / Figure 6): bumps operation and version numbers.
    Write,
    /// RECOVER (Figure 3 / Figure 7): reintegrates a recovering site,
    /// copying the data if its version is stale.
    Recover(SiteId),
}

impl OpKind {
    /// The [`AccessKind`] used in error reporting.
    #[must_use]
    pub fn access_kind(self) -> AccessKind {
        match self {
            OpKind::Read => AccessKind::Read,
            OpKind::Write => AccessKind::Write,
            OpKind::Recover(_) => AccessKind::Recover,
        }
    }
}

/// A granted operation: everything the executor needs to `COMMIT`.
#[derive(Clone, Debug)]
pub struct Plan {
    /// The operation this plan executes.
    pub kind: OpKind,
    /// Sites receiving the commit — the paper's `S` (plus the recovering
    /// site for RECOVER). These sites adopt the new `(o, v, P)`.
    pub participants: SiteSet,
    /// New operation number (`o_m + 1`).
    pub new_op: u64,
    /// New version number (`v_m`, or `v_m + 1` for a write).
    pub new_version: u64,
    /// New partition set (equal to [`Plan::participants`]).
    pub new_partition: SiteSet,
    /// A site holding the current data — where a read is served from,
    /// and the source of the copy during a stale recovery.
    pub data_source: SiteId,
    /// `true` when the recovering site must copy the file before the
    /// commit (RECOVER with `v_l < v_m`).
    pub copy_needed: bool,
    /// The decision that granted the plan, for observability.
    pub decision: Decision,
}

impl Plan {
    /// Applies the commit to a state table (the simulator's executor).
    pub fn apply(&self, states: &mut StateTable) {
        states.commit(
            self.participants,
            self.new_op,
            self.new_version,
            self.new_partition,
        );
    }
}

fn refusal_to_error(kind: AccessKind, decision: &Decision, refusal: Refusal) -> AccessError {
    match refusal {
        Refusal::NoCopyReachable | Refusal::NoMajority => AccessError::NoQuorum {
            kind,
            reachable: decision.reachable,
            counted: decision.counted.len(),
            against: decision.prev_partition,
        },
        Refusal::TieLost { needed } => match needed {
            Some(needed) => AccessError::TieLost {
                kind,
                against: decision.prev_partition,
                needed,
            },
            None => AccessError::NoQuorum {
                kind,
                reachable: decision.reachable,
                counted: decision.counted.len(),
                against: decision.prev_partition,
            },
        },
    }
}

/// Plans one operation for the group `group` (the requester's `R`).
///
/// * `copies` — all sites holding physical copies of the file,
/// * `states` — the `(o, v, P)` triples gathered by `START`,
/// * `rule` — which protocol variant decides the majority test,
/// * `network` — required by topological rules.
///
/// # Errors
///
/// Returns the `ABORT` reason when the group is not the majority
/// partition, or — for RECOVER — when the recovering site is not in the
/// group.
///
/// # Examples
///
/// ```
/// use dynvote_core::ops::{plan, OpKind};
/// use dynvote_core::decision::Rule;
/// use dynvote_core::state::StateTable;
/// use dynvote_types::SiteSet;
///
/// let copies = SiteSet::first_n(3);
/// let mut states = StateTable::fresh(copies);
///
/// // S2 is down: {S0, S1} write.
/// let group = SiteSet::from_indices([0, 1]);
/// let p = plan(OpKind::Write, group, copies, &states, &Rule::lexicographic(), None).unwrap();
/// assert_eq!(p.new_version, 2);
/// assert_eq!(p.new_partition, group);
/// p.apply(&mut states);
/// ```
pub fn plan(
    kind: OpKind,
    group: SiteSet,
    copies: SiteSet,
    states: &StateTable,
    rule: &Rule,
    network: Option<&Network>,
) -> Result<Plan, AccessError> {
    plan_with_witnesses(kind, group, copies, SiteSet::EMPTY, states, rule, network)
}

/// Plans one operation where some participants are **witnesses** —
/// sites that vote and store `(o, v, P)` but hold no data (Pâris 1986,
/// the paper's §5 "witness copies" extension).
///
/// Witnesses participate in the decision and in commits exactly like
/// full copies; the additional constraint is that a granted operation
/// must find a reachable **full** copy holding the maximal version,
/// because only full copies can serve reads or seed recoveries. A
/// recovering witness never needs a data transfer.
///
/// `plan` is the special case with no witnesses.
///
/// # Errors
///
/// All of [`plan`]'s errors, plus [`AccessError::NoCurrentCopy`] when
/// the quorum exists but the latest version survives only on witnesses
/// (and dead full copies).
pub fn plan_with_witnesses(
    kind: OpKind,
    group: SiteSet,
    full: SiteSet,
    witnesses: SiteSet,
    states: &StateTable,
    rule: &Rule,
    network: Option<&Network>,
) -> Result<Plan, AccessError> {
    debug_assert!(
        full.is_disjoint(witnesses),
        "a site cannot be both a copy and a witness"
    );
    if let OpKind::Recover(l) = kind {
        if !group.contains(l) {
            return Err(AccessError::OriginUnavailable { origin: l });
        }
    }
    let participants_all = full | witnesses;
    let decision = decide(group, participants_all, states, rule, network);
    if let Err(refusal) = decision.granted() {
        return Err(refusal_to_error(kind.access_kind(), &decision, refusal));
    }

    // "choose any m ∈ Q" — but the data must come from a *full* copy
    // holding the maximal version; witnesses store only state.
    let Some(data_source) = (decision.current_set & full).min() else {
        return Err(AccessError::NoCurrentCopy {
            kind: kind.access_kind(),
            reachable: decision.reachable,
        });
    };

    let plan = match kind {
        OpKind::Read => Plan {
            kind,
            participants: decision.current_set,
            new_op: decision.max_op + 1,
            new_version: decision.max_version,
            new_partition: decision.current_set,
            data_source,
            copy_needed: false,
            decision,
        },
        OpKind::Write => Plan {
            kind,
            participants: decision.current_set,
            new_op: decision.max_op + 1,
            new_version: decision.max_version + 1,
            new_partition: decision.current_set,
            data_source,
            copy_needed: false,
            decision,
        },
        OpKind::Recover(l) => {
            let participants = decision.current_set.with(l);
            let copy_needed = full.contains(l) && states.get(l).version < decision.max_version;
            Plan {
                kind,
                participants,
                new_op: decision.max_op + 1,
                new_version: decision.max_version,
                new_partition: participants,
                data_source,
                copy_needed,
                decision,
            }
        }
    };
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(indices: &[usize]) -> SiteSet {
        SiteSet::from_indices(indices.iter().copied())
    }

    #[test]
    fn read_bumps_op_only() {
        let copies = s(&[0, 1, 2]);
        let mut states = StateTable::fresh(copies);
        let p = plan(
            OpKind::Read,
            copies,
            copies,
            &states,
            &Rule::lexicographic(),
            None,
        )
        .unwrap();
        assert_eq!(p.new_op, 2);
        assert_eq!(p.new_version, 1);
        assert_eq!(p.participants, copies);
        assert!(!p.copy_needed);
        p.apply(&mut states);
        assert_eq!(states.get(SiteId::new(1)).op, 2);
        assert_eq!(states.get(SiteId::new(1)).version, 1);
    }

    #[test]
    fn write_bumps_op_and_version() {
        let copies = s(&[0, 1, 2]);
        let mut states = StateTable::fresh(copies);
        let p = plan(
            OpKind::Write,
            copies,
            copies,
            &states,
            &Rule::lexicographic(),
            None,
        )
        .unwrap();
        assert_eq!((p.new_op, p.new_version), (2, 2));
        p.apply(&mut states);
        assert_eq!(states.get(SiteId::new(2)).version, 2);
    }

    #[test]
    fn commit_goes_to_current_sites_only() {
        // C is version-stale: a write by {A, B, C} commits to {A, B}.
        let copies = s(&[0, 1, 2]);
        let mut states = StateTable::fresh(copies);
        // {A,B} write while C is away.
        let p = plan(
            OpKind::Write,
            s(&[0, 1]),
            copies,
            &states,
            &Rule::lexicographic(),
            None,
        )
        .unwrap();
        p.apply(&mut states);
        // C rejoins the group, but a plain write does not reintegrate it.
        let p = plan(
            OpKind::Write,
            copies,
            copies,
            &states,
            &Rule::lexicographic(),
            None,
        )
        .unwrap();
        assert_eq!(p.participants, s(&[0, 1]));
        assert_eq!(p.new_partition, s(&[0, 1]));
    }

    #[test]
    fn recover_reintegrates_and_copies_when_stale() {
        let copies = s(&[0, 1, 2]);
        let mut states = StateTable::fresh(copies);
        // Writes by {A, B} while C is down: C's version goes stale.
        for _ in 0..3 {
            let p = plan(
                OpKind::Write,
                s(&[0, 1]),
                copies,
                &states,
                &Rule::lexicographic(),
                None,
            )
            .unwrap();
            p.apply(&mut states);
        }
        let l = SiteId::new(2);
        let p = plan(
            OpKind::Recover(l),
            copies,
            copies,
            &states,
            &Rule::lexicographic(),
            None,
        )
        .unwrap();
        assert!(p.copy_needed, "C missed writes and must copy the file");
        assert_eq!(p.participants, copies);
        assert_eq!(p.new_partition, copies);
        assert_eq!(p.new_version, 4, "recovery does not bump the version");
        p.apply(&mut states);
        assert_eq!(states.get(l).version, 4);
        assert_eq!(states.get(l).partition, copies);
    }

    #[test]
    fn recover_skips_copy_after_reads_only() {
        // The whole point of operation numbers: if only reads happened
        // while the site was away, no data transfer is needed.
        let copies = s(&[0, 1, 2]);
        let mut states = StateTable::fresh(copies);
        for _ in 0..3 {
            let p = plan(
                OpKind::Read,
                s(&[0, 1]),
                copies,
                &states,
                &Rule::lexicographic(),
                None,
            )
            .unwrap();
            p.apply(&mut states);
        }
        let p = plan(
            OpKind::Recover(SiteId::new(2)),
            copies,
            copies,
            &states,
            &Rule::lexicographic(),
            None,
        )
        .unwrap();
        assert!(!p.copy_needed, "only reads happened — versions match");
        assert_eq!(p.participants, copies);
    }

    #[test]
    fn recover_requires_site_in_group() {
        let copies = s(&[0, 1, 2]);
        let states = StateTable::fresh(copies);
        let err = plan(
            OpKind::Recover(SiteId::new(2)),
            s(&[0, 1]),
            copies,
            &states,
            &Rule::lexicographic(),
            None,
        )
        .unwrap_err();
        assert_eq!(
            err,
            AccessError::OriginUnavailable {
                origin: SiteId::new(2)
            }
        );
    }

    #[test]
    fn abort_reports_tie_loss() {
        let copies = s(&[0, 1]);
        let states = StateTable::fresh(copies);
        let err = plan(
            OpKind::Write,
            s(&[1]),
            copies,
            &states,
            &Rule::lexicographic(),
            None,
        )
        .unwrap_err();
        assert_eq!(
            err,
            AccessError::TieLost {
                kind: AccessKind::Write,
                against: copies,
                needed: SiteId::new(0),
            }
        );
    }

    #[test]
    fn abort_reports_no_quorum() {
        let copies = s(&[0, 1, 2, 3, 4]);
        let states = StateTable::fresh(copies);
        let err = plan(
            OpKind::Read,
            s(&[4]),
            copies,
            &states,
            &Rule::lexicographic(),
            None,
        )
        .unwrap_err();
        match err {
            AccessError::NoQuorum {
                kind,
                counted,
                against,
                ..
            } => {
                assert_eq!(kind, AccessKind::Read);
                assert_eq!(counted, 1);
                assert_eq!(against, copies);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn plain_dv_tie_reports_no_quorum_error() {
        let copies = s(&[0, 1]);
        let states = StateTable::fresh(copies);
        let err = plan(OpKind::Read, s(&[0]), copies, &states, &Rule::dv(), None).unwrap_err();
        assert!(matches!(err, AccessError::NoQuorum { .. }));
    }

    #[test]
    fn witness_plans_require_a_full_copy_source() {
        use super::plan_with_witnesses;
        // Full copies S0, S1; witness S2.
        let full = s(&[0, 1]);
        let witnesses = s(&[2]);
        let mut states = StateTable::fresh(full | witnesses);
        let rule = Rule::lexicographic();

        // Normal write by everyone: data source is a full copy, the
        // witness participates in the commit.
        let p = plan_with_witnesses(
            OpKind::Write,
            s(&[0, 1, 2]),
            full,
            witnesses,
            &states,
            &rule,
            None,
        )
        .unwrap();
        assert_eq!(p.participants, s(&[0, 1, 2]));
        assert!(full.contains(p.data_source));
        p.apply(&mut states);

        // Write by {S1, witness} while S0 is away: quorum 2 of 3.
        let p = plan_with_witnesses(
            OpKind::Write,
            s(&[1, 2]),
            full,
            witnesses,
            &states,
            &rule,
            None,
        )
        .unwrap();
        assert_eq!(p.data_source, SiteId::new(1));
        p.apply(&mut states);
    }

    #[test]
    fn quorum_without_data_is_refused() {
        use super::plan_with_witnesses;
        // The witness S0 is the lexicographic max, so it can win ties —
        // the exact setup where a quorum can exist with no data behind
        // it. Full copies: S1, S2.
        let full = s(&[1, 2]);
        let witnesses = s(&[0]);
        let mut states = StateTable::fresh(full | witnesses);
        let rule = Rule::lexicographic();

        // Write by {witness, S2} while S1 is away: P := {S0, S2}.
        let p = plan_with_witnesses(
            OpKind::Write,
            s(&[0, 2]),
            full,
            witnesses,
            &states,
            &rule,
            None,
        )
        .unwrap();
        assert_eq!(p.data_source, SiteId::new(2));
        p.apply(&mut states);

        // S2 (the only current data holder) dies; S1 returns beside the
        // witness. The witness wins the tie on P = {S0, S2} — a quorum
        // exists — but the newest data live only on dead S2.
        let err = plan_with_witnesses(
            OpKind::Read,
            s(&[0, 1]),
            full,
            witnesses,
            &states,
            &rule,
            None,
        )
        .unwrap_err();
        assert!(matches!(err, AccessError::NoCurrentCopy { .. }), "{err:?}");
    }

    #[test]
    fn witness_recovery_never_copies_data() {
        use super::plan_with_witnesses;
        let full = s(&[0, 1]);
        let witnesses = s(&[2]);
        let mut states = StateTable::fresh(full | witnesses);
        let rule = Rule::lexicographic();
        // Writes happen while the witness is down.
        for _ in 0..2 {
            let p = plan_with_witnesses(
                OpKind::Write,
                s(&[0, 1]),
                full,
                witnesses,
                &states,
                &rule,
                None,
            )
            .unwrap();
            p.apply(&mut states);
        }
        // The witness recovers: version-stale, but data-free.
        let p = plan_with_witnesses(
            OpKind::Recover(SiteId::new(2)),
            s(&[0, 1, 2]),
            full,
            witnesses,
            &states,
            &rule,
            None,
        )
        .unwrap();
        assert!(!p.copy_needed, "witnesses hold no data to copy");
        assert_eq!(p.participants, s(&[0, 1, 2]));
    }

    #[test]
    fn plan_is_witness_plan_with_no_witnesses() {
        use super::plan_with_witnesses;
        let copies = s(&[0, 1, 2]);
        let states = StateTable::fresh(copies);
        let rule = Rule::lexicographic();
        let a = plan(OpKind::Write, s(&[0, 1]), copies, &states, &rule, None).unwrap();
        let b = plan_with_witnesses(
            OpKind::Write,
            s(&[0, 1]),
            copies,
            SiteSet::EMPTY,
            &states,
            &rule,
            None,
        )
        .unwrap();
        assert_eq!(a.participants, b.participants);
        assert_eq!(a.new_op, b.new_op);
        assert_eq!(a.new_version, b.new_version);
        assert_eq!(a.data_source, b.data_source);
    }

    #[test]
    fn sequence_of_ops_matches_figures() {
        // READ then WRITE then RECOVER, checking the exact (o, v, P)
        // transitions of Figures 1-3.
        let copies = s(&[0, 1, 2]);
        let mut states = StateTable::fresh(copies);
        let rule = Rule::lexicographic();

        // READ by all: (o=2, v=1, P={A,B,C}).
        plan(OpKind::Read, copies, copies, &states, &rule, None)
            .unwrap()
            .apply(&mut states);
        // WRITE by {A,B} (C down): (o=3, v=2, P={A,B}).
        plan(OpKind::Write, s(&[0, 1]), copies, &states, &rule, None)
            .unwrap()
            .apply(&mut states);
        // RECOVER C: (o=4, v=2, P={A,B,C}), copy needed.
        let p = plan(
            OpKind::Recover(SiteId::new(2)),
            copies,
            copies,
            &states,
            &rule,
            None,
        )
        .unwrap();
        assert!(p.copy_needed);
        p.apply(&mut states);

        for site in copies.iter() {
            assert_eq!(states.get(site).op, 4);
            assert_eq!(states.get(site).version, 2);
            assert_eq!(states.get(site).partition, copies);
        }
    }
}
