//! Algorithm 1: is the requesting group the majority partition?
//!
//! Every protocol variant reduces to the same five-step decision
//! (paper, Algorithm 1), differing only in *what is counted* toward the
//! majority and *how ties are resolved*:
//!
//! 1. Find `R`, the sites communicating with the requester.
//! 2. Collect each reachable copy's `(P_i, o_i, v_i)`.
//! 3. `Q` = reachable copies holding the maximal operation number.
//! 4. `P_m` = the partition set of any member of `Q` (all members of `Q`
//!    took part in the same most-recent operation, so they agree).
//! 5. Grant iff `|Q| > |P_m|/2`, or `|Q| = |P_m|/2` and `Q` contains
//!    `max(P_m)` (the lexicographic tie-break), where Topological Dynamic
//!    Voting replaces `|Q|` with `|T|` — `Q` plus the *claimed votes* of
//!    unreachable members of `P_m` that share a segment with a reachable
//!    member of `P_m`.

use dynvote_topology::Network;
use dynvote_types::{SiteId, SiteSet};

use crate::lexicon::Lexicon;
use crate::state::StateTable;

/// How the majority test is evaluated — the axis along which DV, LDV and
/// TDV differ.
///
/// The *optimistic* axis (ODV, OTDV) is orthogonal: it is about **when**
/// state is exchanged, not how the decision is computed, so it lives in
/// the policies ([`crate::policy`]) and the simulator, not here.
#[derive(Clone, Debug)]
pub struct Rule {
    /// Tie-breaking lexicon; `None` reproduces original Dynamic Voting,
    /// where an even split makes the file unavailable.
    pub tie_break: Option<Lexicon>,
    /// When `true`, unreachable members of the previous majority
    /// partition that share a segment with a reachable member are
    /// *claimed* toward the majority (Topological Dynamic Voting).
    /// Requires a [`Network`] to be passed to [`decide`].
    pub topological: bool,
}

impl Rule {
    /// Original Dynamic Voting: strict majority only, ties fail.
    #[must_use]
    pub fn dv() -> Self {
        Rule {
            tie_break: None,
            topological: false,
        }
    }

    /// Lexicographic Dynamic Voting with the default site ordering.
    #[must_use]
    pub fn lexicographic() -> Self {
        Rule {
            tie_break: Some(Lexicon::default()),
            topological: false,
        }
    }

    /// Lexicographic Dynamic Voting with a custom site ordering.
    #[must_use]
    pub fn with_lexicon(lexicon: Lexicon) -> Self {
        Rule {
            tie_break: Some(lexicon),
            topological: false,
        }
    }

    /// Topological Dynamic Voting (includes the lexicographic
    /// tie-break, per Figures 5–7).
    #[must_use]
    pub fn topological() -> Self {
        Rule {
            tie_break: Some(Lexicon::default()),
            topological: true,
        }
    }
}

/// Why the majority test refused the group.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Refusal {
    /// No copy of the replicated file is reachable.
    NoCopyReachable,
    /// Fewer than half of the previous majority partition is counted.
    NoMajority,
    /// Exactly half counted, but the tie-break site is absent (or the
    /// rule has no tie-break).
    TieLost {
        /// The site whose presence in `Q` would have won the tie
        /// (`None` under plain DV, which never wins ties).
        needed: Option<SiteId>,
    },
}

/// The full outcome of Algorithm 1 for one group.
///
/// Exposes every intermediate set so that the operation planners, the
/// simulator, and the tests can all inspect *why* a decision went the
/// way it did.
#[derive(Clone, Debug)]
pub struct Decision {
    /// `R` — reachable sites holding copies.
    pub reachable: SiteSet,
    /// `Q` — reachable copies with the maximal operation number.
    pub quorum_set: SiteSet,
    /// `S` — reachable copies with the maximal version number.
    pub current_set: SiteSet,
    /// `P_m` — partition set of the most-recent operation known in `R`.
    pub prev_partition: SiteSet,
    /// The votes counted toward the majority: `Q`, or `T ⊇ Q ∩ P_m` for
    /// topological rules.
    pub counted: SiteSet,
    /// The maximal operation number in `R` (the paper's `o_m`).
    pub max_op: u64,
    /// The maximal version number in `R` (the paper's `v_m`).
    pub max_version: u64,
    /// A deterministic representative `m ∈ Q`.
    pub representative: SiteId,
    verdict: Result<(), Refusal>,
}

impl Decision {
    /// `Ok(())` when the group is the majority partition.
    #[inline]
    pub fn granted(&self) -> Result<(), Refusal> {
        self.verdict
    }

    /// `true` when the group is the majority partition.
    #[inline]
    #[must_use]
    pub fn is_granted(&self) -> bool {
        self.verdict.is_ok()
    }

    fn refused(reachable: SiteSet, refusal: Refusal) -> Self {
        Decision {
            reachable,
            quorum_set: SiteSet::EMPTY,
            current_set: SiteSet::EMPTY,
            prev_partition: SiteSet::EMPTY,
            counted: SiteSet::EMPTY,
            max_op: 0,
            max_version: 0,
            representative: SiteId::new(0),
            verdict: Err(refusal),
        }
    }
}

/// Runs Algorithm 1 for the group of mutually communicating sites
/// `group`, over the copies in `copies` with per-copy state in `states`.
///
/// `network` is consulted only by topological rules (to find co-segment
/// sites whose votes can be claimed); passing `None` with
/// `rule.topological == true` panics, because silently skipping the
/// claims would produce a different protocol.
///
/// # Examples
///
/// The paper's §2.1 tie: copies on `{A, C}` (= `{S0, S2}`), the A–C link
/// fails, and `A` alone wins the tie because `A = max({A, C})`:
///
/// ```
/// use dynvote_core::decision::{decide, Rule};
/// use dynvote_core::state::StateTable;
/// use dynvote_types::SiteSet;
///
/// let copies = SiteSet::from_indices([0, 2]);
/// let mut states = StateTable::fresh(copies);
///
/// let a_alone = decide(SiteSet::from_indices([0]), copies, &states, &Rule::lexicographic(), None);
/// assert!(a_alone.is_granted());
/// let c_alone = decide(SiteSet::from_indices([2]), copies, &states, &Rule::lexicographic(), None);
/// assert!(!c_alone.is_granted());
/// ```
#[must_use]
pub fn decide(
    group: SiteSet,
    copies: SiteSet,
    states: &StateTable,
    rule: &Rule,
    network: Option<&Network>,
) -> Decision {
    let reachable = group & copies;
    let Some((max_op, quorum_set)) = states.max_op(reachable) else {
        return Decision::refused(reachable, Refusal::NoCopyReachable);
    };
    let (max_version, current_set) = states
        .max_version(reachable)
        .expect("non-empty reachable set has a max version");
    // "choose any m ∈ Q" — every member of Q participated in the same
    // most-recent operation and therefore stores the same partition set;
    // pick the lowest index for determinism.
    let representative = quorum_set.min().expect("Q is non-empty");
    let prev_partition = states.get(representative).partition;
    // Under DV/LDV/ODV every operation number is committed exactly once,
    // so all members of Q store the same partition set. Topological vote
    // claiming can violate this: after a total failure of a segment, the
    // survivors may *sequentially* claim each other's votes and fork the
    // lineage (see DESIGN.md, "the sequential-claim hazard"), leaving two
    // sites with equal operation numbers but different partition sets.
    // The decision then proceeds from the deterministic representative.
    //
    // This invariant holds even under lossy delivery and mid-operation
    // crashes: a partially-delivered COMMIT installs its operation
    // number only at sites that received it, and every other voter of
    // that operation stays wedged on its outstanding vote (abstaining
    // from later polls) until the commit reaches it or the vote is
    // proven non-binding — so a given operation number is minted with
    // exactly one partition set (see DESIGN.md, "Nemesis layer and the
    // partial-commit hazard").
    debug_assert!(
        rule.topological
            || quorum_set
                .iter()
                .all(|s| states.get(s).partition == prev_partition),
        "members of Q must agree on the previous partition set"
    );

    let counted = if rule.topological {
        let net = network.expect("topological rules require a Network");
        // T = members of P_m on the same segment as a reachable member of
        // P_m. (Figure 5 prints `P_m ∪ R`; the prose and the soundness
        // argument require the intersection — see DESIGN.md.)
        let anchors = prev_partition & reachable;
        let mut t = SiteSet::EMPTY;
        for s in anchors.iter() {
            t |= net.co_segment(s) & prev_partition;
        }
        t
    } else {
        quorum_set
    };

    let verdict = if 2 * counted.len() > prev_partition.len() {
        Ok(())
    } else if 2 * counted.len() == prev_partition.len() {
        // Tie: grant iff the rule breaks ties and Q holds max(P_m).
        // Note the tie-break consults Q — real, current, reachable
        // copies — even under topological counting (Figures 5–7).
        match &rule.tie_break {
            Some(lexicon) => {
                let needed = lexicon.max_of(prev_partition);
                if needed.is_some_and(|site| quorum_set.contains(site)) {
                    Ok(())
                } else {
                    Err(Refusal::TieLost { needed })
                }
            }
            None => Err(Refusal::TieLost { needed: None }),
        }
    } else {
        Err(Refusal::NoMajority)
    };

    Decision {
        reachable,
        quorum_set,
        current_set,
        prev_partition,
        counted,
        max_op,
        max_version,
        representative,
        verdict,
    }
}

/// Renders a [`Decision`] as a human-readable, multi-line explanation —
/// the teaching/debugging view of Algorithm 1 used by the scenario
/// runner's `explain` command.
///
/// # Examples
///
/// ```
/// use dynvote_core::decision::{decide, explain, Rule};
/// use dynvote_core::state::StateTable;
/// use dynvote_types::SiteSet;
///
/// let copies = SiteSet::first_n(3);
/// let states = StateTable::fresh(copies);
/// let d = decide(SiteSet::from_indices([0, 2]), copies, &states, &Rule::lexicographic(), None);
/// let text = explain(&d);
/// assert!(text.contains("GRANTED"));
/// assert!(text.contains("Q   ="));
/// ```
#[must_use]
pub fn explain(decision: &Decision) -> String {
    use core::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "R   = {}  (reachable copies)", decision.reachable);
    if decision.reachable.is_empty() {
        let _ = writeln!(out, "=> REFUSED: no copy reachable");
        return out;
    }
    let _ = writeln!(
        out,
        "Q   = {}  (max operation number o = {})",
        decision.quorum_set, decision.max_op
    );
    let _ = writeln!(
        out,
        "S   = {}  (max version number v = {})",
        decision.current_set, decision.max_version
    );
    let _ = writeln!(
        out,
        "P_m = {}  (partition set of m = {})",
        decision.prev_partition, decision.representative
    );
    if decision.counted != decision.quorum_set {
        let _ = writeln!(
            out,
            "T   = {}  (Q plus claimed co-segment votes)",
            decision.counted
        );
    }
    let counted = decision.counted.len();
    let needed = decision.prev_partition.len();
    let _ = write!(out, "test: 2x{counted} vs |P_m| = {needed}: ");
    match decision.granted() {
        Ok(()) => {
            if 2 * counted > needed {
                let _ = writeln!(out, "strict majority");
            } else {
                let _ = writeln!(out, "exact half holding max(P_m)");
            }
            let _ = writeln!(out, "=> GRANTED: this group is the majority partition");
        }
        Err(Refusal::NoMajority) => {
            let _ = writeln!(out, "minority");
            let _ = writeln!(
                out,
                "=> REFUSED: fewer than half of the previous majority partition"
            );
        }
        Err(Refusal::TieLost { needed: site }) => {
            let _ = writeln!(out, "exact half");
            match site {
                Some(site) => {
                    let _ = writeln!(
                        out,
                        "=> REFUSED: tie lost — max(P_m) = {site} is not reachable and current"
                    );
                }
                None => {
                    let _ = writeln!(out, "=> REFUSED: tie, and this rule breaks no ties");
                }
            }
        }
        Err(Refusal::NoCopyReachable) => {
            let _ = writeln!(out, "=> REFUSED: no copy reachable");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynvote_topology::NetworkBuilder;

    fn s(indices: &[usize]) -> SiteSet {
        SiteSet::from_indices(indices.iter().copied())
    }

    /// Walks the exact state trace of the paper's §2.1 worked example
    /// (copies A=S0, B=S1, C=S2).
    #[test]
    fn worked_example_from_section_2_1() {
        let copies = s(&[0, 1, 2]);
        let mut states = StateTable::fresh(copies);
        let rule = Rule::lexicographic();

        // Initial: o,v = 1, P = {A,B,C}. Seven writes by {A,B,C}:
        for _ in 0..7 {
            let d = decide(copies, copies, &states, &rule, None);
            assert!(d.is_granted());
            states.commit(copies, d.max_op + 1, d.max_version + 1, copies);
        }
        assert_eq!(states.get(SiteId::new(0)).op, 8);
        assert_eq!(states.get(SiteId::new(0)).version, 8);

        // B fails; {A, C} is 2 of 3 — a strict majority.
        let group = s(&[0, 2]);
        let d = decide(group, copies, &states, &rule, None);
        assert!(d.is_granted());
        assert_eq!(d.quorum_set, s(&[0, 2]));
        assert_eq!(d.prev_partition, copies);

        // Three more writes by {A, C}: o,v = 11, P = {A, C}.
        for _ in 0..3 {
            let d = decide(group, copies, &states, &rule, None);
            assert!(d.is_granted());
            states.commit(group, d.max_op + 1, d.max_version + 1, group);
        }
        assert_eq!(states.get(SiteId::new(0)).op, 11);
        assert_eq!(states.get(SiteId::new(2)).version, 11);
        assert_eq!(states.get(SiteId::new(0)).partition, s(&[0, 2]));
        // B still has the stale state.
        assert_eq!(states.get(SiteId::new(1)).op, 8);
        assert_eq!(states.get(SiteId::new(1)).partition, copies);

        // Link between A and C fails: {A} vs {C}, a 1-1 tie on P={A,C}.
        // A (the maximum) wins; C does not.
        let d_a = decide(s(&[0]), copies, &states, &rule, None);
        assert!(d_a.is_granted());
        let d_c = decide(s(&[2]), copies, &states, &rule, None);
        assert_eq!(
            d_c.granted(),
            Err(Refusal::TieLost {
                needed: Some(SiteId::new(0))
            })
        );

        // Four more writes by {A}: o,v = 15, P = {A}.
        for _ in 0..4 {
            let d = decide(s(&[0]), copies, &states, &rule, None);
            assert!(d.is_granted());
            states.commit(s(&[0]), d.max_op + 1, d.max_version + 1, s(&[0]));
        }
        assert_eq!(states.get(SiteId::new(0)).op, 15);
        assert_eq!(states.get(SiteId::new(0)).version, 15);
        assert_eq!(states.get(SiteId::new(0)).partition, s(&[0]));

        // And B's reappearance alongside C still cannot form a quorum:
        // Q = {B} (op 8 > nothing? B op=8, C op=11 → Q={C}), P_m = {A,C},
        // tie needs A.
        let d_bc = decide(s(&[1, 2]), copies, &states, &rule, None);
        assert_eq!(d_bc.quorum_set, s(&[2]));
        assert!(!d_bc.is_granted());
    }

    #[test]
    fn explain_covers_every_verdict() {
        let copies = s(&[0, 1, 2, 3]);
        let states = StateTable::fresh(copies);
        let rule = Rule::lexicographic();
        // Strict majority.
        let text = explain(&decide(s(&[0, 1, 2]), copies, &states, &rule, None));
        assert!(text.contains("strict majority"), "{text}");
        // Tie won.
        let text = explain(&decide(s(&[0, 1]), copies, &states, &rule, None));
        assert!(text.contains("exact half holding max"), "{text}");
        // Tie lost (names the needed site).
        let text = explain(&decide(s(&[2, 3]), copies, &states, &rule, None));
        assert!(text.contains("REFUSED: tie lost"), "{text}");
        assert!(text.contains("S0"), "{text}");
        // Minority.
        let text = explain(&decide(s(&[3]), copies, &states, &rule, None));
        assert!(text.contains("fewer than half"), "{text}");
        // No copies.
        let text = explain(&decide(SiteSet::EMPTY, copies, &states, &rule, None));
        assert!(text.contains("no copy reachable"), "{text}");
        // Plain DV tie.
        let text = explain(&decide(s(&[0, 1]), copies, &states, &Rule::dv(), None));
        assert!(text.contains("breaks no ties"), "{text}");
    }

    #[test]
    fn explain_shows_claimed_votes() {
        let net = dynvote_topology::Network::single_segment(2);
        let copies = s(&[0, 1]);
        let states = StateTable::fresh(copies);
        let text = explain(&decide(
            s(&[1]),
            copies,
            &states,
            &Rule::topological(),
            Some(&net),
        ));
        assert!(text.contains("T   ="), "{text}");
        assert!(text.contains("claimed co-segment"), "{text}");
    }

    #[test]
    fn plain_dv_never_wins_ties() {
        let copies = s(&[0, 1]);
        let states = StateTable::fresh(copies);
        let d = decide(s(&[0]), copies, &states, &Rule::dv(), None);
        assert_eq!(d.granted(), Err(Refusal::TieLost { needed: None }));
        // LDV grants the same split.
        let d = decide(s(&[0]), copies, &states, &Rule::lexicographic(), None);
        assert!(d.is_granted());
    }

    #[test]
    fn empty_group_refused() {
        let copies = s(&[0, 1, 2]);
        let states = StateTable::fresh(copies);
        let d = decide(SiteSet::EMPTY, copies, &states, &Rule::dv(), None);
        assert_eq!(d.granted(), Err(Refusal::NoCopyReachable));
        // A group of non-copy sites is equally useless.
        let d = decide(s(&[5, 6]), copies, &states, &Rule::dv(), None);
        assert_eq!(d.granted(), Err(Refusal::NoCopyReachable));
    }

    #[test]
    fn minority_refused() {
        let copies = s(&[0, 1, 2, 3, 4]);
        let states = StateTable::fresh(copies);
        let d = decide(s(&[0, 1]), copies, &states, &Rule::lexicographic(), None);
        assert_eq!(d.granted(), Err(Refusal::NoMajority));
    }

    #[test]
    fn stale_group_cannot_usurp() {
        // {A,B,C}; {A,B} shrink the partition to themselves. C alone —
        // even together with non-copy friends — cannot form a quorum.
        let copies = s(&[0, 1, 2]);
        let mut states = StateTable::fresh(copies);
        let d = decide(s(&[0, 1]), copies, &states, &Rule::lexicographic(), None);
        assert!(d.is_granted());
        states.commit(s(&[0, 1]), d.max_op + 1, d.max_version, s(&[0, 1]));

        // C still believes P = {A,B,C}: 1 of 3 is not a majority.
        let d = decide(s(&[2, 7]), copies, &states, &Rule::lexicographic(), None);
        assert_eq!(d.granted(), Err(Refusal::NoMajority));
    }

    #[test]
    fn q_and_s_can_differ() {
        // A site that missed only *reads* keeps the max version but a
        // stale op number: it appears in S but not in Q.
        let copies = s(&[0, 1, 2]);
        let mut states = StateTable::fresh(copies);
        // {A,B} perform a read without C (partitioned away, not down).
        let d = decide(s(&[0, 1]), copies, &states, &Rule::lexicographic(), None);
        states.commit(s(&[0, 1]), d.max_op + 1, d.max_version, s(&[0, 1]));
        // Network heals; everyone reachable.
        let d = decide(copies, copies, &states, &Rule::lexicographic(), None);
        assert_eq!(d.quorum_set, s(&[0, 1]));
        assert_eq!(d.current_set, copies, "C missed no writes");
        assert!(d.is_granted());
    }

    #[test]
    fn representative_partition_sets_agree() {
        let copies = s(&[0, 1, 2]);
        let states = StateTable::fresh(copies);
        let d = decide(copies, copies, &states, &Rule::dv(), None);
        assert_eq!(d.representative, SiteId::new(0));
        assert_eq!(d.prev_partition, copies);
    }

    // ---- Topological rules -------------------------------------------------

    /// The paper's §3 example: copies A,B on segment α; C on γ; D on δ.
    /// State: A,B current with P={A,B}; C, D stale.
    fn section_3_setup() -> (SiteSet, StateTable, dynvote_topology::Network) {
        let copies = s(&[0, 1, 2, 3]); // A,B,C,D
        let net = NetworkBuilder::new()
            .segment("alpha", [0, 1, 8, 9]) // A, B (+ the repeaters X=8, Y=9)
            .segment("gamma", [2])
            .segment("delta", [3])
            .bridge(8, "gamma")
            .bridge(9, "delta")
            .build()
            .unwrap();
        let mut states = StateTable::fresh(copies);
        // P_D = {A,B,C,D} o,v=8; P_C = {A,B,C} o,v=11; P_A = P_B = {A,B} o,v=15.
        states.set(
            SiteId::new(3),
            crate::state::ReplicaState {
                op: 8,
                version: 8,
                partition: s(&[0, 1, 2, 3]),
            },
        );
        states.set(
            SiteId::new(2),
            crate::state::ReplicaState {
                op: 11,
                version: 11,
                partition: s(&[0, 1, 2]),
            },
        );
        for i in [0, 1] {
            states.set(
                SiteId::new(i),
                crate::state::ReplicaState {
                    op: 15,
                    version: 15,
                    partition: s(&[0, 1]),
                },
            );
        }
        (copies, states, net)
    }

    #[test]
    fn topological_claims_co_segment_votes() {
        let (copies, states, net) = section_3_setup();
        // Site A fails. Under LDV, B alone loses the tie on P={A,B}
        // (max is A). Under TDV, B claims A's vote: A is on B's segment,
        // so A cannot be on the far side of a partition — it must be down.
        let group_b = s(&[1]);
        let ldv = decide(group_b, copies, &states, &Rule::lexicographic(), None);
        assert!(!ldv.is_granted());
        let tdv = decide(group_b, copies, &states, &Rule::topological(), Some(&net));
        assert_eq!(tdv.counted, s(&[0, 1]), "B claims A's vote");
        assert!(tdv.is_granted());
    }

    #[test]
    fn topological_does_not_claim_cross_segment_votes() {
        let (copies, states, net) = section_3_setup();
        // C alone: P_C = {A,B,C}; C can claim nobody (alone on γ) and
        // 1 < 3/2 — refused.
        let d = decide(s(&[2]), copies, &states, &Rule::topological(), Some(&net));
        assert_eq!(d.counted, s(&[2]));
        assert!(!d.is_granted());
    }

    #[test]
    fn topological_tie_break_consults_real_copies_only() {
        // P = {A, B, C, D} with A,B on one segment, C,D on another.
        // Group = {C}: C claims D (same segment) → |T| = 2 = |P|/2.
        // The tie-break needs max(P)=A in Q — absent → refused. Claimed
        // votes do not count toward the tie-break.
        let copies = s(&[0, 1, 2, 3]);
        let net = NetworkBuilder::new()
            .segment("one", [0, 1])
            .segment("two", [2, 3])
            .bridge(0, "two")
            .build()
            .unwrap();
        let states = StateTable::fresh(copies);
        let d = decide(s(&[2]), copies, &states, &Rule::topological(), Some(&net));
        assert_eq!(d.counted, s(&[2, 3]));
        assert_eq!(
            d.granted(),
            Err(Refusal::TieLost {
                needed: Some(SiteId::new(0))
            })
        );
        // Group = {A}: claims B, and A = max(P) is reachable → granted.
        let d = decide(s(&[0]), copies, &states, &Rule::topological(), Some(&net));
        assert_eq!(d.counted, s(&[0, 1]));
        assert!(d.is_granted());
    }

    #[test]
    fn topological_on_isolated_segments_equals_lexicographic() {
        // Every copy on its own segment: T = Q ∩ P_m and the decision
        // matches LDV (the paper's configuration-C observation).
        let copies = s(&[0, 1, 2]);
        let net = NetworkBuilder::new()
            .segment("a", [0])
            .segment("b", [1])
            .segment("c", [2])
            .bridge(0, "b")
            .bridge(1, "c")
            .build()
            .unwrap();
        let states = StateTable::fresh(copies);
        for mask in 1u64..8 {
            let group = SiteSet::from_bits(mask);
            let ldv = decide(group, copies, &states, &Rule::lexicographic(), None);
            let tdv = decide(group, copies, &states, &Rule::topological(), Some(&net));
            assert_eq!(
                ldv.is_granted(),
                tdv.is_granted(),
                "mask {mask:#b} diverged"
            );
        }
    }

    #[test]
    #[should_panic(expected = "topological rules require a Network")]
    fn topological_without_network_panics() {
        let copies = s(&[0, 1]);
        let states = StateTable::fresh(copies);
        let _ = decide(s(&[0]), copies, &states, &Rule::topological(), None);
    }

    #[test]
    fn two_rival_groups_never_both_granted() {
        // Deterministic sweep: for every split of 5 copies into two
        // groups, at most one side may be granted (mutual exclusion).
        let copies = s(&[0, 1, 2, 3, 4]);
        let states = StateTable::fresh(copies);
        let rule = Rule::lexicographic();
        for mask in 0u64..32 {
            let g1 = SiteSet::from_bits(mask);
            let g2 = copies - g1;
            let d1 = decide(g1, copies, &states, &rule, None);
            let d2 = decide(g2, copies, &states, &rule, None);
            assert!(
                !(d1.is_granted() && d2.is_granted()),
                "split {g1} | {g2} granted both sides"
            );
        }
    }
}
