//! Dynamic voting with witnesses — the "witness copies" future work.

use dynvote_topology::Reachability;
use dynvote_types::SiteSet;

use crate::decision::{decide, Rule};
use crate::state::StateTable;

use super::AvailabilityPolicy;

/// Optimistic dynamic voting where some participants are **witnesses**:
/// sites that store the consistency-control state `(o, v, P)` but *no
/// data* (Pâris 1986, cited by the paper as the next inclusion).
///
/// Witnesses vote in the majority-partition decision exactly like full
/// copies — they are members of partition sets, they appear in `Q` —
/// but an access can only be *served* when at least one reachable
/// **full copy** holds the maximal version. A witness is thus a cheap
/// tie-breaker: three participants of which one is a witness give
/// nearly the availability of three copies at the storage cost of two.
///
/// The implementation reuses the dynamic-voting decision verbatim and
/// adds the data-availability constraint, demonstrating the paper's
/// claim that the partition-set formulation "can be expanded" cleanly.
#[derive(Clone, Debug)]
pub struct WitnessPolicy {
    /// Sites holding data + state.
    full: SiteSet,
    /// Sites holding state only.
    witnesses: SiteSet,
    rule: Rule,
    optimistic: bool,
    states: StateTable,
}

impl WitnessPolicy {
    /// A new witness policy: `full` sites store data, `witnesses` store
    /// state only. Optimistic (access-time) semantics by default — this
    /// is the ODV-with-witnesses protocol.
    ///
    /// # Panics
    ///
    /// Panics when `full` is empty (someone must hold the data) or when
    /// the two sets overlap.
    #[must_use]
    pub fn new(full: SiteSet, witnesses: SiteSet) -> Self {
        WitnessPolicy::with_mode(full, witnesses, true)
    }

    /// Same, choosing between optimistic and instantaneous semantics.
    #[must_use]
    pub fn with_mode(full: SiteSet, witnesses: SiteSet, optimistic: bool) -> Self {
        assert!(!full.is_empty(), "at least one full copy is required");
        assert!(
            full.is_disjoint(witnesses),
            "a site cannot be both a copy and a witness"
        );
        let all = full | witnesses;
        WitnessPolicy {
            full,
            witnesses,
            rule: Rule::lexicographic(),
            optimistic,
            states: StateTable::fresh(all),
        }
    }

    /// All voting participants (copies and witnesses).
    #[must_use]
    pub fn participants(&self) -> SiteSet {
        self.full | self.witnesses
    }

    /// The full copies.
    #[must_use]
    pub fn full_copies(&self) -> SiteSet {
        self.full
    }

    /// Read-only protocol state (for tests).
    #[must_use]
    pub fn states(&self) -> &StateTable {
        &self.states
    }

    /// Decision + the data constraint: the maximal version in the group
    /// must be held by a reachable **full** copy.
    fn group_grants(&self, group: SiteSet) -> bool {
        let d = decide(group, self.participants(), &self.states, &self.rule, None);
        d.is_granted() && !(d.current_set & self.full).is_empty()
    }

    fn sync_group(&mut self, group: SiteSet) -> bool {
        let d = decide(group, self.participants(), &self.states, &self.rule, None);
        if d.is_granted() && !(d.current_set & self.full).is_empty() {
            let r = group & self.participants();
            // Full copies resync data from a current full copy;
            // witnesses just adopt the new state stamp.
            self.states.commit(r, d.max_op + 1, d.max_version, r);
            true
        } else {
            false
        }
    }

    fn sync_all(&mut self, reach: &Reachability) -> bool {
        let mut granted = false;
        for i in 0..reach.groups().len() {
            granted |= self.sync_group(reach.groups()[i]);
        }
        granted
    }
}

impl AvailabilityPolicy for WitnessPolicy {
    fn name(&self) -> &str {
        "ODV+W"
    }

    fn optimistic(&self) -> bool {
        self.optimistic
    }

    fn reset(&mut self) {
        self.states = StateTable::fresh(self.participants());
    }

    fn on_topology_change(&mut self, reach: &Reachability) -> bool {
        if self.optimistic {
            self.is_available(reach)
        } else {
            self.sync_all(reach)
        }
    }

    fn on_access(&mut self, reach: &Reachability) -> bool {
        self.sync_all(reach)
    }

    fn is_available(&self, reach: &Reachability) -> bool {
        reach.groups().iter().any(|&g| self.group_grants(g))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynvote_types::SiteId;

    fn reach(groups: &[&[usize]]) -> Reachability {
        Reachability::from_groups(
            groups
                .iter()
                .map(|g| SiteSet::from_indices(g.iter().copied()))
                .collect(),
        )
    }

    /// Two copies + one witness behaves like three copies for quorum
    /// purposes while any copy survives.
    #[test]
    fn witness_breaks_the_two_copy_tie() {
        let full = SiteSet::from_indices([0, 1]);
        let w = SiteSet::from_indices([2]);
        let mut p = WitnessPolicy::with_mode(full, w, false);
        // Copy S1 fails: {S0, witness} is 2 of 3 — available.
        let r = reach(&[&[0, 2]]);
        p.on_topology_change(&r);
        assert!(p.is_available(&r));
        // Plain two-copy LDV in the same situation depends on the tie
        // break; with the witness the majority is genuine.
        assert_eq!(
            p.states().get(SiteId::new(0)).partition,
            SiteSet::from_indices([0, 2])
        );
    }

    #[test]
    fn witness_alone_cannot_serve_data() {
        let full = SiteSet::from_indices([0, 1]);
        let w = SiteSet::from_indices([2]);
        let mut p = WitnessPolicy::with_mode(full, w, false);
        // Shrink to {S1, witness}:
        p.on_topology_change(&reach(&[&[1, 2]]));
        assert!(p.is_available(&reach(&[&[1, 2]])));
        // Now S1 fails: the witness alone holds a quorum tie... but no
        // data. The file must be unavailable.
        let r = reach(&[&[2]]);
        p.on_topology_change(&r);
        assert!(!p.is_available(&r), "witness holds no data");
    }

    #[test]
    fn stale_copy_plus_witness_cannot_serve_newer_data() {
        let full = SiteSet::from_indices([0, 1]);
        let w = SiteSet::from_indices([2]);
        let mut p = WitnessPolicy::with_mode(full, w, false);
        // S0 partitioned away; {S1, witness} proceed (writes included:
        // our sync models an up-to-date commit).
        p.on_topology_change(&reach(&[&[1, 2], &[0]]));
        // S1 dies; S0 heals back next to the witness. The witness's
        // version stamp exceeds S0's — quorum may exist but data do not.
        let r = reach(&[&[0, 2]]);
        // Simulate that a write bumped the version while S0 was away.
        p.states.get_mut(SiteId::new(1)).version += 1;
        p.states.get_mut(SiteId::new(2)).version += 1;
        p.on_topology_change(&r);
        assert!(
            !p.is_available(&r),
            "latest version lives only on dead S1 and the witness"
        );
    }

    #[test]
    fn optimistic_mode_defers_state_changes() {
        let mut p = WitnessPolicy::new(SiteSet::from_indices([0, 1]), SiteSet::from_indices([2]));
        assert!(p.optimistic());
        p.on_topology_change(&reach(&[&[0, 2]]));
        assert_eq!(
            p.states().get(SiteId::new(0)).partition,
            SiteSet::first_n(3),
            "no exchange before an access"
        );
        assert!(p.on_access(&reach(&[&[0, 2]])));
        assert_eq!(
            p.states().get(SiteId::new(0)).partition,
            SiteSet::from_indices([0, 2])
        );
    }

    #[test]
    fn reset_restores_participants() {
        let mut p = WitnessPolicy::new(SiteSet::from_indices([0]), SiteSet::from_indices([1]));
        p.on_access(&reach(&[&[0]]));
        p.reset();
        assert_eq!(
            p.states().get(SiteId::new(0)).partition,
            SiteSet::first_n(2)
        );
    }

    #[test]
    #[should_panic(expected = "cannot be both")]
    fn overlap_rejected() {
        let _ = WitnessPolicy::new(SiteSet::first_n(2), SiteSet::from_indices([1]));
    }

    #[test]
    #[should_panic(expected = "at least one full copy")]
    fn no_full_copies_rejected() {
        let _ = WitnessPolicy::new(SiteSet::EMPTY, SiteSet::first_n(2));
    }
}
