//! Majority Consensus Voting — the static baseline.

use dynvote_topology::Reachability;
use dynvote_types::{SiteId, SiteSet};

use crate::lexicon::Lexicon;

use super::AvailabilityPolicy;

/// Majority Consensus Voting (Ellis/Gifford/Thomas): an access proceeds
/// iff a majority of all *n* copies is reachable.
///
/// The quorum is fixed for the lifetime of the file — the very rigidity
/// Dynamic Voting was invented to remove: "a few failures can render
/// the data inaccessible" even when the surviving copies are mutually
/// consistent.
///
/// # Even copy counts and the tie vote
///
/// For even *n* a bare majority rule needs `n/2 + 1` copies, so an even
/// split strands *both* sides. Gifford's remedy is to skew the vote
/// assignment so no tie is possible — equivalently, to grant the half
/// that contains a designated top-ranked site. The paper's Table 2 is
/// only consistent with that variant: e.g. configuration H
/// (copies 1, 2, 7, 8) reports an MCV unavailability of 0.0014 ≈ the
/// gateway's own downtime, which a strict 3-of-4 quorum could never
/// achieve given that sites 7 and 8 are *each* down ~12% of the time
/// (`P(7 and 8 down) ≈ 0.015` already exceeds it). [`McvPolicy::new`]
/// therefore breaks even splits with the same lexicographic ordering
/// LDV uses; [`McvPolicy::strict`] provides the textbook no-tie-break
/// rule for comparison (the `mcv_tiebreak` ablation measures the gap).
///
/// MCV keeps no adjustable state, so
/// [`AvailabilityPolicy::on_topology_change`] and
/// [`AvailabilityPolicy::on_access`] never mutate anything.
#[derive(Clone, Debug)]
pub struct McvPolicy {
    copies: SiteSet,
    tie_break: Option<SiteId>,
}

impl McvPolicy {
    /// MCV with the paper-calibrated tie vote: an exact half that
    /// contains the top-ranked copy (under the default [`Lexicon`])
    /// wins. For odd `n` this is exactly the textbook rule.
    ///
    /// # Panics
    ///
    /// Panics when `copies` is empty.
    #[must_use]
    pub fn new(copies: SiteSet) -> Self {
        McvPolicy::with_lexicon(copies, &Lexicon::default())
    }

    /// MCV breaking ties toward the maximum copy of a custom ordering.
    ///
    /// # Panics
    ///
    /// Panics when `copies` is empty.
    #[must_use]
    pub fn with_lexicon(copies: SiteSet, lexicon: &Lexicon) -> Self {
        assert!(!copies.is_empty(), "a replicated file needs copies");
        McvPolicy {
            copies,
            tie_break: lexicon.max_of(copies),
        }
    }

    /// Textbook MCV: strictly more than half, ties strand both sides.
    ///
    /// # Panics
    ///
    /// Panics when `copies` is empty.
    #[must_use]
    pub fn strict(copies: SiteSet) -> Self {
        assert!(!copies.is_empty(), "a replicated file needs copies");
        McvPolicy {
            copies,
            tie_break: None,
        }
    }

    /// The smallest group size that can win: `⌊n/2⌋ + 1`, or `n/2` for
    /// the half containing the tie vote.
    #[must_use]
    pub fn quorum(&self) -> usize {
        self.copies.len() / 2 + 1
    }

    /// Does `group` hold a static quorum?
    #[must_use]
    pub fn group_grants(&self, group: SiteSet) -> bool {
        let held = (group & self.copies).len();
        if 2 * held > self.copies.len() {
            return true;
        }
        match self.tie_break {
            Some(max) => 2 * held == self.copies.len() && group.contains(max),
            None => false,
        }
    }
}

impl AvailabilityPolicy for McvPolicy {
    fn name(&self) -> &str {
        "MCV"
    }

    fn reset(&mut self) {}

    fn on_topology_change(&mut self, reach: &Reachability) -> bool {
        self.is_available(reach)
    }

    fn on_access(&mut self, reach: &Reachability) -> bool {
        self.is_available(reach)
    }

    fn is_available(&self, reach: &Reachability) -> bool {
        reach.groups().iter().any(|&g| self.group_grants(g))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reach(groups: &[&[usize]]) -> Reachability {
        Reachability::from_groups(
            groups
                .iter()
                .map(|g| SiteSet::from_indices(g.iter().copied()))
                .collect(),
        )
    }

    #[test]
    fn three_copies_need_two() {
        let p = McvPolicy::new(SiteSet::first_n(3));
        assert_eq!(p.quorum(), 2);
        assert!(p.is_available(&reach(&[&[0, 1, 2]])));
        assert!(p.is_available(&reach(&[&[0, 2]])));
        assert!(!p.is_available(&reach(&[&[0], &[2]])));
    }

    #[test]
    fn odd_counts_ignore_the_tie_vote() {
        // For odd n the tie-break can never fire: both variants agree
        // on every partition of 5 copies.
        let a = McvPolicy::new(SiteSet::first_n(5));
        let b = McvPolicy::strict(SiteSet::first_n(5));
        for mask in 0u64..32 {
            let r = reach(&[]);
            let _ = r;
            let groups = Reachability::from_groups(vec![SiteSet::from_bits(mask)]);
            assert_eq!(
                a.is_available(&groups),
                b.is_available(&groups),
                "mask {mask:#b}"
            );
        }
    }

    #[test]
    fn four_copies_half_with_max_wins() {
        let p = McvPolicy::new(SiteSet::first_n(4));
        // {S0, S1} holds the tie vote (S0 ranks highest); {S2, S3} not.
        assert!(p.is_available(&reach(&[&[0, 1], &[2, 3]])));
        let r = reach(&[&[2, 3]]);
        assert!(!p.is_available(&r));
        // Never both sides.
        let both = reach(&[&[0, 1], &[2, 3]]);
        let grants: usize = both.groups().iter().filter(|&&g| p.group_grants(g)).count();
        assert_eq!(grants, 1, "the tie vote preserves mutual exclusion");
    }

    #[test]
    fn strict_mcv_strands_even_splits() {
        let p = McvPolicy::strict(SiteSet::first_n(4));
        assert_eq!(p.quorum(), 3);
        assert!(!p.is_available(&reach(&[&[0, 1], &[2, 3]])));
        assert!(p.is_available(&reach(&[&[0, 1, 3]])));
    }

    #[test]
    fn non_copy_sites_do_not_count() {
        let p = McvPolicy::new(SiteSet::first_n(3));
        // Group of one copy plus two bystanders: still 1 < 2.
        assert!(!p.is_available(&reach(&[&[2, 6, 7]])));
    }

    #[test]
    fn quorum_never_adapts() {
        // The defining weakness: even after losing two copies forever,
        // the quorum stays 2 of 3.
        let mut p = McvPolicy::new(SiteSet::first_n(3));
        let degraded = reach(&[&[1]]);
        p.on_topology_change(&degraded);
        assert!(!p.on_access(&degraded));
        assert!(!p.is_available(&degraded));
    }

    #[test]
    fn custom_lexicon_moves_the_tie_vote() {
        let p = McvPolicy::with_lexicon(SiteSet::first_n(4), &Lexicon::ascending());
        assert!(
            p.is_available(&reach(&[&[2, 3]])),
            "S3 now holds the tie vote"
        );
        assert!(!p.is_available(&reach(&[&[0, 1]])));
    }

    #[test]
    #[should_panic(expected = "needs copies")]
    fn empty_copies_rejected() {
        let _ = McvPolicy::new(SiteSet::EMPTY);
    }
}
