//! The dynamic-voting policy family: DV, LDV, ODV, TDV, OTDV.

use dynvote_topology::{Network, Reachability};
use dynvote_types::SiteSet;

use crate::decision::{decide, Rule};
use crate::lexicon::Lexicon;
use crate::state::StateTable;

use super::AvailabilityPolicy;

/// When recovered sites are reintegrated into the partition set.
///
/// The paper's RECOVER procedure "repeats until successful". Under the
/// instantaneous (connection-vector) protocols a repaired site therefore
/// rejoins the majority partition the moment it is up; under the
/// optimistic protocols the *whole* state exchange — including recovery —
/// happens at access time. `OnRepair` is provided for the ablation
/// benchmark that isolates how much of ODV's advantage comes from lazy
/// *shrinking* versus lazy *rejoining*.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejoinMode {
    /// State exchange at every topology change (instantaneous protocols).
    OnRepair,
    /// State exchange only at access time (optimistic protocols).
    OnAccess,
    /// Quorums *shrink* on every topology change (a READ-style commit
    /// among the current copies, Figure 1), but stale/recovered copies
    /// are *reintegrated* only at access time (the RECOVER of Figure 3
    /// runs as part of the next access). This models a connection-vector
    /// implementation whose recovery is an explicit, access-driven
    /// operation — the likely behaviour of the paper's own LDV
    /// simulation, and the ablation that reproduces the Table 2
    /// configuration-F inversion where ODV beats LDV.
    Hybrid,
}

/// The dynamic-voting family, parameterized along the paper's three axes:
///
/// * **tie-break** — plain DV fails even splits; LDV and everything
///   derived from it applies the lexicographic rule;
/// * **topological** — TDV/OTDV claim the votes of unreachable
///   co-segment members of the previous majority partition;
/// * **optimistic** — ODV/OTDV exchange state only at access time.
///
/// All five protocols share one implementation whose behaviour is fully
/// determined by the [`Rule`] and the [`RejoinMode`]; the constructors
/// ([`DynamicPolicy::dv`], [`DynamicPolicy::ldv`], [`DynamicPolicy::odv`],
/// [`DynamicPolicy::tdv`], [`DynamicPolicy::otdv`]) pick the paper's
/// combinations.
#[derive(Clone, Debug)]
pub struct DynamicPolicy {
    name: String,
    copies: SiteSet,
    rule: Rule,
    network: Option<Network>,
    mode: RejoinMode,
    states: StateTable,
    rival_grants: u64,
    memo: SyncMemo,
}

/// Memo of the most recently *executed* state exchange.
///
/// Repeating an exchange with the same partition structure and the same
/// reintegrate flavor back-to-back takes exactly the same branches: a
/// granted exchange leaves its participants current with the partition
/// set equal to the participant set, so running it again grants the
/// same groups and re-commits the same participants at the same version
/// with one higher operation number, and a refused exchange mutates
/// nothing at all. Long runs of accesses between topology changes — the
/// hot path of every simulation — therefore replay the memoized commits
/// instead of re-deciding. See DESIGN.md, "Grant memoization".
///
/// The replay *must* include the operation-number bump: the topological
/// variants compare op counters across rival lineages when partitions
/// merge, so freezing the counters during a memoized run would change
/// which lineage wins the merge. The memo only skips [`decide`], never
/// the commit.
///
/// The key is the exact group list (not just the up-set): tests and
/// exotic drivers may present different partitions over the same up
/// sites, and a false hit would corrupt the protocol state.
#[derive(Clone, Debug, Default)]
struct SyncMemo {
    valid: bool,
    reintegrate: bool,
    groups: Vec<SiteSet>,
    /// `(participants, version)` of every granted group's commit, in
    /// group order.
    commits: Vec<(SiteSet, u64)>,
    granted: bool,
    rival_delta: u64,
}

impl SyncMemo {
    fn matches(&self, groups: &[SiteSet], reintegrate: bool) -> bool {
        self.valid && self.reintegrate == reintegrate && self.groups == groups
    }

    fn store(
        &mut self,
        groups: &[SiteSet],
        reintegrate: bool,
        commits: Vec<(SiteSet, u64)>,
        granted: bool,
        rival_delta: u64,
    ) {
        self.valid = true;
        self.reintegrate = reintegrate;
        self.groups.clear();
        self.groups.extend_from_slice(groups);
        self.commits = commits;
        self.granted = granted;
        self.rival_delta = rival_delta;
    }

    fn invalidate(&mut self) {
        self.valid = false;
        self.groups.clear();
        self.commits.clear();
    }
}

impl DynamicPolicy {
    fn new(
        name: impl Into<String>,
        copies: SiteSet,
        rule: Rule,
        network: Option<Network>,
        mode: RejoinMode,
    ) -> Self {
        assert!(!copies.is_empty(), "a replicated file needs copies");
        assert!(
            !rule.topological || network.is_some(),
            "topological rules require a network"
        );
        DynamicPolicy {
            name: name.into(),
            copies,
            states: StateTable::fresh(copies),
            rule,
            network,
            mode,
            rival_grants: 0,
            memo: SyncMemo::default(),
        }
    }

    /// Original Dynamic Voting (Davčev–Burkhard): instantaneous, strict
    /// majority only.
    #[must_use]
    pub fn dv(copies: SiteSet) -> Self {
        DynamicPolicy::new("DV", copies, Rule::dv(), None, RejoinMode::OnRepair)
    }

    /// Lexicographic Dynamic Voting (Jajodia): instantaneous with the
    /// tie-break.
    #[must_use]
    pub fn ldv(copies: SiteSet) -> Self {
        DynamicPolicy::new(
            "LDV",
            copies,
            Rule::lexicographic(),
            None,
            RejoinMode::OnRepair,
        )
    }

    /// Optimistic Dynamic Voting (this paper, §2): the LDV decision rule
    /// driven only by access-time state exchange.
    #[must_use]
    pub fn odv(copies: SiteSet) -> Self {
        DynamicPolicy::new(
            "ODV",
            copies,
            Rule::lexicographic(),
            None,
            RejoinMode::OnAccess,
        )
    }

    /// Topological Dynamic Voting (this paper, §3): instantaneous,
    /// claiming co-segment votes.
    #[must_use]
    pub fn tdv(copies: SiteSet, network: Network) -> Self {
        DynamicPolicy::new(
            "TDV",
            copies,
            Rule::topological(),
            Some(network),
            RejoinMode::OnRepair,
        )
    }

    /// Optimistic Topological Dynamic Voting (this paper, §3, Figs 5–7).
    #[must_use]
    pub fn otdv(copies: SiteSet, network: Network) -> Self {
        DynamicPolicy::new(
            "OTDV",
            copies,
            Rule::topological(),
            Some(network),
            RejoinMode::OnAccess,
        )
    }

    /// LDV whose quorums shrink instantly but whose recoveries run only
    /// at access time ([`RejoinMode::Hybrid`]) — the ablation variant
    /// that isolates where ODV's configuration-F advantage comes from.
    #[must_use]
    pub fn ldv_lazy_rejoin(copies: SiteSet) -> Self {
        DynamicPolicy::new(
            "LDV-lazy",
            copies,
            Rule::lexicographic(),
            None,
            RejoinMode::Hybrid,
        )
    }

    /// A custom family member (used by ablation studies), e.g. LDV with
    /// a reversed lexicon or ODV with eager rejoining.
    #[must_use]
    pub fn custom(
        name: impl Into<String>,
        copies: SiteSet,
        lexicon: Option<Lexicon>,
        network: Option<Network>,
        mode: RejoinMode,
    ) -> Self {
        let rule = Rule {
            tie_break: lexicon,
            topological: network.is_some(),
        };
        DynamicPolicy::new(name, copies, rule, network, mode)
    }

    /// The copies this policy manages.
    #[must_use]
    pub fn copies(&self) -> SiteSet {
        self.copies
    }

    /// Read-only view of the per-copy protocol state (for tests and
    /// observability).
    #[must_use]
    pub fn states(&self) -> &StateTable {
        &self.states
    }

    /// Runs one state-exchange opportunity inside `group`. With
    /// `reintegrate`, every recovering/stale member RECOVERs and an
    /// access commits — the composite effect of the paper's RECOVER
    /// loop followed by a READ; without it, only a READ-style commit
    /// among the current copies runs (quorums shrink, nobody rejoins).
    /// Returns the committed `(participants, version)` when the group
    /// was the majority partition.
    fn sync_group(&mut self, group: SiteSet, reintegrate: bool) -> Option<(SiteSet, u64)> {
        let d = decide(
            group,
            self.copies,
            &self.states,
            &self.rule,
            self.network.as_ref(),
        );
        if d.is_granted() {
            let participants = if reintegrate {
                // RECOVER(S ∪ {l}) for each rejoining l, then the
                // access: everyone in the group ends current.
                group & self.copies
            } else {
                // READ commit (Figure 1): P := S, stale members wait.
                d.current_set
            };
            self.states
                .commit(participants, d.max_op + 1, d.max_version, participants);
            Some((participants, d.max_version))
        } else {
            None
        }
    }

    /// Runs a state-exchange opportunity in every group.
    ///
    /// Under DV/LDV/ODV at most one group can be the majority partition.
    /// The topological variants can — rarely — reach a state where two
    /// groups both believe they are the majority block (the
    /// sequential-claim hazard, see DESIGN.md); such events are counted
    /// in [`DynamicPolicy::rival_grants`] rather than asserted away,
    /// because Figures 5–7 as published admit them.
    fn sync_all(&mut self, reach: &Reachability, reintegrate: bool) -> bool {
        // Fast path: an immediate repeat of the previous exchange (the
        // common case — consecutive accesses with no topology change in
        // between) replays its commits without re-deciding. The
        // operation-number bump is preserved exactly: each granted
        // group's participants all carry the op of the previous commit,
        // so the repeat commits at that op plus one, just as a fresh
        // `decide` would conclude.
        if self.memo.matches(reach.groups(), reintegrate) {
            self.rival_grants += self.memo.rival_delta;
            for i in 0..self.memo.commits.len() {
                let (participants, version) = self.memo.commits[i];
                let site = participants.iter().next().expect("commits are non-empty");
                let op = self.states.get(site).op + 1;
                self.states.commit(participants, op, version, participants);
            }
            return self.memo.granted;
        }
        let mut commits = Vec::new();
        let mut granted = false;
        let mut rival_delta = 0u64;
        for i in 0..reach.groups().len() {
            let committed = self.sync_group(reach.groups()[i], reintegrate);
            if let Some(record) = committed {
                if granted {
                    debug_assert!(
                        self.rule.topological,
                        "two groups were both granted: mutual exclusion violated"
                    );
                    rival_delta += 1;
                }
                granted = true;
                commits.push(record);
            }
        }
        self.rival_grants += rival_delta;
        self.memo
            .store(reach.groups(), reintegrate, commits, granted, rival_delta);
        granted
    }

    /// Number of times two disjoint groups were granted in the same
    /// state exchange — non-zero only for the topological variants, and
    /// only after a sequential-claim lineage fork (see DESIGN.md).
    #[must_use]
    pub fn rival_grants(&self) -> u64 {
        self.rival_grants
    }
}

impl AvailabilityPolicy for DynamicPolicy {
    fn name(&self) -> &str {
        &self.name
    }

    fn optimistic(&self) -> bool {
        self.mode == RejoinMode::OnAccess
    }

    fn reset(&mut self) {
        self.states = StateTable::fresh(self.copies);
        self.rival_grants = 0;
        self.memo.invalidate();
    }

    fn on_topology_change(&mut self, reach: &Reachability) -> bool {
        match self.mode {
            RejoinMode::OnRepair => self.sync_all(reach, true),
            RejoinMode::Hybrid => self.sync_all(reach, false),
            RejoinMode::OnAccess => self.is_available(reach),
        }
    }

    fn on_access(&mut self, reach: &Reachability) -> bool {
        self.sync_all(reach, true)
    }

    fn is_available(&self, reach: &Reachability) -> bool {
        reach.groups().iter().any(|&group| {
            decide(
                group,
                self.copies,
                &self.states,
                &self.rule,
                self.network.as_ref(),
            )
            .is_granted()
        })
    }

    fn hazard_events(&self) -> u64 {
        self.rival_grants
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynvote_types::SiteId;

    fn reach(groups: &[&[usize]]) -> Reachability {
        Reachability::from_groups(
            groups
                .iter()
                .map(|g| SiteSet::from_indices(g.iter().copied()))
                .collect(),
        )
    }

    #[test]
    fn dv_shrinks_quorum_but_fails_ties() {
        let mut p = DynamicPolicy::dv(SiteSet::first_n(3));
        // B (S1) fails: {A, C} is a majority of {A,B,C} → P shrinks.
        let r = reach(&[&[0, 2]]);
        p.on_topology_change(&r);
        assert!(p.is_available(&r));
        assert_eq!(
            p.states().get(SiteId::new(0)).partition,
            SiteSet::from_indices([0, 2])
        );
        // A–C partition: 1-1 tie on {A, C}; plain DV refuses both sides.
        let r = reach(&[&[0], &[2]]);
        p.on_topology_change(&r);
        assert!(!p.is_available(&r));
    }

    #[test]
    fn ldv_wins_the_tie_with_the_max_site() {
        let mut p = DynamicPolicy::ldv(SiteSet::first_n(3));
        let r = reach(&[&[0, 2]]);
        p.on_topology_change(&r);
        // A–C partition: A = max({A, C}) wins alone.
        let r = reach(&[&[0], &[2]]);
        p.on_topology_change(&r);
        assert!(p.is_available(&r));
        assert_eq!(
            p.states().get(SiteId::new(0)).partition,
            SiteSet::from_indices([0])
        );
        // C's side stays refused even as other sites join it.
        let r = reach(&[&[0], &[1, 2]]);
        p.on_topology_change(&r);
        assert!(p.is_available(&r), "A's side still available");
    }

    #[test]
    fn dynamic_voting_survives_sequential_failures_mcv_cannot() {
        // 5 copies; sites fail one by one. DV stays available down to
        // the last two (then the tie-break matters); MCV dies at 2.
        let mut p = DynamicPolicy::ldv(SiteSet::first_n(5));
        let seq: &[&[usize]] = &[&[0, 1, 2, 3], &[0, 1, 2], &[0, 1], &[0]];
        for up in seq {
            let r = reach(&[up]);
            p.on_topology_change(&r);
            assert!(p.is_available(&r), "LDV should survive {up:?}");
        }
    }

    #[test]
    fn odv_ignores_topology_changes_between_accesses() {
        let mut p = DynamicPolicy::odv(SiteSet::first_n(3));
        assert!(p.optimistic());
        // B fails and recovers between two accesses: no state change.
        let degraded = reach(&[&[0, 2]]);
        p.on_topology_change(&degraded);
        assert_eq!(
            p.states().get(SiteId::new(0)).partition,
            SiteSet::first_n(3),
            "optimistic: partition set untouched by topology changes"
        );
        // The probe still answers correctly against the stale state.
        assert!(p.is_available(&degraded));
        // An access commits the shrink.
        assert!(p.on_access(&degraded));
        assert_eq!(
            p.states().get(SiteId::new(0)).partition,
            SiteSet::from_indices([0, 2])
        );
    }

    #[test]
    fn odv_transient_blip_never_shrinks_quorum() {
        // The configuration-F effect in miniature: a short failure that
        // heals before the next access leaves the quorum untouched,
        // while LDV would have shrunk and re-expanded it.
        let copies = SiteSet::first_n(3);
        let mut odv = DynamicPolicy::odv(copies);
        let mut ldv = DynamicPolicy::ldv(copies);
        let blip = reach(&[&[1, 2]]); // S0 briefly down
        let healed = reach(&[&[0, 1, 2]]);
        for p in [&mut odv, &mut ldv] {
            p.on_topology_change(&blip);
            p.on_topology_change(&healed);
        }
        assert_eq!(
            odv.states().get(SiteId::new(1)).partition,
            copies,
            "ODV never exchanged state"
        );
        assert_eq!(
            ldv.states().get(SiteId::new(1)).partition,
            copies,
            "LDV shrank to {{S1,S2}} then re-expanded on repair"
        );
        // But LDV's op numbers show the churn; ODV's do not.
        assert!(ldv.states().get(SiteId::new(1)).op > odv.states().get(SiteId::new(1)).op);
    }

    #[test]
    fn tdv_claims_co_segment_votes() {
        // A, B on one segment; C alone behind a gateway (S3).
        let net = dynvote_topology::NetworkBuilder::new()
            .segment("alpha", [0, 1, 3])
            .segment("beta", [2])
            .bridge(3, "beta")
            .build()
            .unwrap();
        let copies = SiteSet::from_indices([0, 1, 2]);
        let mut p = DynamicPolicy::tdv(copies, net.clone());

        // Everyone up, then C partitioned away (gateway S3 down):
        let r = net.reachability(SiteSet::from_indices([0, 1, 2]));
        p.on_topology_change(&r);
        assert_eq!(
            p.states().get(SiteId::new(0)).partition,
            SiteSet::from_indices([0, 1])
        );

        // Now A fails too. B alone claims A's vote (same segment):
        // P = {A, B}, T = {A, B} → 2 > 1 → available.
        let r = net.reachability(SiteSet::from_indices([1, 2]));
        // (gateway still down: groups are {B} and {C})
        let r2 =
            Reachability::from_groups(vec![SiteSet::from_indices([1]), SiteSet::from_indices([2])]);
        let _ = r;
        p.on_topology_change(&r2);
        assert!(p.is_available(&r2), "B claims A's co-segment vote");
        // LDV in the same history is unavailable (A is max of {A,B}).
        let mut ldv = DynamicPolicy::ldv(copies);
        ldv.on_topology_change(&reach(&[&[0, 1], &[2]]));
        ldv.on_topology_change(&r2);
        assert!(!ldv.is_available(&r2));
    }

    #[test]
    fn tdv_single_segment_behaves_like_available_copy() {
        // All copies on one segment: any single surviving copy keeps the
        // file available, however the others failed.
        let net = Network::single_segment(4);
        let copies = SiteSet::first_n(4);
        let mut p = DynamicPolicy::tdv(copies, net);
        for up in [&[0usize, 1, 2][..], &[1, 2][..], &[2][..]] {
            let r = reach(&[up]);
            p.on_topology_change(&r);
            assert!(p.is_available(&r), "TDV should survive {up:?}");
        }
    }

    #[test]
    fn total_failure_then_recovery_regenerates_partition() {
        let copies = SiteSet::first_n(3);
        let mut p = DynamicPolicy::ldv(copies);
        p.on_topology_change(&reach(&[&[0, 1]])); // S2 down, P := {0,1}
        p.on_topology_change(&reach(&[])); // everyone down
        assert!(!p.is_available(&reach(&[])));
        // S2 alone returns: it is stale (P_2 = {0,1,2}, old op) — 1 of 3
        // is no quorum, and it was not in the last majority partition.
        let r = reach(&[&[2]]);
        p.on_topology_change(&r);
        assert!(!p.is_available(&r));
        // S0 returns alongside: Q = {S0} (newest op), P_m = {0,1}, tie
        // won by S0 = max; RECOVER folds S2 back in.
        let r = reach(&[&[0, 2]]);
        p.on_topology_change(&r);
        assert!(p.is_available(&r));
        assert_eq!(
            p.states().get(SiteId::new(2)).partition,
            SiteSet::from_indices([0, 2])
        );
    }

    /// Reproduces the *sequential-claim hazard* of Topological Dynamic
    /// Voting as published (Figures 5–7): after a total failure of a
    /// segment, the co-segment survivors can alternately claim each
    /// other's votes without ever communicating, forking the lineage.
    /// The paper's mutual-consistency argument only excludes
    /// *concurrent* rival claims; this sequential interleaving slips
    /// through. We reproduce the protocol faithfully and surface the
    /// fork through [`DynamicPolicy::rival_grants`].
    #[test]
    fn tdv_sequential_claim_hazard_is_reproduced_and_counted() {
        let net = Network::single_segment(2);
        let copies = SiteSet::first_n(2);
        let mut p = DynamicPolicy::tdv(copies, net);
        // S0 fails; S1 claims S0's vote and carries on alone.
        let only_s1 = reach(&[&[1]]);
        p.on_topology_change(&only_s1);
        assert!(p.is_available(&only_s1));
        assert_eq!(
            p.states().get(SiteId::new(1)).partition,
            SiteSet::from_indices([1])
        );
        // S1 fails before S0 returns; S0 recovers *alone* and — per
        // Figure 7 — claims S1's vote based on its stale partition set.
        p.on_topology_change(&reach(&[]));
        let only_s0 = reach(&[&[0]]);
        p.on_topology_change(&only_s0);
        assert!(
            p.is_available(&only_s0),
            "Figure 7 grants the recovery: the hazard is real"
        );
        // The lineage has forked: both sites carry op 2 with different
        // partition sets. When both finally come up, both singleton
        // lineages coexist — counted, not asserted.
        assert_eq!(
            p.states().get(SiteId::new(0)).partition,
            SiteSet::from_indices([0])
        );
        assert_eq!(
            p.states().get(SiteId::new(1)).partition,
            SiteSet::from_indices([1])
        );
        assert_eq!(
            p.states().get(SiteId::new(0)).op,
            p.states().get(SiteId::new(1)).op,
            "equal operation numbers from rival commits"
        );
        let healed = reach(&[&[0, 1]]);
        p.on_topology_change(&healed);
        assert!(p.is_available(&healed));
    }

    #[test]
    fn ldv_rejects_the_sequential_claim_scenario() {
        // The same interleaving under LDV: S1 (not max) never proceeds
        // alone, so no fork is possible — quantifying what the
        // topological claim trades for its availability.
        let copies = SiteSet::first_n(2);
        let mut p = DynamicPolicy::ldv(copies);
        let only_s1 = reach(&[&[1]]);
        p.on_topology_change(&only_s1);
        assert!(!p.is_available(&only_s1), "S1 loses the tie to S0");
        p.on_topology_change(&reach(&[]));
        let only_s0 = reach(&[&[0]]);
        p.on_topology_change(&only_s0);
        assert!(p.is_available(&only_s0), "S0 holds the tie-break");
        assert_eq!(p.rival_grants(), 0);
    }

    #[test]
    fn reset_restores_fresh_state() {
        let copies = SiteSet::first_n(3);
        let mut p = DynamicPolicy::ldv(copies);
        p.on_topology_change(&reach(&[&[0, 1]]));
        p.reset();
        assert_eq!(p.states().get(SiteId::new(0)).partition, copies);
        assert_eq!(p.states().get(SiteId::new(0)).op, 1);
    }

    #[test]
    fn custom_lexicon_flips_tie_winner() {
        let copies = SiteSet::first_n(2);
        let mut p = DynamicPolicy::custom(
            "LDV-asc",
            copies,
            Some(Lexicon::ascending()),
            None,
            RejoinMode::OnRepair,
        );
        let r = reach(&[&[0], &[1]]);
        p.on_topology_change(&r);
        // With the ascending lexicon, S1 (not S0) wins the tie.
        assert!(p.is_available(&r));
        assert_eq!(
            p.states().get(SiteId::new(1)).partition,
            SiteSet::from_indices([1])
        );
        assert_eq!(
            p.states().get(SiteId::new(0)).partition,
            copies,
            "S0 losing side untouched"
        );
    }
}
