//! Dynamic vote reassignment — the other dynamic family (\[BGS86\]).
//!
//! Barbara, Garcia-Molina and Spauster's *"Policies for Dynamic Vote
//! Reassignment"* (cited in the paper's introduction alongside dynamic
//! voting) keeps the **quorum rule static** — a strict majority of all
//! votes — but lets the **vote assignment move**: when sites become
//! unreachable, the surviving majority group transfers their votes to a
//! member it can rely on, so later failures face a quorum the group can
//! still meet.
//!
//! This module implements the *proxy transfer* flavour as an
//! [`AvailabilityPolicy`]: a group holding a strict majority of the
//! current votes commits a reassignment in which every absent voter's
//! base votes are carried by the group's top-ranked member, and every
//! present voter holds exactly its base votes again. Mutual exclusion
//! follows the dynamic-voting argument — each reassignment needs a
//! strict majority of the assignment it replaces, so two rival
//! assignments can never both be reached.

use dynvote_topology::Reachability;
use dynvote_types::{SiteSet, VoteMap};

use crate::lexicon::Lexicon;

use super::AvailabilityPolicy;

/// Majority voting with autonomous proxy vote reassignment.
///
/// # Examples
///
/// Three uniform copies: after {S0, S1} commit a reassignment that
/// moves S2's vote to S0, S0 *alone* holds 2 of 3 votes and keeps the
/// file available through S1's failure — something static MCV cannot
/// do:
///
/// ```
/// use dynvote_core::policy::{AvailabilityPolicy, VoteReassignmentPolicy};
/// use dynvote_topology::Reachability;
/// use dynvote_types::SiteSet;
///
/// let mut p = VoteReassignmentPolicy::uniform(SiteSet::first_n(3));
/// let groups = |g: &[u64]| Reachability::from_groups(
///     g.iter().map(|&m| SiteSet::from_bits(m)).collect());
///
/// p.on_topology_change(&groups(&[0b011])); // S2 down: reassign to S0
/// p.on_topology_change(&groups(&[0b001])); // S1 down too
/// assert!(p.is_available(&groups(&[0b001])), "S0 carries 2 of 3 votes");
/// ```
#[derive(Clone, Debug)]
pub struct VoteReassignmentPolicy {
    base: VoteMap,
    current: VoteMap,
    lexicon: Lexicon,
    reassignments: u64,
}

impl VoteReassignmentPolicy {
    /// One base vote per copy.
    ///
    /// # Panics
    ///
    /// Panics when `copies` is empty.
    #[must_use]
    pub fn uniform(copies: SiteSet) -> Self {
        assert!(!copies.is_empty(), "a replicated file needs copies");
        VoteReassignmentPolicy::new(VoteMap::uniform(copies))
    }

    /// A custom base assignment.
    ///
    /// # Panics
    ///
    /// Panics when no votes are assigned.
    #[must_use]
    pub fn new(base: VoteMap) -> Self {
        assert!(base.total() > 0, "at least one vote must be assigned");
        VoteReassignmentPolicy {
            current: base.clone(),
            base,
            lexicon: Lexicon::default(),
            reassignments: 0,
        }
    }

    /// The current (possibly reassigned) votes.
    #[must_use]
    pub fn current_votes(&self) -> &VoteMap {
        &self.current
    }

    /// How many reassignments have been committed since the last reset.
    #[must_use]
    pub fn reassignments(&self) -> u64 {
        self.reassignments
    }

    fn group_grants(&self, group: SiteSet) -> bool {
        self.current.is_strict_majority(group)
    }

    /// Commits a reassignment for the (unique) group holding a strict
    /// majority of the current votes: present voters revert to their
    /// base votes; the group's top-ranked voter carries every absent
    /// voter's base votes as a proxy.
    fn sync(&mut self, reach: &Reachability) {
        for &group in reach.groups() {
            if !self.group_grants(group) {
                continue;
            }
            let voters = self.base.voters();
            let present = voters & group;
            let absent = voters - group;
            let proxy = self
                .lexicon
                .max_of(present)
                .expect("a majority group contains a voter");
            let mut next = VoteMap::empty();
            for site in present.iter() {
                next.set(site, self.base.get(site));
            }
            let carried: u64 = absent.iter().map(|s| u64::from(self.base.get(s))).sum();
            next.set(
                proxy,
                self.base.get(proxy) + u32::try_from(carried).expect("vote totals are small"),
            );
            debug_assert_eq!(next.total(), self.base.total(), "votes are conserved");
            if next.of(voters) != self.current.of(voters)
                || present.iter().any(|s| next.get(s) != self.current.get(s))
            {
                self.reassignments += 1;
            }
            self.current = next;
            // At most one group can hold a strict majority.
            break;
        }
    }
}

impl AvailabilityPolicy for VoteReassignmentPolicy {
    fn name(&self) -> &str {
        "VR"
    }

    fn reset(&mut self) {
        self.current = self.base.clone();
        self.reassignments = 0;
    }

    fn on_topology_change(&mut self, reach: &Reachability) -> bool {
        self.sync(reach);
        self.is_available(reach)
    }

    fn on_access(&mut self, reach: &Reachability) -> bool {
        self.sync(reach);
        self.is_available(reach)
    }

    fn is_available(&self, reach: &Reachability) -> bool {
        reach.groups().iter().any(|&g| self.group_grants(g))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynvote_types::SiteId;

    fn reach(groups: &[&[usize]]) -> Reachability {
        Reachability::from_groups(
            groups
                .iter()
                .map(|g| SiteSet::from_indices(g.iter().copied()))
                .collect(),
        )
    }

    #[test]
    fn reassignment_survives_sequential_failures() {
        let mut p = VoteReassignmentPolicy::uniform(SiteSet::first_n(5));
        // Sites fail one by one; after each step the survivors reassign.
        for up in [&[0usize, 1, 2, 3][..], &[0, 1, 2], &[0, 1], &[0]] {
            let r = reach(&[up]);
            p.on_topology_change(&r);
            assert!(p.is_available(&r), "should survive {up:?}");
        }
        assert_eq!(p.current_votes().get(SiteId::new(0)), 5, "S0 carries all");
    }

    #[test]
    fn static_mcv_dies_where_reassignment_survives() {
        use crate::policy::McvPolicy;
        let copies = SiteSet::first_n(3);
        let mut vr = VoteReassignmentPolicy::uniform(copies);
        let mcv = McvPolicy::strict(copies);
        let steps: &[&[usize]] = &[&[0, 1], &[0]];
        let mut r = reach(&[steps[0]]);
        vr.on_topology_change(&r);
        r = reach(&[steps[1]]);
        vr.on_topology_change(&r);
        assert!(vr.is_available(&r));
        assert!(!mcv.is_available(&r), "static quorum: 1 of 3 is dead");
    }

    #[test]
    fn rejoining_sites_get_their_votes_back() {
        let mut p = VoteReassignmentPolicy::uniform(SiteSet::first_n(3));
        p.on_topology_change(&reach(&[&[0, 1]])); // S2's vote → S0
        assert_eq!(p.current_votes().get(SiteId::new(0)), 2);
        assert_eq!(p.current_votes().get(SiteId::new(2)), 0);
        p.on_topology_change(&reach(&[&[0, 1, 2]])); // S2 rejoins
        assert_eq!(p.current_votes().get(SiteId::new(0)), 1);
        assert_eq!(p.current_votes().get(SiteId::new(2)), 1);
    }

    #[test]
    fn votes_are_conserved() {
        let mut p = VoteReassignmentPolicy::uniform(SiteSet::first_n(4));
        for up in [&[0usize, 1, 2][..], &[1, 2], &[1, 2, 3], &[0, 1, 2, 3]] {
            p.on_topology_change(&reach(&[up]));
            assert_eq!(p.current_votes().total(), 4, "after {up:?}");
        }
    }

    #[test]
    fn minority_side_never_reassigns() {
        let mut p = VoteReassignmentPolicy::uniform(SiteSet::first_n(4));
        // 2-2 split: neither side has a strict majority of 4.
        let r = reach(&[&[0, 1], &[2, 3]]);
        p.on_topology_change(&r);
        assert!(!p.is_available(&r), "even splits still strand both sides");
        assert_eq!(p.reassignments(), 0);
        // The stale minority cannot usurp after the majority moved on.
        p.on_topology_change(&reach(&[&[0, 1, 2]])); // S3's vote → S0
        let r = reach(&[&[3], &[0, 1, 2]]);
        p.on_topology_change(&r);
        assert!(!p.current.is_strict_majority(SiteSet::from_indices([3])));
    }

    #[test]
    fn mutual_exclusion_over_random_histories() {
        use dynvote_types::SiteSet as S;
        // Exhaustive over 4-site histories of length 3 and all splits:
        // at no point can two disjoint groups both hold a majority.
        let copies = S::first_n(4);
        for h1 in 1u64..16 {
            for h2 in 1u64..16 {
                let mut p = VoteReassignmentPolicy::uniform(copies);
                for mask in [h1, h2] {
                    let up = S::from_bits(mask) & copies;
                    if up.is_empty() {
                        continue;
                    }
                    p.on_topology_change(&Reachability::from_groups(vec![up]));
                }
                for split in 0u64..16 {
                    let a = S::from_bits(split) & copies;
                    let b = copies - a;
                    let both = !a.is_empty()
                        && !b.is_empty()
                        && p.current.is_strict_majority(a)
                        && p.current.is_strict_majority(b);
                    assert!(!both, "h=({h1:#b},{h2:#b}) split {a} | {b}");
                }
            }
        }
    }

    #[test]
    fn reset_restores_base() {
        let mut p = VoteReassignmentPolicy::uniform(SiteSet::first_n(3));
        p.on_topology_change(&reach(&[&[0]]));
        p.reset();
        assert_eq!(p.current_votes().get(SiteId::new(2)), 1);
        assert_eq!(p.reassignments(), 0);
    }

    #[test]
    fn access_hook_reports_and_syncs() {
        let mut p = VoteReassignmentPolicy::uniform(SiteSet::first_n(3));
        assert!(p.on_access(&reach(&[&[0, 2]])));
        assert!(!p.on_access(&reach(&[&[1]])), "1 of 3 current votes");
    }
}
