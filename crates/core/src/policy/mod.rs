//! Consistency policies as availability state machines.
//!
//! The paper's simulation (§4) drives each protocol through a stream of
//! site failures, repairs, maintenance windows, and file accesses, and
//! measures when the replicated file is available. The
//! [`AvailabilityPolicy`] trait is exactly that interface:
//!
//! * **instantaneous** protocols (MCV, DV, LDV, TDV, Available Copy)
//!   update their quorum state on every topology change — they model the
//!   paper's *connection vector*, where "the quorums instantaneously
//!   reflect any change in the network status";
//! * **optimistic** protocols (ODV, OTDV) update state **only at access
//!   time**; between accesses their partition sets go stale, which is
//!   both their efficiency advantage and, on some configurations, an
//!   availability advantage (Table 2, configuration F).
//!
//! A policy answers, at any instant, *"would an access be granted right
//! now?"* ([`AvailabilityPolicy::is_available`]) without mutating state —
//! the probe the simulator integrates over time to measure
//! unavailability.

pub mod available_copy;
pub mod dynamic;
pub mod mcv;
pub mod reassignment;
pub mod weighted;
pub mod witness;

use dynvote_topology::{Network, Reachability};
use dynvote_types::SiteSet;

pub use available_copy::AvailableCopyPolicy;
pub use dynamic::DynamicPolicy;
pub use mcv::McvPolicy;
pub use reassignment::VoteReassignmentPolicy;
pub use weighted::WeightedMcvPolicy;
pub use witness::WitnessPolicy;

/// A consistency protocol viewed as an availability state machine.
///
/// The driver contract, identical to the paper's simulation model:
///
/// 1. [`reset`](AvailabilityPolicy::reset) at time zero (all sites up,
///    fresh state).
/// 2. On every site failure, repair, or maintenance transition, call
///    [`on_topology_change`](AvailabilityPolicy::on_topology_change)
///    with the new reachability.
/// 3. On every file access, call
///    [`on_access`](AvailabilityPolicy::on_access).
/// 4. Integrate [`is_available`](AvailabilityPolicy::is_available)
///    over time.
pub trait AvailabilityPolicy {
    /// Short display name ("MCV", "ODV", …).
    fn name(&self) -> &str;

    /// `true` when the policy exchanges state only at access time.
    fn optimistic(&self) -> bool {
        false
    }

    /// Returns the protocol to its initial state (all copies current,
    /// partition sets containing every copy).
    fn reset(&mut self);

    /// Notifies the policy that the set of up/communicating sites
    /// changed. Instantaneous protocols adjust quorums here; optimistic
    /// protocols only re-evaluate.
    ///
    /// Returns the availability *after* the change — the same value
    /// [`is_available`](AvailabilityPolicy::is_available) would report,
    /// already computed by the state exchange, so hot simulation loops
    /// need not pay a second decision pass per event.
    fn on_topology_change(&mut self, reach: &Reachability) -> bool;

    /// Drives one file access: returns `true` when granted, updating
    /// protocol state (quorum adjustment, reintegration of recovered
    /// sites) as a successful operation would.
    ///
    /// The return value equals the post-access
    /// [`is_available`](AvailabilityPolicy::is_available) — a granted
    /// access leaves the file available, a refused one changes nothing.
    fn on_access(&mut self, reach: &Reachability) -> bool;

    /// Non-mutating probe: would an access be granted right now?
    ///
    /// Hot loops should prefer the values returned by
    /// [`on_topology_change`](AvailabilityPolicy::on_topology_change) /
    /// [`on_access`](AvailabilityPolicy::on_access), which are
    /// contractually identical and already paid for.
    fn is_available(&self, reach: &Reachability) -> bool;

    /// Number of times two disjoint groups were granted in the same
    /// state exchange — the sequential-claim hazard's observable
    /// signature. Zero for every protocol except the topological
    /// variants (see `DynamicPolicy::rival_grants`).
    fn hazard_events(&self) -> u64 {
        0
    }
}

/// The six policies of the paper's evaluation (Table 2 / Table 3 columns).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// Majority Consensus Voting — static quorums.
    Mcv,
    /// Dynamic Voting (Davčev–Burkhard) — instantaneous, no tie-break.
    Dv,
    /// Lexicographic Dynamic Voting (Jajodia) — instantaneous, tie-break.
    Ldv,
    /// Optimistic Dynamic Voting (this paper) — state at access time.
    Odv,
    /// Topological Dynamic Voting (this paper) — instantaneous, claims
    /// co-segment votes.
    Tdv,
    /// Optimistic Topological Dynamic Voting (this paper).
    Otdv,
}

impl PolicyKind {
    /// The Table 2 column order.
    pub const TABLE: [PolicyKind; 6] = [
        PolicyKind::Mcv,
        PolicyKind::Dv,
        PolicyKind::Ldv,
        PolicyKind::Odv,
        PolicyKind::Tdv,
        PolicyKind::Otdv,
    ];

    /// Display name matching the paper's column headers.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Mcv => "MCV",
            PolicyKind::Dv => "DV",
            PolicyKind::Ldv => "LDV",
            PolicyKind::Odv => "ODV",
            PolicyKind::Tdv => "TDV",
            PolicyKind::Otdv => "OTDV",
        }
    }

    /// `true` for the optimistic variants.
    #[must_use]
    pub fn optimistic(self) -> bool {
        matches!(self, PolicyKind::Odv | PolicyKind::Otdv)
    }

    /// Builds the policy for a file replicated on `copies` over
    /// `network`.
    #[must_use]
    pub fn build(self, copies: SiteSet, network: &Network) -> Box<dyn AvailabilityPolicy> {
        match self {
            PolicyKind::Mcv => Box::new(McvPolicy::new(copies)),
            PolicyKind::Dv => Box::new(DynamicPolicy::dv(copies)),
            PolicyKind::Ldv => Box::new(DynamicPolicy::ldv(copies)),
            PolicyKind::Odv => Box::new(DynamicPolicy::odv(copies)),
            PolicyKind::Tdv => Box::new(DynamicPolicy::tdv(copies, network.clone())),
            PolicyKind::Otdv => Box::new(DynamicPolicy::otdv(copies, network.clone())),
        }
    }
}

impl core::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_order_matches_paper_columns() {
        let names: Vec<&str> = PolicyKind::TABLE.iter().map(|k| k.name()).collect();
        assert_eq!(names, vec!["MCV", "DV", "LDV", "ODV", "TDV", "OTDV"]);
    }

    #[test]
    fn optimism_flags() {
        assert!(!PolicyKind::Mcv.optimistic());
        assert!(!PolicyKind::Ldv.optimistic());
        assert!(PolicyKind::Odv.optimistic());
        assert!(PolicyKind::Otdv.optimistic());
    }

    #[test]
    fn build_produces_matching_names() {
        let net = Network::single_segment(3);
        let copies = SiteSet::first_n(3);
        for kind in PolicyKind::TABLE {
            let policy = kind.build(copies, &net);
            assert_eq!(policy.name(), kind.name());
            assert_eq!(policy.optimistic(), kind.optimistic());
        }
    }
}
