//! The Available-Copy protocol — the non-partitionable-network special case.

use dynvote_topology::Reachability;
use dynvote_types::SiteSet;

use super::AvailabilityPolicy;

/// Available Copy (Bernstein–Goodman): reads and writes proceed while
/// **any** copy is available.
///
/// The protocol assumes the network *cannot partition* — a safe
/// assumption on a single carrier-sense segment or token ring (paper,
/// §3). Writes go to every up copy; a site recovering while a current
/// copy is up resynchronizes from it; after a **total** failure the file
/// stays unavailable until a site holding the latest data returns
/// (tracked here by the persistent `current` set).
///
/// The paper proves the sanity check this crate's integration tests
/// replay: *"When all the sites are on the same segment, the modified
/// topological algorithm degenerates into an available copy protocol as
/// a quorum is guaranteed as long as one copy remains available."*
///
/// # Caveat
///
/// On a partitionable network Available Copy is **unsafe** (two isolated
/// groups would both accept writes). The implementation keeps a single
/// global `current` set, which is only meaningful when reachability
/// never splits the copies; the availability simulator only pairs this
/// policy with single-segment networks.
#[derive(Clone, Debug)]
pub struct AvailableCopyPolicy {
    copies: SiteSet,
    /// Sites holding the latest version of the data — up sites receiving
    /// every write plus, after failures, the down sites that held the
    /// latest data when they failed.
    current: SiteSet,
}

impl AvailableCopyPolicy {
    /// A new Available-Copy policy for a file replicated on `copies`.
    ///
    /// # Panics
    ///
    /// Panics when `copies` is empty.
    #[must_use]
    pub fn new(copies: SiteSet) -> Self {
        assert!(!copies.is_empty(), "a replicated file needs copies");
        AvailableCopyPolicy {
            copies,
            current: copies,
        }
    }

    /// The sites currently known to hold the latest data (up or down).
    #[must_use]
    pub fn current(&self) -> SiteSet {
        self.current
    }

    fn sync(&mut self, reach: &Reachability) {
        // Writes flow continuously to all up copies that can see a
        // current copy; copies that fail drop out of `current` the
        // moment a write happens without them — i.e. immediately, in the
        // instantaneous model — unless no current copy is up at all, in
        // which case the frozen `current` set marks who holds the latest
        // data.
        let mut next = SiteSet::EMPTY;
        for &group in reach.groups() {
            if !(group & self.current).is_empty() {
                next |= group & self.copies;
            }
        }
        if !next.is_empty() {
            self.current = next;
        }
    }
}

impl AvailabilityPolicy for AvailableCopyPolicy {
    fn name(&self) -> &str {
        "AC"
    }

    fn reset(&mut self) {
        self.current = self.copies;
    }

    fn on_topology_change(&mut self, reach: &Reachability) -> bool {
        self.sync(reach);
        self.is_available(reach)
    }

    fn on_access(&mut self, reach: &Reachability) -> bool {
        self.sync(reach);
        self.is_available(reach)
    }

    fn is_available(&self, reach: &Reachability) -> bool {
        reach
            .groups()
            .iter()
            .any(|&g| !(g & self.current).is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reach(groups: &[&[usize]]) -> Reachability {
        Reachability::from_groups(
            groups
                .iter()
                .map(|g| SiteSet::from_indices(g.iter().copied()))
                .collect(),
        )
    }

    #[test]
    fn survives_down_to_one_copy() {
        let mut p = AvailableCopyPolicy::new(SiteSet::first_n(3));
        for up in [&[0usize, 1][..], &[1][..]] {
            let r = reach(&[up]);
            p.on_topology_change(&r);
            assert!(p.is_available(&r), "AC should survive {up:?}");
        }
        assert_eq!(p.current(), SiteSet::from_indices([1]));
    }

    #[test]
    fn total_failure_requires_last_site_back() {
        let mut p = AvailableCopyPolicy::new(SiteSet::first_n(3));
        // S0 and S1 fail, then S2 (the last current copy) fails.
        p.on_topology_change(&reach(&[&[2]]));
        p.on_topology_change(&reach(&[]));
        assert_eq!(
            p.current(),
            SiteSet::from_indices([2]),
            "S2 froze as current"
        );
        // S0 returns first: it missed writes — file still unavailable.
        let r = reach(&[&[0]]);
        p.on_topology_change(&r);
        assert!(!p.is_available(&r));
        // S2 returns: available again, and S0 resyncs into current.
        let r = reach(&[&[0, 2]]);
        p.on_topology_change(&r);
        assert!(p.is_available(&r));
        assert_eq!(p.current(), SiteSet::from_indices([0, 2]));
    }

    #[test]
    fn recovering_site_resyncs_from_current() {
        let mut p = AvailableCopyPolicy::new(SiteSet::first_n(2));
        p.on_topology_change(&reach(&[&[0]]));
        assert_eq!(p.current(), SiteSet::from_indices([0]));
        p.on_topology_change(&reach(&[&[0, 1]]));
        assert_eq!(p.current(), SiteSet::first_n(2));
    }

    #[test]
    fn access_reports_availability() {
        let mut p = AvailableCopyPolicy::new(SiteSet::first_n(2));
        assert!(p.on_access(&reach(&[&[1]])));
        assert!(!p.on_access(&reach(&[])));
    }

    #[test]
    fn reset_restores_all_current() {
        let mut p = AvailableCopyPolicy::new(SiteSet::first_n(2));
        p.on_topology_change(&reach(&[&[0]]));
        p.reset();
        assert_eq!(p.current(), SiteSet::first_n(2));
    }
}
