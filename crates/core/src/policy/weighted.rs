//! Gifford-style weighted voting — the "weight assignments" future work.

use dynvote_topology::Reachability;
use dynvote_types::{SiteSet, VoteMap};

use super::AvailabilityPolicy;

/// Weighted Majority Consensus Voting: each copy carries an integer
/// number of votes and an access proceeds iff a group holds a *strict
/// majority of all votes*.
///
/// With uniform weights this is exactly [`super::McvPolicy`]; skewed
/// weights let an administrator bias availability toward reliable or
/// well-connected sites — the paper's closing remark ("to analyze weight
/// assignments") made concrete. The `weight_study` experiment sweeps
/// weight vectors over the Table 1 site models to show when a weighted
/// static scheme can and cannot close the gap to dynamic voting.
#[derive(Clone, Debug)]
pub struct WeightedMcvPolicy {
    votes: VoteMap,
}

impl WeightedMcvPolicy {
    /// A new weighted-voting policy with the given vote assignment.
    ///
    /// # Panics
    ///
    /// Panics when no site holds a vote.
    #[must_use]
    pub fn new(votes: VoteMap) -> Self {
        assert!(votes.total() > 0, "at least one vote must be assigned");
        WeightedMcvPolicy { votes }
    }

    /// Uniform weights over `copies` — plain MCV.
    #[must_use]
    pub fn uniform(copies: SiteSet) -> Self {
        WeightedMcvPolicy::new(VoteMap::uniform(copies))
    }

    /// The vote assignment.
    #[must_use]
    pub fn votes(&self) -> &VoteMap {
        &self.votes
    }
}

impl AvailabilityPolicy for WeightedMcvPolicy {
    fn name(&self) -> &str {
        "W-MCV"
    }

    fn reset(&mut self) {}

    fn on_topology_change(&mut self, reach: &Reachability) -> bool {
        self.is_available(reach)
    }

    fn on_access(&mut self, reach: &Reachability) -> bool {
        self.is_available(reach)
    }

    fn is_available(&self, reach: &Reachability) -> bool {
        reach
            .groups()
            .iter()
            .any(|&g| self.votes.is_strict_majority(g))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynvote_types::SiteId;

    fn reach(groups: &[&[usize]]) -> Reachability {
        Reachability::from_groups(
            groups
                .iter()
                .map(|g| SiteSet::from_indices(g.iter().copied()))
                .collect(),
        )
    }

    #[test]
    fn uniform_matches_mcv() {
        let w = WeightedMcvPolicy::uniform(SiteSet::first_n(3));
        let mcv = super::super::McvPolicy::new(SiteSet::first_n(3));
        for mask in 0u64..8 {
            let groups = if mask == 0 {
                reach(&[])
            } else {
                Reachability::from_groups(vec![SiteSet::from_bits(mask)])
            };
            assert_eq!(
                w.is_available(&groups),
                mcv.is_available(&groups),
                "mask {mask:#b}"
            );
        }
    }

    #[test]
    fn heavy_site_dominates() {
        let mut votes = VoteMap::uniform(SiteSet::first_n(3));
        votes.set(SiteId::new(0), 3); // total = 5
        let p = WeightedMcvPolicy::new(votes);
        assert!(p.is_available(&reach(&[&[0]])), "3 of 5 votes");
        assert!(!p.is_available(&reach(&[&[1, 2]])), "2 of 5 votes");
    }

    #[test]
    fn even_total_still_needs_strict_majority() {
        let mut votes = VoteMap::uniform(SiteSet::first_n(2));
        votes.set(SiteId::new(0), 3); // total = 4
        let p = WeightedMcvPolicy::new(votes);
        assert!(p.is_available(&reach(&[&[0]])));
        assert!(!p.is_available(&reach(&[&[1]])), "1 of 4 votes");
    }

    #[test]
    #[should_panic(expected = "at least one vote")]
    fn zero_votes_rejected() {
        let _ = WeightedMcvPolicy::new(VoteMap::empty());
    }
}
